"""Caching must never change answers.

Two suites: an interleaving suite that races DDL / ANALYZE / updates
against cached reads on each engine (the staleness-hazard audit in
``repro.cache`` made executable), and a property-style suite that runs
the interactive read/update mix against every system twice — caches off
and caches on — and asserts byte-identical answers plus nonzero hit
rates on the cached side.
"""

import pytest

from repro.core import SUT_KEYS, make_connector
from repro.core.benchmark import WorkloadParams
from repro.graphdb import GraphDatabase
from repro.rdf import RdfDatabase
from repro.relational import Database
from repro.snb import GeneratorConfig, generate

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=13)

READ_OPS = [
    ("point_lookup", "person_ids"),
    ("one_hop", "person_ids"),
    ("two_hop", "person_ids"),
    ("person_friends", "person_ids"),
    ("message_content", "message_ids"),
    ("message_creator", "message_ids"),
]


def _normalize(value):
    if isinstance(value, list):
        return [tuple(v) if isinstance(v, (list, tuple)) else v for v in value]
    if isinstance(value, tuple):
        return tuple(value)
    return value


class TestInterleavedStaleness:
    """DDL / ANALYZE / writes between cached reads stay consistent."""

    def test_sql_analyze_and_index_between_cached_reads(self):
        db = Database("row")
        db.execute(
            "CREATE TABLE person (id BIGINT PRIMARY KEY, city TEXT)"
        )
        for pid in range(30):
            db.execute(
                "INSERT INTO person VALUES (?, ?)", (pid, f"c{pid % 5}")
            )
        q = "SELECT id FROM person WHERE city = ?"
        baseline = sorted(db.query(q, ("c1",)))
        db.analyze()  # epoch bump: cached plan must be dropped
        assert sorted(db.query(q, ("c1",))) == baseline
        db.execute("CREATE INDEX ON person (city) USING HASH")
        assert sorted(db.query(q, ("c1",))) == baseline
        db.execute("INSERT INTO person VALUES (?, ?)", (30, "c1"))
        assert sorted(db.query(q, ("c1",))) == baseline + [(30,)]

    def test_cypher_update_between_cached_adjacency_reads(self):
        db = GraphDatabase()
        db.enable_adjacency_cache()
        db.create_index("Person", "id")
        for pid in range(3):
            db.execute(f"CREATE (:Person {{id: {pid}}})")
        db.execute(
            "MATCH (a:Person), (b:Person) WHERE a.id = 0 AND b.id = 1 "
            "CREATE (a)-[:KNOWS]->(b)"
        )
        q = (
            "MATCH (a:Person)-[:KNOWS]-(b:Person) WHERE a.id = 0 "
            "RETURN b.id ORDER BY b.id"
        )
        assert db.execute(q) == [(1,)]
        # the write invalidates node 0's cached neighborhood
        db.execute(
            "MATCH (a:Person), (b:Person) WHERE a.id = 0 AND b.id = 2 "
            "CREATE (a)-[:KNOWS]->(b)"
        )
        assert db.execute(q) == [(1,), (2,)]
        db.analyze()  # whole-cache fallback must not change answers
        assert db.execute(q) == [(1,), (2,)]

    def test_sparql_analyze_between_cached_reads(self):
        db = RdfDatabase()
        for i in range(8):
            db.store.add(f"sn:p{i}", "snb:id", i)
            db.store.add(f"sn:p{i}", "snb:firstName", f"n{i}")
        q = (
            "SELECT ?n WHERE { ?p snb:id ?i . ?p snb:firstName ?n } "
            "ORDER BY ?n"
        )
        baseline = db.execute(q)
        db.analyze()  # swaps stats and clears the estimate memo
        assert db.execute(q) == baseline
        db.store.add("sn:p8", "snb:id", 8)
        db.store.add("sn:p8", "snb:firstName", "n8")
        assert db.execute(q) == baseline + [("n8",)]


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


@pytest.fixture(scope="module")
def params(dataset):
    return WorkloadParams.curate(dataset, count=4, seed=3)


@pytest.fixture(scope="module")
def pairs(dataset):
    """(plain, cached) connector pairs for every system, same updates."""
    result = {}
    events = dataset.updates[:30]
    for key in SUT_KEYS:
        plain = make_connector(key)
        plain.load(dataset)
        cached = make_connector(key)
        cached.load(dataset)
        cached.enable_caching()
        # interleave reads with the update stream on both sides so the
        # cached connector has warm entries the writes must invalidate
        for connector in (plain, cached):
            for event in events[:10]:
                connector.apply_update(event)
        result[key] = (plain, cached)
    return result, events


class TestCachedEqualsUncached:
    def test_reads_identical_with_and_without_caching(
        self, pairs, params
    ):
        connectors, _events = pairs
        for key, (plain, cached) in connectors.items():
            for op, id_attr in READ_OPS:
                for ident in getattr(params, id_attr)[:3]:
                    expected = _normalize(getattr(plain, op)(ident))
                    # twice: the second read is served from warm caches
                    for _ in range(2):
                        got = _normalize(getattr(cached, op)(ident))
                        assert got == expected, (key, op, ident)

    def test_reads_identical_after_more_updates(self, pairs, params):
        connectors, events = pairs
        for key, (plain, cached) in connectors.items():
            for event in events[10:]:
                plain.apply_update(event)
                cached.apply_update(event)
            for op, id_attr in READ_OPS[:4]:
                for ident in getattr(params, id_attr)[:2]:
                    expected = _normalize(getattr(plain, op)(ident))
                    got = _normalize(getattr(cached, op)(ident))
                    assert got == expected, (key, op, ident)

    def test_cached_connectors_report_nonzero_hit_rates(self, pairs):
        connectors, _events = pairs
        for key, (_plain, cached) in connectors.items():
            stats = cached.cache_stats()
            assert stats, key
            assert any(s.hits > 0 for s in stats), (key, stats)

    def test_shortest_path_identical(self, pairs, params):
        connectors, _events = pairs
        for key, (plain, cached) in connectors.items():
            for pair in params.path_pairs[:2]:
                assert cached.shortest_path(*pair) == plain.shortest_path(
                    *pair
                ), (key, pair)


class TestBatchedApplyEquivalence:
    """apply_update_batch must leave the store identical to per-event."""

    @pytest.mark.parametrize(
        "key", ["postgres-sql", "neo4j-cypher", "virtuoso-sparql"]
    )
    def test_batch_matches_per_event(self, dataset, key):
        events = dataset.updates[:40]
        one_by_one = make_connector(key)
        one_by_one.load(dataset)
        for event in events:
            one_by_one.apply_update(event)
        batched = make_connector(key)
        batched.load(dataset)
        for start in range(0, len(events), 16):
            batched.apply_update_batch(events[start : start + 16])
        params = WorkloadParams.curate(dataset, count=3, seed=3)
        for op, id_attr in READ_OPS:
            for ident in getattr(params, id_attr)[:2]:
                assert _normalize(
                    getattr(batched, op)(ident)
                ) == _normalize(getattr(one_by_one, op)(ident)), (op, ident)
