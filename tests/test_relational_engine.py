"""End-to-end tests of the relational Database (both storage engines)."""

import pytest

from repro.relational import Database
from repro.relational.sql.executor import SqlRuntimeError


@pytest.fixture(params=["row", "column"])
def db(request):
    database = Database(request.param)
    database.execute(
        "CREATE TABLE person (id BIGINT PRIMARY KEY, name TEXT, "
        "city TEXT, age INT)"
    )
    database.execute(
        "CREATE TABLE knows (p1 BIGINT, p2 BIGINT, since INT)"
    )
    database.execute("CREATE INDEX ON knows (p1) USING HASH")
    database.execute("CREATE INDEX ON knows (p2) USING HASH")
    people = [
        (1, "alice", "waterloo", 30),
        (2, "bob", "toronto", 35),
        (3, "carol", "waterloo", 28),
        (4, "dave", "montreal", 41),
        (5, "erin", "toronto", 25),
    ]
    for row in people:
        database.execute("INSERT INTO person VALUES (?, ?, ?, ?)", row)
    # undirected 1-2, 2-3, 3-4, 1-5 stored in both directions
    for a, b, since in [(1, 2, 2010), (2, 3, 2012), (3, 4, 2015), (1, 5, 2016)]:
        database.execute("INSERT INTO knows VALUES (?, ?, ?)", (a, b, since))
        database.execute("INSERT INTO knows VALUES (?, ?, ?)", (b, a, since))
    return database


class TestBasicQueries:
    def test_point_lookup(self, db):
        rows = db.query("SELECT name FROM person WHERE id = ?", (3,))
        assert rows == [("carol",)]

    def test_full_scan_filter(self, db):
        rows = db.query("SELECT name FROM person WHERE city = 'waterloo'")
        assert sorted(rows) == [("alice",), ("carol",)]

    def test_projection_expression(self, db):
        rows = db.query("SELECT age + 1 FROM person WHERE id = 1")
        assert rows == [(31,)]

    def test_select_star(self, db):
        rows = db.query("SELECT * FROM person WHERE id = 2")
        assert rows == [(2, "bob", "toronto", 35)]

    def test_order_by_limit(self, db):
        rows = db.query("SELECT name FROM person ORDER BY age DESC LIMIT 2")
        assert rows == [("dave",), ("bob",)]

    def test_order_by_alias(self, db):
        rows = db.query(
            "SELECT name, age * 2 AS doubled FROM person "
            "ORDER BY doubled LIMIT 1"
        )
        assert rows == [("erin", 50)]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT city FROM person")
        assert sorted(rows) == [("montreal",), ("toronto",), ("waterloo",)]

    def test_in_list(self, db):
        rows = db.query("SELECT name FROM person WHERE id IN (1, 4)")
        assert sorted(rows) == [("alice",), ("dave",)]

    def test_empty_result(self, db):
        assert db.query("SELECT id FROM person WHERE id = 999") == []

    def test_query_on_dml_raises(self, db):
        with pytest.raises(TypeError):
            db.query("INSERT INTO person VALUES (9, 'x', 'y', 1)")


class TestJoins:
    def test_one_hop(self, db):
        rows = db.query(
            "SELECT p.name FROM knows k JOIN person p ON p.id = k.p2 "
            "WHERE k.p1 = ?",
            (1,),
        )
        assert sorted(rows) == [("bob",), ("erin",)]

    def test_two_hop_excluding_source(self, db):
        rows = db.query(
            "SELECT DISTINCT p.name FROM knows k1 "
            "JOIN knows k2 ON k2.p1 = k1.p2 "
            "JOIN person p ON p.id = k2.p2 "
            "WHERE k1.p1 = ? AND k2.p2 <> ?",
            (1, 1),
        )
        assert sorted(rows) == [("carol",)]

    def test_left_join_keeps_unmatched(self, db):
        db.execute("INSERT INTO person VALUES (6, 'zed', 'ottawa', 99)")
        rows = db.query(
            "SELECT p.name, k.p2 FROM person p "
            "LEFT JOIN knows k ON k.p1 = p.id WHERE p.id = 6"
        )
        assert rows == [("zed", None)]

    def test_join_without_index_uses_hash(self, db):
        # join on a non-indexed column still works
        rows = db.query(
            "SELECT p2.name FROM person p1 "
            "JOIN person p2 ON p2.city = p1.city "
            "WHERE p1.id = 1 AND p2.id <> 1"
        )
        assert rows == [("carol",)]

    def test_explain_shows_index_join(self, db):
        plan = db.explain(
            "SELECT p.name FROM knows k JOIN person p ON p.id = k.p2 "
            "WHERE k.p1 = ?"
        )
        assert "IndexEqScan" in plan
        assert "IndexNLJoin" in plan


class TestAggregates:
    def test_count_star(self, db):
        assert db.query("SELECT COUNT(*) FROM person") == [(5,)]

    def test_count_star_empty(self, db):
        assert db.query("SELECT COUNT(*) FROM person WHERE id = 0") == [(0,)]

    def test_group_by(self, db):
        rows = db.query(
            "SELECT city, COUNT(*) AS n FROM person GROUP BY city "
            "ORDER BY n DESC, city"
        )
        assert rows == [
            ("toronto", 2),
            ("waterloo", 2),
            ("montreal", 1),
        ]

    def test_min_max_avg_sum(self, db):
        rows = db.query(
            "SELECT MIN(age), MAX(age), SUM(age), AVG(age) FROM person"
        )
        assert rows == [(25, 41, 159, 159 / 5)]

    def test_count_distinct(self, db):
        assert db.query("SELECT COUNT(DISTINCT city) FROM person") == [(3,)]

    def test_non_grouped_column_rejected(self, db):
        from repro.relational.sql.planner import PlanError

        with pytest.raises(PlanError):
            db.query("SELECT name, COUNT(*) FROM person GROUP BY city")


class TestDML:
    def test_insert_returns_rowcount(self, db):
        assert db.execute(
            "INSERT INTO person VALUES (10, 'x', 'y', 1)"
        ) == 1
        assert db.query("SELECT name FROM person WHERE id = 10") == [("x",)]

    def test_update_via_index(self, db):
        n = db.execute("UPDATE person SET age = 31 WHERE id = 1")
        assert n == 1
        assert db.query("SELECT age FROM person WHERE id = 1") == [(31,)]

    def test_update_via_scan(self, db):
        n = db.execute(
            "UPDATE person SET city = 'kitchener' WHERE city = 'waterloo'"
        )
        assert n == 2

    def test_update_indexed_column_repoints_index(self, db):
        db.execute("UPDATE person SET id = 100 WHERE id = 5")
        assert db.query("SELECT name FROM person WHERE id = 100") == [("erin",)]
        assert db.query("SELECT name FROM person WHERE id = 5") == []

    def test_delete(self, db):
        assert db.execute("DELETE FROM knows WHERE p1 = 1") == 2
        assert db.query("SELECT COUNT(*) FROM knows WHERE p1 = 1") == [(0,)]

    def test_delete_everything(self, db):
        assert db.execute("DELETE FROM knows") == 8
        assert db.query("SELECT COUNT(*) FROM knows") == [(0,)]

    def test_pk_null_rejected(self, db):
        with pytest.raises(ValueError):
            db.execute("INSERT INTO person VALUES (NULL, 'x', 'y', 1)")


class TestTransactions:
    def test_commit_groups_fsyncs(self, db):
        before = db.wal.fsync_count
        with db.transaction():
            db.execute("INSERT INTO person VALUES (20, 'a', 'b', 1)")
            db.execute("INSERT INTO person VALUES (21, 'c', 'd', 2)")
        assert db.wal.fsync_count == before + 1

    def test_abort_rolls_back_insert(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO person VALUES (30, 'gone', 'x', 1)")
                raise RuntimeError("boom")
        assert db.query("SELECT id FROM person WHERE id = 30") == []

    def test_abort_rolls_back_update(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("UPDATE person SET age = 99 WHERE id = 1")
                raise RuntimeError("boom")
        assert db.query("SELECT age FROM person WHERE id = 1") == [(30,)]

    def test_abort_rolls_back_delete(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("DELETE FROM person WHERE id = 1")
                raise RuntimeError("boom")
        assert db.query("SELECT name FROM person WHERE id = 1") == [("alice",)]

    def test_nested_transaction_rejected(self, db):
        with db.transaction():
            with pytest.raises(RuntimeError):
                with db.transaction():
                    pass


class TestAutocommitFailureReleasesLocks:
    """A storage-layer failure mid-DML must abort the autocommit txn.

    Before the fix (flagged by QA802) the exception propagated past
    ``auto.commit()`` and the row lock leaked forever: any retry of
    the same statement then died with a LockConflict against a
    transaction that no longer existed.
    """

    @staticmethod
    def _fail_once(monkeypatch, table, method):
        real = getattr(table, method)
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("simulated storage failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(table, method, flaky)

    def _no_locks_held(self, db):
        return all(
            not held for held in db.txns.locks._held_by_txn.values()
        )

    def test_failed_insert(self, db, monkeypatch):
        table = db.catalog.table("person")
        self._fail_once(monkeypatch, table, "insert")
        with pytest.raises(RuntimeError, match="storage failure"):
            db.execute(
                "INSERT INTO person VALUES (?, 'zed', 'x', 1)", (9,)
            )
        assert self._no_locks_held(db)
        # the retry re-acquires ('person', 9) — leaked, it would
        # raise LockConflict here
        db.execute("INSERT INTO person VALUES (?, 'zed', 'x', 1)", (9,))
        assert db.query("SELECT name FROM person WHERE id = 9") == [
            ("zed",)
        ]

    def test_failed_update(self, db, monkeypatch):
        table = db.catalog.table("person")
        self._fail_once(monkeypatch, table, "update")
        with pytest.raises(RuntimeError, match="storage failure"):
            db.execute("UPDATE person SET age = 99 WHERE id = 1")
        assert self._no_locks_held(db)
        db.execute("UPDATE person SET age = 99 WHERE id = 1")
        assert db.query("SELECT age FROM person WHERE id = 1") == [(99,)]

    def test_failed_delete(self, db, monkeypatch):
        table = db.catalog.table("person")
        self._fail_once(monkeypatch, table, "delete")
        with pytest.raises(RuntimeError, match="storage failure"):
            db.execute("DELETE FROM person WHERE id = 5")
        assert self._no_locks_held(db)
        db.execute("DELETE FROM person WHERE id = 5")
        assert db.query("SELECT id FROM person WHERE id = 5") == []


class TestRecursiveCTE:
    def test_counter(self, db):
        rows = db.query(
            "WITH RECURSIVE r (n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 5"
            ") SELECT n FROM r ORDER BY n"
        )
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_bfs_shortest_path(self, db):
        rows = db.query(
            "WITH RECURSIVE bfs (node, depth) AS ("
            "  SELECT k.p2, 1 FROM knows k WHERE k.p1 = ?"
            "  UNION"
            "  SELECT k.p2, b.depth + 1 FROM bfs b "
            "    JOIN knows k ON k.p1 = b.node WHERE b.depth < 8"
            ") SELECT MIN(depth) FROM bfs WHERE node = ?",
            (1, 4),
        )
        assert rows == [(3,)]

    def test_union_distinct_terminates_on_cycle(self, db):
        # reachability over the cyclic undirected graph
        rows = db.query(
            "WITH RECURSIVE reach (node) AS ("
            "  SELECT k.p2 FROM knows k WHERE k.p1 = ?"
            "  UNION"
            "  SELECT k.p2 FROM reach r JOIN knows k ON k.p1 = r.node"
            ") SELECT COUNT(*) FROM reach",
            (1,),
        )
        assert rows == [(5,)]  # everyone incl. the start (1 is reachable back)

    def test_runaway_recursion_capped(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query(
                "WITH RECURSIVE r (n) AS ("
                "SELECT 1 UNION ALL SELECT n + 1 FROM r"
                ") SELECT COUNT(*) FROM r"
            )


class TestShortestPathBuiltin:
    def test_requires_transitive_support(self, db):
        with pytest.raises(Exception):
            db.query(
                "SELECT shortest_path_len('knows', 'p1', 'p2', ?, ?)", (1, 4)
            )

    @pytest.fixture()
    def vdb(self):
        database = Database("column", transitive_support=True)
        database.execute("CREATE TABLE knows (p1 BIGINT, p2 BIGINT)")
        database.execute("CREATE INDEX ON knows (p1) USING HASH")
        database.execute("CREATE INDEX ON knows (p2) USING HASH")
        for a, b in [(1, 2), (2, 3), (3, 4), (1, 5), (6, 7)]:
            database.execute("INSERT INTO knows VALUES (?, ?)", (a, b))
            database.execute("INSERT INTO knows VALUES (?, ?)", (b, a))
        return database

    def test_direct_edge(self, vdb):
        assert vdb.query(
            "SELECT shortest_path_len('knows', 'p1', 'p2', ?, ?)", (1, 2)
        ) == [(1,)]

    def test_multi_hop(self, vdb):
        assert vdb.query(
            "SELECT shortest_path_len('knows', 'p1', 'p2', ?, ?)", (1, 4)
        ) == [(3,)]

    def test_same_node(self, vdb):
        assert vdb.query(
            "SELECT shortest_path_len('knows', 'p1', 'p2', ?, ?)", (3, 3)
        ) == [(0,)]

    def test_unreachable_returns_null(self, vdb):
        assert vdb.query(
            "SELECT shortest_path_len('knows', 'p1', 'p2', ?, ?)", (1, 7)
        ) == [(None,)]


class TestCatalogErrors:
    def test_unknown_table(self, db):
        with pytest.raises(KeyError):
            db.query("SELECT x FROM missing")

    def test_duplicate_table(self, db):
        with pytest.raises(ValueError):
            db.execute("CREATE TABLE person (id INT)")

    def test_unknown_column(self, db):
        with pytest.raises(SqlRuntimeError):
            db.query("SELECT bogus FROM person")

    def test_size_bytes_grows(self, db):
        before = db.size_bytes()
        for i in range(100, 160):
            db.execute(
                "INSERT INTO person VALUES (?, 'p', 'c', 1)", (i,)
            )
        assert db.size_bytes() > before
