"""Secondary-index visibility under held snapshots (DESIGN §13 fix).

Index entries are unversioned: when a writer changes an indexed value
after a reader's snapshot began, the entry is re-filed under the new
value.  On the seed code a snapshot probe by the *old* value then missed
the row it must still see (false negative) and a probe by the *new*
value surfaced a row whose snapshot-visible value doesn't match (false
positive).  Every store now re-checks the stamped-after-snapshot keys
(``VersionStore.stale_keys()``) against the snapshot-visible value —
these tests fail on the pre-fix code for all four indexed stores.
"""

import pytest

from repro.graphdb.store import GraphStore
from repro.relational.table import Table
from repro.storage.buffer import BufferPool, DiskManager
from repro.storage.codec import ColumnType
from repro.storage.mvcc import VersionStore
from repro.tinkerpop.inmemory import TinkerGraphProvider
from repro.titan.graph import titan_berkeley
from repro.txn import oracle


@pytest.fixture(autouse=True)
def no_leaked_snapshots():
    assert oracle.ORACLE.active_count() == 0
    assert oracle.CURRENT is None
    yield
    assert oracle.ORACLE.active_count() == 0
    assert oracle.CURRENT is None


def _table(storage: str = "row") -> Table:
    pool = BufferPool(DiskManager(), capacity=64) if storage == "row" else None
    table = Table(
        "person",
        [("id", ColumnType.INT), ("city", ColumnType.TEXT)],
        primary_key="id",
        storage=storage,
        pool=pool,
    )
    table.create_index("city", method="btree")
    return table


class TestStaleKeys:
    def test_empty_without_a_snapshot(self):
        store = VersionStore("t")
        with oracle.held_snapshot():
            store.record_update("k", "old")
        assert store.stale_keys() == []

    def test_reports_keys_stamped_after_the_snapshot(self):
        store = VersionStore("t")
        holder = oracle.ORACLE.begin()
        try:
            oracle.CURRENT = None
            store.record_update("k", "old")  # stamped after `holder`
            oracle.CURRENT = holder
            assert store.stale_keys() == ["k"]
            # a younger snapshot sees the update: nothing is stale to it
            young = oracle.ORACLE.begin()
            oracle.CURRENT = young
            assert store.stale_keys() == []
            oracle.ORACLE.release(young)
        finally:
            oracle.CURRENT = None
            oracle.ORACLE.release(holder)


class TestTableIndexVisibility:
    @pytest.mark.parametrize("storage", ["row", "column"])
    def test_lookup_by_old_value_still_finds_the_snapshot_row(
        self, storage
    ):
        table = _table(storage)
        handle = table.insert((1, "Leipzig"))
        table.insert((2, "Berlin"))
        with oracle.held_snapshot():
            table.update(handle, {"city": "Dresden"})
            # the snapshot must keep seeing the pre-update row ...
            assert table.lookup("city", "Leipzig") == [handle]
            # ... and must not see the post-snapshot value
            assert table.lookup("city", "Dresden") == []
        # once released, current reads follow the new value
        assert table.lookup("city", "Leipzig") == []
        assert table.lookup("city", "Dresden") == [handle]

    def test_range_lookup_respects_the_snapshot(self):
        table = _table("column")
        handle = table.insert((1, "Leipzig"))
        with oracle.held_snapshot():
            table.update(handle, {"city": "Zagreb"})
            assert list(table.range_lookup("city", "L", "M")) == [handle]
            assert list(table.range_lookup("city", "Z", "Za~")) == []
        assert list(table.range_lookup("city", "L", "M")) == []
        assert list(table.range_lookup("city", "Z", "Za~")) == [handle]

    def test_lookup_batch_respects_the_snapshot(self):
        table = _table("row")
        handle = table.insert((1, "Leipzig"))
        with oracle.held_snapshot():
            table.update(handle, {"city": "Dresden"})
            probed = table.lookup_batch("city", ["Leipzig", "Dresden"])
            assert probed == {"Leipzig": [handle], "Dresden": []}

    def test_rows_inserted_after_the_snapshot_stay_invisible(self):
        table = _table("row")
        with oracle.held_snapshot():
            table.insert((3, "Munich"))
            assert table.lookup("city", "Munich") == []


class TestGraphStoreIndexVisibility:
    def test_lookup_by_old_value_under_snapshot(self):
        store = GraphStore()
        store.create_index("Person", "city")
        node = store.create_node(("Person",), {"city": "Leipzig"})
        with oracle.held_snapshot():
            store.set_node_prop(node, "city", "Dresden")
            assert store.lookup("Person", "city", "Leipzig") == [node]
            assert store.lookup("Person", "city", "Dresden") == []
        assert store.lookup("Person", "city", "Leipzig") == []
        assert store.lookup("Person", "city", "Dresden") == [node]

    def test_deleted_relationship_reads_raise(self):
        store = GraphStore()
        a = store.create_node(("Person",), {})
        b = store.create_node(("Person",), {})
        rel = store.create_rel("KNOWS", a, b)
        assert store.rel_endpoints(rel) == ("KNOWS", a, b)
        store._rels[rel].deleted = True
        with pytest.raises(KeyError):
            store.rel_props(rel)


class TestTinkerGraphIndexVisibility:
    def test_lookup_by_old_value_under_snapshot(self):
        graph = TinkerGraphProvider()
        graph.create_index("person", "city")
        vid = graph.create_vertex("person", {"id": 1, "city": "Leipzig"})
        with oracle.held_snapshot():
            graph.set_vertex_prop(vid, "city", "Dresden")
            assert graph.lookup("person", "city", "Leipzig") == [vid]
            assert graph.lookup("person", "city", "Dresden") == []
        assert graph.lookup("person", "city", "Leipzig") == []
        assert graph.lookup("person", "city", "Dresden") == [vid]


class TestTitanIndexVisibility:
    def test_set_vertex_prop_refiles_the_composite_index_entry(self):
        titan = titan_berkeley()
        titan.create_index("person", "city")
        titan.create_vertex("person", {"id": 7, "city": "Leipzig"})
        titan.set_vertex_prop(7, "city", "Dresden")
        assert titan.lookup("person", "city", "Leipzig") == []
        assert titan.lookup("person", "city", "Dresden") == [7]

    def test_lookup_by_old_value_under_snapshot(self):
        titan = titan_berkeley()
        titan.create_index("person", "city")
        titan.create_vertex("person", {"id": 7, "city": "Leipzig"})
        with oracle.held_snapshot():
            titan.set_vertex_prop(7, "city", "Dresden")
            assert titan.lookup("person", "city", "Leipzig") == [7]
            assert titan.lookup("person", "city", "Dresden") == []
        assert titan.lookup("person", "city", "Leipzig") == []
        assert titan.lookup("person", "city", "Dresden") == [7]
