"""Crash-recovery tests: rebuild a database from its write-ahead log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Database


def seeded_db(storage="row"):
    db = Database(storage)
    db.execute(
        "CREATE TABLE person (id BIGINT PRIMARY KEY, name TEXT, age INT)"
    )
    db.execute("CREATE INDEX ON person (name) USING HASH")
    for pid, name, age in [(1, "a", 30), (2, "b", 40), (3, "c", 50)]:
        db.execute("INSERT INTO person VALUES (?, ?, ?)", (pid, name, age))
    return db


class TestRecovery:
    @pytest.mark.parametrize("storage", ["row", "column"])
    def test_inserts_survive(self, storage):
        db = seeded_db(storage)
        recovered = Database.recover(db.wal, storage=storage)
        assert recovered.query(
            "SELECT id, name, age FROM person ORDER BY id"
        ) == [(1, "a", 30), (2, "b", 40), (3, "c", 50)]

    def test_indexes_rebuilt(self):
        db = seeded_db()
        recovered = Database.recover(db.wal)
        table = recovered.catalog.table("person")
        assert table.has_index("id")
        assert table.has_index("name")
        assert recovered.query(
            "SELECT id FROM person WHERE name = 'b'"
        ) == [(2,)]

    def test_updates_and_deletes_survive(self):
        db = seeded_db()
        db.execute("UPDATE person SET age = 99 WHERE id = 2")
        db.execute("DELETE FROM person WHERE id = 1")
        recovered = Database.recover(db.wal)
        assert recovered.query(
            "SELECT id, age FROM person ORDER BY id"
        ) == [(2, 99), (3, 50)]

    def test_unsynced_tail_is_lost(self):
        db = seeded_db()
        # bypass autocommit: append a record without forcing the log
        db.catalog.table("person").insert((9, "ghost", 1))
        assert db.wal.unsynced_records == 1
        recovered = Database.recover(db.wal)
        assert recovered.query("SELECT id FROM person WHERE id = 9") == []

    def test_aborted_transaction_not_replayed_as_committed_state(self):
        db = seeded_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO person VALUES (7, 'x', 1)")
                raise RuntimeError("crash before commit")
        recovered = Database.recover(db.wal)
        # the insert and its compensating delete both replay (or neither
        # was made durable): the row must not exist either way
        assert recovered.query("SELECT id FROM person WHERE id = 7") == []

    def test_recovered_database_accepts_new_writes(self):
        db = seeded_db()
        recovered = Database.recover(db.wal)
        recovered.execute("INSERT INTO person VALUES (4, 'd', 60)")
        assert recovered.query("SELECT COUNT(*) FROM person") == [(4,)]
        # and the recovered WAL now logs again: recover the recovery
        twice = Database.recover(recovered.wal)
        assert twice.query("SELECT COUNT(*) FROM person") == [(4,)]

    def test_unknown_record_rejected(self):
        db = seeded_db()
        db.wal.append(b'["flurble", "person", []]')
        db.wal.commit()
        with pytest.raises(ValueError):
            Database.recover(db.wal)

    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "delete"]),
                st.integers(0, 20),
                st.integers(0, 100),
            ),
            max_size=40,
        )
    )
    def test_recovery_matches_original(self, ops):
        db = Database("row")
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v INT)")
        live: set[int] = set()
        for op, key, value in ops:
            if op == "insert" and key not in live:
                db.execute("INSERT INTO t VALUES (?, ?)", (key, value))
                live.add(key)
            elif op == "update" and key in live:
                db.execute("UPDATE t SET v = ? WHERE id = ?", (value, key))
            elif op == "delete" and key in live:
                db.execute("DELETE FROM t WHERE id = ?", (key,))
                live.discard(key)
        recovered = Database.recover(db.wal)
        original = db.query("SELECT id, v FROM t ORDER BY id")
        assert recovered.query("SELECT id, v FROM t ORDER BY id") == original
