"""Property-based shortest-path validation against networkx.

Every engine implements shortest path differently — recursive CTE
(Postgres), engine-internal frontier BFS (Virtuoso), bidirectional
record-chasing BFS (Neo4j), simple-path enumeration (Gremlin), iterative
frontier queries (SPARQL).  All of them must agree with networkx on
random graphs.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import GraphDatabase
from repro.relational import Database

# -- strategies ----------------------------------------------------------------


@st.composite
def undirected_graphs(draw):
    n = draw(st.integers(4, 14))
    density = draw(st.floats(0.1, 0.5))
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    edges = {
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if rng.random() < density
    }
    return n, sorted(edges)


def _expected(n, edges, a, b):
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    try:
        return nx.shortest_path_length(graph, a, b)
    except nx.NetworkXNoPath:
        return None


# -- engines under test ----------------------------------------------------------


def _postgres_sp(n, edges, a, b):
    db = Database("row")
    db.execute("CREATE TABLE knows (p1 BIGINT, p2 BIGINT)")
    db.execute("CREATE INDEX ON knows (p1) USING HASH")
    for x, y in edges:
        db.execute("INSERT INTO knows VALUES (?, ?)", (x, y))
        db.execute("INSERT INTO knows VALUES (?, ?)", (y, x))
    if a == b:
        return 0
    rows = db.query(
        "WITH RECURSIVE bfs (node, depth) AS ("
        "  SELECT k.p2, 1 FROM knows k WHERE k.p1 = ?"
        "  UNION"
        "  SELECT k.p2, b.depth + 1 FROM bfs b"
        "    JOIN knows k ON k.p1 = b.node WHERE b.depth < 20"
        ") SELECT MIN(depth) FROM bfs WHERE node = ?",
        (a, b),
    )
    return rows[0][0] if rows else None


def _virtuoso_sp(n, edges, a, b):
    db = Database("column", transitive_support=True)
    db.execute("CREATE TABLE knows (p1 BIGINT, p2 BIGINT)")
    db.execute("CREATE INDEX ON knows (p1) USING HASH")
    db.execute("CREATE INDEX ON knows (p2) USING HASH")
    for x, y in edges:
        db.execute("INSERT INTO knows VALUES (?, ?)", (x, y))
        db.execute("INSERT INTO knows VALUES (?, ?)", (y, x))
    rows = db.query(
        "SELECT shortest_path_len('knows', 'p1', 'p2', ?, ?)", (a, b)
    )
    return rows[0][0]


def _neo4j_sp(n, edges, a, b):
    db = GraphDatabase()
    db.create_index("V", "id")
    for v in range(n):
        db.execute("CREATE (x:V {id: $id})", {"id": v})
    for x, y in edges:
        db.execute(
            "MATCH (p:V {id: $a}), (q:V {id: $b}) CREATE (p)-[:E]->(q)",
            {"a": x, "b": y},
        )
    rows = db.execute(
        "MATCH p = shortestPath((x:V {id: $a})-[:E*]-(y:V {id: $b})) "
        "RETURN length(p)",
        {"a": a, "b": b},
    )
    return rows[0][0] if rows else None


def _gremlin_sp(n, edges, a, b):
    from repro.tinkerpop import Graph, P, TinkerGraphProvider, anon

    provider = TinkerGraphProvider()
    provider.create_index("V", "id")
    g = Graph(provider).traversal()
    vertex = {
        v: g.addV("V").property("id", v).next() for v in range(n)
    }
    for x, y in edges:
        g.V(vertex[x].id).addE("E").to(vertex[y]).iterate()
    if a == b:
        return 0
    paths = (
        g.V().has("V", "id", a)
        .repeat(anon().both("E").simplePath())
        .until(anon().has("id", P.eq(b)))
        .path().limit(1).toList()
    )
    return len(paths[0]) - 1 if paths else None


ENGINES = {
    "postgres-recursive-cte": _postgres_sp,
    "virtuoso-transitive": _virtuoso_sp,
    "neo4j-shortestpath": _neo4j_sp,
    "gremlin-repeat-until": _gremlin_sp,
}


@pytest.mark.parametrize("engine", sorted(ENGINES))
@settings(max_examples=20, deadline=None)
@given(data=undirected_graphs(), endpoints=st.tuples(st.integers(0, 13), st.integers(0, 13)))
def test_shortest_path_matches_networkx(engine, data, endpoints):
    n, edges = data
    a, b = endpoints[0] % n, endpoints[1] % n
    expected = _expected(n, edges, a, b)
    got = ENGINES[engine](n, edges, a, b)
    assert got == expected, (
        f"{engine}: sp({a},{b}) = {got}, networkx says {expected}; "
        f"edges={edges}"
    )


@settings(max_examples=15, deadline=None)
@given(data=undirected_graphs(), source=st.integers(0, 13))
def test_two_hop_matches_networkx(data, source):
    """The SQL 2-hop join semantics equal the graph 2-walk semantics."""
    n, edges = data
    a = source % n
    db = Database("row")
    db.execute("CREATE TABLE knows (p1 BIGINT, p2 BIGINT)")
    db.execute("CREATE INDEX ON knows (p1) USING HASH")
    for x, y in edges:
        db.execute("INSERT INTO knows VALUES (?, ?)", (x, y))
        db.execute("INSERT INTO knows VALUES (?, ?)", (y, x))
    rows = db.query(
        "SELECT DISTINCT k2.p2 FROM knows k1 "
        "JOIN knows k2 ON k2.p1 = k1.p2 "
        "WHERE k1.p1 = ? AND k2.p2 <> ? ORDER BY k2.p2",
        (a, a),
    )
    got = [r[0] for r in rows]

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    expected = set()
    for f in graph.neighbors(a):
        for ff in graph.neighbors(f):
            if ff != a:
                expected.add(ff)
    assert got == sorted(expected)
