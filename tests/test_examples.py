"""Smoke tests: every shipped example must run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Generated SNB" in out
    assert "Results stay consistent: True" in out


def test_social_app():
    out = run_example("social_app.py")
    assert "ada's timeline:" in out
    assert "hops apart" in out
    assert "suggested follows" in out


def test_gremlin_overhead():
    out = run_example("gremlin_overhead.py")
    assert "via server" in out
    for backend in ("neo4j-gremlin", "titan-c", "titan-b", "sqlg"):
        assert backend in out


def test_realtime_feed():
    out = run_example("realtime_feed.py", "postgres-sql")
    assert "reads/s" in out
    assert "writes/s" in out


def test_realtime_feed_rejects_unknown_system():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "realtime_feed.py"), "oracle"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0


@pytest.mark.slow
def test_system_comparison():
    out = run_example("system_comparison.py", "8000")
    assert "point lookup" in out
    assert "virtuoso-sparql" in out
