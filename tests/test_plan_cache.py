"""Plan-cache invalidation: DDL and ANALYZE must evict stale plans."""

import pytest

from repro.relational import Database


@pytest.fixture
def db():
    database = Database("row")
    database.execute(
        "CREATE TABLE person (id BIGINT PRIMARY KEY, city TEXT)"
    )
    for pid in range(30):
        database.execute(
            "INSERT INTO person VALUES (?, ?)", (pid, f"c{pid % 5}")
        )
    return database


QUERY = "SELECT id FROM person WHERE city = ?"


class TestCaching:
    def test_repeated_query_reuses_the_cached_plan(self, db):
        db.query(QUERY, ("c1",))
        epoch, plan = db._plan_cache[QUERY]
        db.query(QUERY, ("c2",))
        assert db._plan_cache[QUERY] == (epoch, plan)
        assert db._plan_cache[QUERY][1] is plan

    def test_stale_epoch_forces_a_replan(self, db):
        db.query(QUERY, ("c1",))
        _epoch, stale_plan = db._plan_cache[QUERY]
        db._stats_epoch += 1  # epoch moved without an explicit clear
        db.query(QUERY, ("c1",))
        fresh_epoch, fresh_plan = db._plan_cache[QUERY]
        assert fresh_epoch == db._stats_epoch
        assert fresh_plan is not stale_plan


class TestInvalidation:
    def test_create_index_evicts_cached_plans(self, db):
        db.query(QUERY, ("c1",))
        assert QUERY in db._plan_cache
        epoch = db._stats_epoch
        db.execute("CREATE INDEX ON person (city) USING HASH")
        assert db._plan_cache == {}
        assert db._stats_epoch > epoch

    def test_analyze_evicts_cached_plans(self, db):
        db.query(QUERY, ("c1",))
        assert QUERY in db._plan_cache
        epoch = db._stats_epoch
        db.analyze()
        assert db._plan_cache == {}
        assert db._stats_epoch > epoch

    def test_reordering_toggle_evicts_cached_plans(self, db):
        db.query(QUERY, ("c1",))
        epoch = db._stats_epoch
        db.set_join_reordering(False)
        assert db._plan_cache == {}
        assert db._stats_epoch > epoch
        db.set_join_reordering(True)

    def test_plan_made_before_an_index_uses_it_afterward(self, db):
        before = db.explain(QUERY)
        assert "SeqScan" in before
        rows_before = db.query(QUERY, ("c1",))
        db.execute("CREATE INDEX ON person (city) USING HASH")
        after = db.explain(QUERY)
        assert "IndexEqScan" in after
        assert sorted(db.query(QUERY, ("c1",))) == sorted(rows_before)
