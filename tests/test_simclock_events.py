"""Unit tests for the discrete-event simulator."""

import pytest

from repro.simclock import Acquire, Join, Release, Resource, Simulator, Timeout


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield Timeout(1000.0)
        return sim.now_us

    p = sim.spawn(proc())
    sim.run()
    assert p.finished
    assert p.result == pytest.approx(1000.0)


def test_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(name, delay):
        yield Timeout(delay)
        order.append(name)

    sim.spawn(proc("slow", 200.0))
    sim.spawn(proc("fast", 100.0))
    sim.spawn(proc("tie-a", 150.0))
    sim.spawn(proc("tie-b", 150.0))
    sim.run()
    # ties broken by spawn order
    assert order == ["fast", "tie-a", "tie-b", "slow"]


def test_resource_serializes_holders():
    sim = Simulator()
    latch = Resource(capacity=1, name="latch")
    spans = []

    def proc(name):
        yield Acquire(latch)
        start = sim.now_us
        yield Timeout(100.0)
        yield Release(latch)
        spans.append((name, start, start + 100.0))

    for i in range(3):
        sim.spawn(proc(i))
    sim.run()
    # non-overlapping, FIFO order
    assert [name for name, *_ in spans] == [0, 1, 2]
    for (_, _, end_prev), (_, start_next, _) in zip(spans, spans[1:]):
        assert start_next >= end_prev


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    pool = Resource(capacity=2, name="pool")

    def proc():
        yield Acquire(pool)
        yield Timeout(100.0)
        yield Release(pool)

    for _ in range(4):
        sim.spawn(proc())
    end = sim.run()
    # 4 jobs of 100us on 2 servers -> 200us
    assert end == pytest.approx(200.0)


def test_resource_tracks_wait_time():
    sim = Simulator()
    latch = Resource(capacity=1)

    def proc():
        yield Acquire(latch)
        yield Timeout(50.0)
        yield Release(latch)

    for _ in range(2):
        sim.spawn(proc())
    sim.run()
    assert latch.total_acquisitions == 2
    assert latch.total_wait_us == pytest.approx(50.0)
    assert latch.mean_wait_us == pytest.approx(25.0)


def test_release_of_idle_resource_raises():
    sim = Simulator()
    latch = Resource(capacity=1)

    def proc():
        yield Release(latch)

    sim.spawn(proc())
    with pytest.raises(RuntimeError, match="idle resource"):
        sim.run()


def test_join_returns_result():
    sim = Simulator()

    def worker():
        yield Timeout(500.0)
        return 42

    def waiter(target):
        value = yield Join(target)
        return (value, sim.now_us)

    w = sim.spawn(worker())
    j = sim.spawn(waiter(w))
    sim.run()
    assert j.result == (42, pytest.approx(500.0))


def test_join_on_finished_process_is_immediate():
    sim = Simulator()

    def worker():
        yield Timeout(10.0)
        return "done"

    w = sim.spawn(worker())
    sim.run()

    def waiter():
        value = yield Join(w)
        return value

    j = sim.spawn(waiter())
    sim.run()
    assert j.result == "done"


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield Timeout(10_000.0)

    sim.spawn(proc())
    end = sim.run(until_us=100.0)
    assert end == pytest.approx(100.0)


def test_process_error_propagates():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("kaput")

    sim.spawn(bad(), name="bad")
    with pytest.raises(RuntimeError, match="bad"):
        sim.run()


def test_unsupported_command_rejected():
    sim = Simulator()

    def proc():
        yield "what is this"

    sim.spawn(proc())
    with pytest.raises(TypeError, match="unsupported command"):
        sim.run()


def test_live_process_count():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    sim.spawn(proc())
    sim.spawn(proc())
    assert sim.live_processes == 2
    sim.run()
    assert sim.live_processes == 0
