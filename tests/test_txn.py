"""Tests for the lock manager and transaction lifecycle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.txn import (
    DeadlockError,
    LockConflict,
    LockManager,
    LockMode,
    Transaction,
    TransactionManager,
    TxnState,
)
from repro.storage import WriteAheadLog

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


class TestLockManager:
    def test_shared_locks_are_compatible(self):
        lm = LockManager()
        lm.acquire(1, "row", S)
        lm.acquire(2, "row", S)
        assert set(lm.holders("row")) == {1, 2}

    def test_exclusive_conflicts_with_shared(self):
        lm = LockManager()
        lm.acquire(1, "row", S)
        with pytest.raises(LockConflict) as info:
            lm.acquire(2, "row", X)
        assert info.value.holders == {1}

    def test_exclusive_conflicts_with_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "row", X)
        assert not lm.try_acquire(2, "row", X)

    def test_shared_blocked_by_exclusive(self):
        lm = LockManager()
        lm.acquire(1, "row", X)
        with pytest.raises(LockConflict):
            lm.acquire(2, "row", S)

    def test_reacquire_is_noop(self):
        lm = LockManager()
        lm.acquire(1, "row", X)
        lm.acquire(1, "row", X)
        lm.acquire(1, "row", S)  # weaker request under X: fine
        assert lm.holders("row") == {1: X}

    def test_upgrade_succeeds_when_sole_holder(self):
        lm = LockManager()
        lm.acquire(1, "row", S)
        lm.acquire(1, "row", X)
        assert lm.holders("row") == {1: X}

    def test_acquire_many_sorts_and_dedups(self):
        lm = LockManager()
        order: list[object] = []
        original = lm.acquire

        def recording(txn_id, resource, mode):
            order.append(resource)
            return original(txn_id, resource, mode)

        lm.acquire = recording
        lm.acquire_many(1, ["b", "a", "c", "a"], X)
        assert order == ["a", "b", "c"]
        for resource in ("a", "b", "c"):
            assert lm.holders(resource) == {1: X}

    def test_acquire_many_sorts_tuple_resources(self):
        lm = LockManager()
        order: list[object] = []
        original = lm.acquire

        def recording(txn_id, resource, mode):
            order.append(resource)
            return original(txn_id, resource, mode)

        lm.acquire = recording
        lm.acquire_many(1, [("knows", 9), ("knows", 10), ("knows", 2)], X)
        # repr-sorted: ('knows', 10) < ('knows', 2) < ('knows', 9)
        assert order == sorted(order, key=repr)
        assert len(order) == 3

    def test_acquire_many_conflicts_like_acquire(self):
        lm = LockManager()
        lm.acquire(2, "b", X)
        with pytest.raises(LockConflict):
            lm.acquire_many(1, ["a", "b"], X)

    def test_upgrade_blocked_by_other_reader(self):
        lm = LockManager()
        lm.acquire(1, "row", S)
        lm.acquire(2, "row", S)
        with pytest.raises(LockConflict):
            lm.acquire(1, "row", X)

    def test_release_all_frees_resources(self):
        lm = LockManager()
        lm.acquire(1, "a", X)
        lm.acquire(1, "b", S)
        assert lm.release_all(1) == 2
        assert lm.try_acquire(2, "a", X)
        assert lm.locks_held(1) == set()

    def test_deadlock_detected(self):
        lm = LockManager()
        lm.register_wait(1, {2})
        lm.register_wait(2, {3})
        with pytest.raises(DeadlockError) as info:
            lm.register_wait(3, {1})
        assert set(info.value.cycle) >= {1, 3}

    def test_self_wait_ignored(self):
        lm = LockManager()
        lm.register_wait(1, {1})  # no cycle, no crash

    def test_clear_wait(self):
        lm = LockManager()
        lm.register_wait(1, {2})
        lm.clear_wait(1)
        lm.register_wait(2, {1})  # would be a cycle if 1->2 remained

    def test_release_clears_incoming_waits(self):
        lm = LockManager()
        lm.register_wait(1, {2})
        lm.release_all(2)
        lm.register_wait(2, {1})  # 1 no longer waits on 2

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 4),
                st.sampled_from(["a", "b", "c"]),
                st.sampled_from([S, X]),
            ),
            max_size=40,
        )
    )
    def test_invariant_no_incompatible_holders(self, requests):
        lm = LockManager()
        for txn, res, mode in requests:
            lm.try_acquire(txn, res, mode)
            holders = lm.holders(res)
            modes = list(holders.values())
            if X in modes:
                assert len(holders) == 1


class TestTransactionManager:
    def test_begin_returns_active_txn(self):
        tm = TransactionManager()
        txn = tm.begin()
        assert isinstance(txn, Transaction)
        assert txn.state is TxnState.ACTIVE

    def test_txn_ids_increase(self):
        tm = TransactionManager()
        assert tm.begin().txn_id < tm.begin().txn_id

    def test_commit_releases_locks(self):
        tm = TransactionManager()
        txn = tm.begin()
        tm.locks.acquire(txn.txn_id, "row", X)
        txn.commit()
        assert txn.state is TxnState.COMMITTED
        assert tm.locks.try_acquire(999, "row", X)
        assert tm.committed == 1

    def test_abort_runs_undo_in_reverse(self):
        tm = TransactionManager()
        txn = tm.begin()
        trace = []
        txn.on_abort(lambda: trace.append("first"))
        txn.on_abort(lambda: trace.append("second"))
        txn.abort()
        assert trace == ["second", "first"]
        assert txn.state is TxnState.ABORTED
        assert tm.aborted == 1

    def test_commit_discards_undo(self):
        tm = TransactionManager()
        txn = tm.begin()
        trace = []
        txn.on_abort(lambda: trace.append("x"))
        txn.commit()
        assert trace == []

    def test_double_commit_rejected(self):
        tm = TransactionManager()
        txn = tm.begin()
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.commit()

    def test_abort_after_commit_rejected(self):
        tm = TransactionManager()
        txn = tm.begin()
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.abort()

    def test_on_abort_requires_active(self):
        tm = TransactionManager()
        txn = tm.begin()
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.on_abort(lambda: None)

    def test_commit_forces_wal(self):
        wal = WriteAheadLog()
        tm = TransactionManager(wal=wal)
        txn = tm.begin()
        wal.append(b"change")
        txn.commit()
        assert wal.fsync_count == 1
        assert wal.unsynced_records == 0
