"""Tests for the benchmark harness: parameter curation and latency suites."""

import math

import pytest

from repro.core import make_connector
from repro.core.benchmark import (
    MICRO_QUERIES,
    LatencyBenchmark,
    WorkloadParams,
    dataset_statistics,
)
from repro.core.connectors.base import OperationFailed
from repro.snb import GeneratorConfig, generate

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=13)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


class TestWorkloadParams:
    def test_person_ids_have_friends(self, dataset):
        params = WorkloadParams.curate(dataset, count=10, seed=2)
        adjacency = set()
        for knows in dataset.knows:
            adjacency.add(knows.person1)
            adjacency.add(knows.person2)
        assert all(pid in adjacency for pid in params.person_ids)

    def test_path_pairs_reachable_within_four(self, dataset):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edges_from(
            (k.person1, k.person2) for k in dataset.knows
        )
        params = WorkloadParams.curate(dataset, count=10, seed=2)
        for a, b in params.path_pairs:
            assert nx.has_path(graph, a, b)
            assert 2 <= nx.shortest_path_length(graph, a, b) <= 3

    def test_deterministic_for_seed(self, dataset):
        a = WorkloadParams.curate(dataset, seed=9)
        b = WorkloadParams.curate(dataset, seed=9)
        assert a.person_ids == b.person_ids
        assert a.path_pairs == b.path_pairs

    def test_message_ids_are_posts(self, dataset):
        params = WorkloadParams.curate(dataset, count=10, seed=2)
        post_ids = {p.id for p in dataset.posts}
        assert all(mid in post_ids for mid in params.message_ids)


class TestLatencyBenchmark:
    def test_run_returns_all_micro_queries(self, dataset):
        connector = make_connector("postgres-sql")
        connector.load(dataset)
        bench = LatencyBenchmark(dataset, repetitions=5)
        results = bench.run(connector)
        assert set(results) == set(MICRO_QUERIES)
        assert all(v > 0 for v in results.values())

    def test_measure_counts_repetitions(self, dataset):
        connector = make_connector("postgres-sql")
        connector.load(dataset)
        bench = LatencyBenchmark(dataset, repetitions=7)
        recorder = bench.measure(connector, "point_lookup")
        assert recorder.count == 7

    def test_dnf_reported_as_nan(self, dataset):
        connector = make_connector("postgres-sql")
        connector.load(dataset)

        def failing(*args):
            raise OperationFailed("synthetic timeout")

        connector.shortest_path = failing  # type: ignore[method-assign]
        bench = LatencyBenchmark(dataset, repetitions=3)
        results = bench.run(connector)
        assert math.isnan(results["shortest_path"])
        assert results["point_lookup"] > 0

    def test_shortest_path_measured_on_pairs(self, dataset):
        connector = make_connector("virtuoso-sql")
        connector.load(dataset)
        bench = LatencyBenchmark(dataset, repetitions=4)
        recorder = bench.measure(connector, "shortest_path")
        assert recorder.count == 4

    def test_cheaper_query_is_cheaper(self, dataset):
        connector = make_connector("postgres-sql")
        connector.load(dataset)
        bench = LatencyBenchmark(dataset, repetitions=10)
        results = bench.run(connector)
        assert results["point_lookup"] <= results["two_hop"]


class TestDatasetStatistics:
    def test_matches_dataset_counts(self, dataset):
        stats = dataset_statistics(dataset)
        assert stats["vertices"] == dataset.vertex_count()
        assert stats["edges"] == dataset.edge_count()
        assert stats["raw_bytes"] > 0
