"""Tests for slotted pages and the row codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import PAGE_SIZE, ColumnType, RowCodec, SlottedPage
from repro.storage.pages import PageFullError


class TestSlottedPage:
    def test_empty_page(self):
        page = SlottedPage()
        assert page.n_slots == 0
        assert page.records() == []
        assert page.free_space() > PAGE_SIZE - 64

    def test_insert_and_read(self):
        page = SlottedPage()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_inserts_keep_distinct_slots(self):
        page = SlottedPage()
        slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
        assert slots == list(range(10))
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"rec{i}".encode()

    def test_delete_tombstones(self):
        page = SlottedPage()
        slot = page.insert(b"bye")
        page.delete(slot)
        with pytest.raises(KeyError):
            page.read(slot)
        assert page.live_count() == 0
        # slot numbers are not reused
        assert page.insert(b"next") == 1

    def test_update_in_place_same_size(self):
        page = SlottedPage()
        slot = page.insert(b"aaaa")
        assert page.update_in_place(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"

    def test_update_in_place_shrink(self):
        page = SlottedPage()
        slot = page.insert(b"aaaa")
        assert page.update_in_place(slot, b"cc")
        assert page.read(slot) == b"cc"

    def test_update_in_place_grow_refused(self):
        page = SlottedPage()
        slot = page.insert(b"aa")
        assert not page.update_in_place(slot, b"ccc")
        assert page.read(slot) == b"aa"

    def test_page_full(self):
        page = SlottedPage()
        big = b"x" * 4000
        page.insert(big)
        page.insert(big)
        with pytest.raises(PageFullError):
            page.insert(big)

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            SlottedPage().insert(b"")

    def test_page_roundtrips_through_bytes(self):
        page = SlottedPage()
        page.insert(b"persisted")
        copy = SlottedPage(bytearray(bytes(page.buf)))
        assert copy.read(0) == b"persisted"

    @given(st.lists(st.binary(min_size=1, max_size=200), max_size=30))
    def test_insert_read_roundtrip(self, records):
        page = SlottedPage()
        stored = []
        for rec in records:
            if page.fits(rec):
                stored.append((page.insert(rec), rec))
        for slot, rec in stored:
            assert page.read(slot) == rec


ROW_TYPES = [ColumnType.INT, ColumnType.FLOAT, ColumnType.TEXT, ColumnType.BOOL]


class TestRowCodec:
    def test_roundtrip_simple(self):
        codec = RowCodec(ROW_TYPES)
        row = (42, 3.5, "héllo", True)
        assert codec.decode(codec.encode(row)) == row

    def test_nulls(self):
        codec = RowCodec(ROW_TYPES)
        row = (None, None, None, None)
        assert codec.decode(codec.encode(row)) == row

    def test_wrong_arity_rejected(self):
        codec = RowCodec([ColumnType.INT])
        with pytest.raises(ValueError):
            codec.encode((1, 2))

    def test_type_mismatch_rejected(self):
        codec = RowCodec([ColumnType.INT])
        with pytest.raises(TypeError):
            codec.encode(("not an int",))

    def test_trailing_garbage_rejected(self):
        codec = RowCodec([ColumnType.BOOL])
        data = codec.encode((True,)) + b"x"
        with pytest.raises(ValueError):
            codec.decode(data)

    @given(
        st.tuples(
            st.one_of(st.none(), st.integers(-(2**62), 2**62)),
            st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
            st.one_of(st.none(), st.text(max_size=100)),
            st.one_of(st.none(), st.booleans()),
        )
    )
    def test_roundtrip_property(self, row):
        codec = RowCodec(ROW_TYPES)
        assert codec.decode(codec.encode(row)) == row
