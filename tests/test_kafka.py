"""Tests for the Kafka analogue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kafka import Broker, Consumer, Producer


@pytest.fixture()
def broker():
    b = Broker()
    b.create_topic("updates", partitions=2)
    return b


class TestBroker:
    def test_create_topic_once(self, broker):
        with pytest.raises(ValueError):
            broker.create_topic("updates")

    def test_topic_requires_partition(self):
        b = Broker()
        with pytest.raises(ValueError):
            b.create_topic("t", partitions=0)

    def test_append_assigns_offsets(self, broker):
        assert broker.append("updates", 0, "k", "v0", 1) == 0
        assert broker.append("updates", 0, "k", "v1", 2) == 1
        assert broker.end_offset("updates", 0) == 2
        assert broker.end_offset("updates", 1) == 0

    def test_fetch_range(self, broker):
        for i in range(10):
            broker.append("updates", 0, None, f"v{i}", i)
        batch = broker.fetch("updates", 0, 3, 4)
        assert [r.value for r in batch] == ["v3", "v4", "v5", "v6"]

    def test_unknown_topic(self, broker):
        with pytest.raises(KeyError):
            broker.append("nope", 0, None, "v", 0)


class TestProducer:
    def test_batching_defers_until_flush(self, broker):
        producer = Producer(broker, batch_size=8)
        for i in range(5):
            producer.send("updates", i, f"v{i}")
        assert broker.total_records("updates") == 0
        producer.flush()
        assert broker.total_records("updates") == 5

    def test_auto_flush_at_batch_size(self, broker):
        producer = Producer(broker, batch_size=3)
        for i in range(3):
            producer.send("updates", i, f"v{i}")
        assert broker.total_records("updates") == 3

    def test_same_key_same_partition(self, broker):
        producer = Producer(broker, batch_size=1)
        for _ in range(5):
            producer.send("updates", "fixed-key", "v")
        non_empty = [
            p
            for p in range(2)
            if broker.end_offset("updates", p) > 0
        ]
        assert len(non_empty) == 1


class TestConsumer:
    def test_poll_sees_all_records_in_partition_order(self, broker):
        producer = Producer(broker, batch_size=1)
        for i in range(20):
            producer.send("updates", i, f"v{i}", timestamp_ms=i)
        consumer = Consumer(broker, "g1", "updates")
        seen = []
        while True:
            batch = consumer.poll(7)
            if not batch:
                break
            seen.extend(r.value for r in batch)
        assert sorted(seen) == sorted(f"v{i}" for i in range(20))
        # per-partition order is preserved
        per_partition: dict[int, list[int]] = {}
        consumer2 = Consumer(broker, "g2", "updates")
        for record in consumer2.poll(100):
            per_partition.setdefault(record.partition, []).append(
                record.offset
            )
        for offsets in per_partition.values():
            assert offsets == sorted(offsets)

    def test_groups_are_independent(self, broker):
        producer = Producer(broker, batch_size=1)
        producer.send("updates", 1, "v")
        a = Consumer(broker, "a", "updates")
        b = Consumer(broker, "b", "updates")
        assert len(a.poll()) == 1
        assert len(b.poll()) == 1

    def test_commit_and_seek(self, broker):
        producer = Producer(broker, batch_size=1)
        for i in range(4):
            producer.send("updates", "k", f"v{i}")
        consumer = Consumer(broker, "g", "updates")
        first = consumer.poll(2)
        consumer.commit()
        consumer.poll(2)
        consumer.seek_to_committed()  # uncommitted batch is re-delivered
        redelivered = consumer.poll(2)
        assert [r.offset for r in redelivered] != [r.offset for r in first]

    def test_lag(self, broker):
        producer = Producer(broker, batch_size=1)
        for i in range(6):
            producer.send("updates", i, "v")
        consumer = Consumer(broker, "g", "updates")
        assert consumer.lag() == 6
        consumer.poll(4)
        assert consumer.lag() == 2

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 100), max_size=80),
        st.integers(1, 9),
        st.integers(1, 4),
    )
    def test_everything_produced_is_consumed_once(
        self, keys, batch_size, partitions
    ):
        broker = Broker()
        broker.create_topic("t", partitions=partitions)
        producer = Producer(broker, batch_size=batch_size)
        for i, key in enumerate(keys):
            producer.send("t", key, i)
        producer.flush()
        consumer = Consumer(broker, "g", "t")
        seen = []
        while True:
            batch = consumer.poll(5)
            if not batch:
                break
            seen.extend(r.value for r in batch)
        assert sorted(seen) == list(range(len(keys)))
