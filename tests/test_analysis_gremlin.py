"""The Gremlin walker: clean built-in catalog, seeded-defect detection."""

from repro.analysis import analyze_gremlin
from repro.core.connectors.gremlin import GREMLIN_TRAVERSALS
from repro.tinkerpop import P


def codes(builder, sample=None, operation="test"):
    entries = ((builder, sample or {}),)
    return [
        d.code for d in analyze_gremlin(operation, entries).diagnostics
    ]


class TestBuiltinCatalog:
    def test_every_operation_is_clean(self):
        for operation, entries in GREMLIN_TRAVERSALS.items():
            result = analyze_gremlin(operation, entries)
            assert result.diagnostics == [], (
                operation,
                [str(d) for d in result.diagnostics],
            )

    def test_point_lookup_footprint(self):
        result = analyze_gremlin(
            "point_lookup", GREMLIN_TRAVERSALS["point_lookup"]
        )
        assert result.footprint == {"person"}

    def test_message_forum_footprint(self):
        result = analyze_gremlin(
            "message_forum", GREMLIN_TRAVERSALS["message_forum"]
        )
        assert {"post", "comment", "forum", "containerOf"} <= (
            result.footprint
        )


class TestMutations:
    def test_unknown_vertex_label(self):
        assert codes(
            lambda g: g.V().has("persn", "id", 0).valueMap()
        ) == ["QA101"]

    def test_unknown_edge_label(self):
        assert codes(
            lambda g: g.V().has("person", "id", 0).both("knowz")
        ) == ["QA102"]

    def test_unknown_property(self):
        assert codes(
            lambda g: g.V().has("person", "id", 0).values("nickname")
        ) == ["QA103"]

    def test_builder_error_is_a_parse_error(self):
        assert codes(lambda g: g.to(None)) == ["QA105"]

    def test_wrong_typed_predicate(self):
        assert codes(
            lambda g: g.V().has("person", "id", 0)
            .has("firstName", P.eq(42))
        ) == ["QA201"]

    def test_swapped_edge_direction(self):
        # containerOf runs forum -> post: a person has no such out-edge
        assert codes(
            lambda g: g.V().has("person", "id", 0).out("containerOf")
        ) == ["QA202"]

    def test_unanchored_scan(self):
        assert codes(
            lambda g: g.V().hasLabel("person").values("id")
        ) == ["QA303"]

    def test_id_anchored_scan_is_fine(self):
        assert codes(
            lambda g: g.V().has("person", "id", 0).values("id")
        ) == []

    def test_add_edge_from_wrong_source(self):
        # hasModerator's source is forum, not person
        assert codes(
            lambda g: g.V().has("person", "id", 0)
            .addE("hasModerator").to(None)
        ) == ["QA202"]
