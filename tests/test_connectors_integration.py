"""Cross-system integration tests.

Loads one small SNB dataset into all eight connectors and asserts that
every read operation returns identical results everywhere — the property
that makes the paper's cross-system latency comparison meaningful.
"""

import pytest

from repro.core import SUT_KEYS, make_connector
from repro.core.benchmark import WorkloadParams
from repro.snb import GeneratorConfig, UpdateKind, generate

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=13)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


@pytest.fixture(scope="module")
def loaded(dataset):
    connectors = {}
    for key in SUT_KEYS:
        connector = make_connector(key)
        connector.load(dataset)
        connectors[key] = connector
    return connectors


@pytest.fixture(scope="module")
def params(dataset):
    return WorkloadParams.curate(dataset, count=6, seed=3)


def _all_answers(loaded, op, *args):
    return {key: getattr(c, op)(*args) for key, c in loaded.items()}


class TestReadConsistency:
    def test_point_lookup_consistent(self, loaded, params):
        for pid in params.person_ids[:4]:
            answers = _all_answers(loaded, "point_lookup", pid)
            reference = answers["postgres-sql"]
            assert reference, f"empty point lookup for {pid}"
            assert all(a == reference for a in answers.values()), answers

    def test_one_hop_consistent(self, loaded, params):
        for pid in params.person_ids[:4]:
            answers = _all_answers(loaded, "one_hop", pid)
            reference = answers["postgres-sql"]
            assert all(a == reference for a in answers.values()), answers

    def test_two_hop_consistent(self, loaded, params):
        for pid in params.person_ids[:3]:
            answers = _all_answers(loaded, "two_hop", pid)
            reference = answers["postgres-sql"]
            assert all(a == reference for a in answers.values()), answers

    def test_shortest_path_consistent(self, loaded, params):
        for pair in params.path_pairs[:3]:
            answers = _all_answers(loaded, "shortest_path", *pair)
            reference = answers["postgres-sql"]
            assert reference is not None
            assert all(a == reference for a in answers.values()), (
                pair,
                answers,
            )

    def test_person_friends_consistent(self, loaded, params):
        pid = params.person_ids[0]
        answers = _all_answers(loaded, "person_friends", pid)
        reference = [tuple(r) for r in answers["postgres-sql"]]
        for key, rows in answers.items():
            assert [tuple(r) for r in rows] == reference, key

    def test_message_content_consistent(self, loaded, params):
        for mid in params.message_ids[:4]:
            answers = _all_answers(loaded, "message_content", mid)
            reference = tuple(answers["postgres-sql"])
            for key, row in answers.items():
                assert tuple(row) == reference, (key, mid)

    def test_message_creator_consistent(self, loaded, params):
        mid = params.message_ids[0]
        answers = _all_answers(loaded, "message_creator", mid)
        reference = tuple(answers["postgres-sql"])
        for key, row in answers.items():
            assert tuple(row) == reference, key

    def test_message_forum_consistent(self, loaded, params):
        mid = params.message_ids[0]
        answers = _all_answers(loaded, "message_forum", mid)
        reference = tuple(answers["postgres-sql"])
        for key, row in answers.items():
            assert tuple(row) == reference, key

    def test_message_replies_consistent(self, loaded, dataset):
        # pick a post that definitely has replies
        replied = {c.reply_of for c in dataset.comments}
        post_id = next(p.id for p in dataset.posts if p.id in replied)
        answers = _all_answers(loaded, "message_replies", post_id)
        reference = [tuple(r) for r in answers["postgres-sql"]]
        assert reference
        for key, rows in answers.items():
            assert [tuple(r) for r in rows] == reference, key

    def test_complex_two_hop_consistent(self, loaded, params):
        pid = params.person_ids[0]
        answers = _all_answers(loaded, "complex_two_hop", pid)
        reference = [tuple(r) for r in answers["postgres-sql"]]
        for key, rows in answers.items():
            assert [tuple(r) for r in rows] == reference, key

    def test_recent_posts_consistent(self, loaded, dataset):
        creator = dataset.posts[0].creator
        answers = _all_answers(loaded, "person_recent_posts", creator, 5)
        reference = [tuple(r) for r in answers["postgres-sql"]]
        assert reference
        for key, rows in answers.items():
            assert [tuple(r) for r in rows] == reference, key

    def test_person_profile_nonempty_everywhere(self, loaded, params):
        pid = params.person_ids[0]
        answers = _all_answers(loaded, "person_profile", pid)
        for key, row in answers.items():
            assert row and row[0] is not None, key


class TestUpdatesApplyEverywhere:
    @pytest.fixture(scope="class")
    def updated(self, dataset):
        """Fresh connectors with the first 40 update events applied."""
        connectors = {}
        events = dataset.updates[:40]
        for key in SUT_KEYS:
            connector = make_connector(key)
            connector.load(dataset)
            for event in events:
                connector.apply_update(event)
            connectors[key] = connector
        return connectors, events

    def test_new_friendships_visible(self, updated):
        connectors, events = updated
        friendship = next(
            (e for e in events if e.kind is UpdateKind.ADD_FRIENDSHIP), None
        )
        if friendship is None:
            pytest.skip("no friendship in the first events")
        knows = friendship.payload
        for key, connector in connectors.items():
            assert knows.person2 in connector.one_hop(knows.person1), key

    def test_new_comments_visible(self, updated):
        connectors, events = updated
        comment_event = next(
            (e for e in events if e.kind is UpdateKind.ADD_COMMENT), None
        )
        if comment_event is None:
            pytest.skip("no comment in the first events")
        comment = comment_event.payload
        for key, connector in connectors.items():
            content = connector.message_content(comment.id)
            assert content and content[0] == comment.content, key

    def test_memberships_visible_via_forum(self, updated):
        connectors, events = updated
        membership = next(
            (e for e in events if e.kind is UpdateKind.ADD_FORUM_MEMBERSHIP),
            None,
        )
        if membership is None:
            pytest.skip("no membership in the first events")
        # membership has no direct read; assert it did not corrupt reads
        for key, connector in connectors.items():
            assert connector.point_lookup(
                membership.payload.person
            ), key


class TestSizes:
    def test_every_connector_reports_size(self, loaded):
        for key, connector in loaded.items():
            assert connector.size_bytes() > 0, key

    def test_rdbms_smaller_than_graph_store(self, loaded):
        """Table 1 shape: Virtuoso-RDBMS is the most compact, Neo4j and
        Titan-B are among the largest."""
        sizes = {k: c.size_bytes() for k, c in loaded.items()}
        assert sizes["virtuoso-sql"] < sizes["neo4j-cypher"]


class TestFriendsRecentPosts:
    def test_consistent_across_systems(self, loaded, params):
        pid = params.person_ids[0]
        answers = _all_answers(loaded, "friends_recent_posts", pid, 8)
        reference = [tuple(r) for r in answers["postgres-sql"]]
        for key, rows in answers.items():
            assert [tuple(r) for r in rows] == reference, key

    def test_messages_belong_to_friends(self, loaded, params, dataset):
        pid = params.person_ids[1]
        connector = loaded["postgres-sql"]
        friends = set(connector.one_hop(pid))
        for _mid, fid, _content, _d in connector.friends_recent_posts(pid):
            assert fid in friends

    def test_sorted_newest_first(self, loaded, params):
        pid = params.person_ids[2]
        rows = loaded["neo4j-cypher"].friends_recent_posts(pid, 10)
        dates = [r[3] for r in rows]
        assert dates == sorted(dates, reverse=True)
