"""Tests for the column store, LSM tree, BDB store, and WAL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simclock import meter
from repro.storage import (
    BDBStore,
    BufferPool,
    Checkpointer,
    ColumnTable,
    ColumnType,
    DiskManager,
    LSMTree,
    WriteAheadLog,
)
from repro.storage.lsm import BloomFilter


def make_table():
    return ColumnTable(
        "person",
        [("id", ColumnType.INT), ("name", ColumnType.TEXT), ("age", ColumnType.INT)],
    )


class TestColumnTable:
    def test_append_read(self):
        table = make_table()
        pos = table.append((1, "alice", 30))
        assert table.read_row(pos) == (1, "alice", 30)
        assert len(table) == 1

    def test_projection(self):
        table = make_table()
        pos = table.append((1, "alice", 30))
        assert table.read_values(pos, ["name"]) == ("alice",)

    def test_scan_skips_deleted(self):
        table = make_table()
        p0 = table.append((1, "a", 10))
        p1 = table.append((2, "b", 20))
        table.delete(p0)
        assert list(table.scan()) == [(p1, (2, "b", 20))]
        assert not table.is_live(p0)

    def test_update(self):
        table = make_table()
        pos = table.append((1, "a", 10))
        table.update(pos, {"age": 11})
        assert table.read_row(pos) == (1, "a", 11)

    def test_update_charges_per_column(self):
        table = make_table()
        pos = table.append((1, "a", 10))
        with meter() as ledger:
            table.update(pos, {"age": 11, "name": "b"})
        assert ledger.counters["column_update"] == 2

    def test_dictionary_encoding_shares_strings(self):
        table = make_table()
        for i in range(100):
            table.append((i, "same-city", i))
        # dictionary has one entry; codes vector costs 4 bytes/row
        name_col = table._columns["name"]
        assert len(name_col.codes) == 1

    def test_column_values_single_column_scan(self):
        table = make_table()
        for i in range(5):
            table.append((i, f"n{i}", i))
        assert [v for _, v in table.column_values("id")] == list(range(5))

    def test_double_delete_rejected(self):
        table = make_table()
        pos = table.append((1, "a", 10))
        table.delete(pos)
        with pytest.raises(KeyError):
            table.delete(pos)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            make_table().append((1,))

    def test_unknown_column_rejected(self):
        table = make_table()
        table.append((1, "a", 10))
        with pytest.raises(KeyError):
            table.read_values(0, ["bogus"])

    def test_size_bytes_positive(self):
        table = make_table()
        table.append((1, "alice", 30))
        assert table.size_bytes() > 0


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(100)
        keys = [f"key-{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(k) for k in keys)

    def test_mostly_rejects_absent(self):
        bloom = BloomFilter(100)
        for i in range(100):
            bloom.add(f"key-{i}".encode())
        false_positives = sum(
            bloom.might_contain(f"other-{i}".encode()) for i in range(1000)
        )
        assert false_positives < 50  # ~1% expected at 10 bits/key


class TestLSMTree:
    def test_put_get(self):
        lsm = LSMTree()
        lsm.put(b"k", b"v")
        assert lsm.get(b"k") == b"v"
        assert lsm.get(b"absent") is None

    def test_overwrite(self):
        lsm = LSMTree()
        lsm.put(b"k", b"v1")
        lsm.put(b"k", b"v2")
        assert lsm.get(b"k") == b"v2"

    def test_delete_tombstone(self):
        lsm = LSMTree(memtable_limit=4)
        lsm.put(b"k", b"v")
        lsm.flush()
        lsm.delete(b"k")
        assert lsm.get(b"k") is None

    def test_flush_on_memtable_limit(self):
        lsm = LSMTree(memtable_limit=10)
        for i in range(25):
            lsm.put(f"k{i:03d}".encode(), b"v")
        assert lsm.flush_count >= 2
        for i in range(25):
            assert lsm.get(f"k{i:03d}".encode()) == b"v"

    def test_compaction_bounds_sstables(self):
        lsm = LSMTree(memtable_limit=4, max_sstables=3)
        for i in range(100):
            lsm.put(f"k{i:04d}".encode(), str(i).encode())
        assert lsm.compaction_count >= 1
        assert lsm.sstable_count <= 4
        for i in range(100):
            assert lsm.get(f"k{i:04d}".encode()) == str(i).encode()

    def test_range_scan_merges_runs(self):
        lsm = LSMTree(memtable_limit=4)
        for i in range(20):
            lsm.put(f"k{i:02d}".encode(), str(i).encode())
        got = list(lsm.range_scan(b"k05", b"k10"))
        assert [k for k, _ in got] == [f"k{i:02d}".encode() for i in range(5, 10)]

    def test_range_scan_sees_overwrites_and_deletes(self):
        lsm = LSMTree(memtable_limit=4)
        for i in range(10):
            lsm.put(f"k{i}".encode(), b"old")
        lsm.flush()
        lsm.put(b"k3", b"new")
        lsm.delete(b"k4")
        scan = dict(lsm.range_scan(b"k0", b"k9"))
        assert scan[b"k3"] == b"new"
        assert b"k4" not in scan

    def test_type_validation(self):
        with pytest.raises(TypeError):
            LSMTree().put("str", b"v")  # type: ignore[arg-type]

    def test_read_charges_grow_with_sstables(self):
        lsm = LSMTree(memtable_limit=4, max_sstables=50)
        for i in range(40):
            lsm.put(f"k{i:02d}".encode(), b"v")
        with meter() as ledger:
            lsm.get(b"k00")
        assert ledger.counters["lsm_bloom_check"] >= 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.integers(0, 50),
                st.binary(min_size=1, max_size=8),
            ),
            max_size=200,
        )
    )
    def test_matches_dict_model(self, ops):
        lsm = LSMTree(memtable_limit=8, max_sstables=3)
        model: dict[bytes, bytes] = {}
        for op, key_i, value in ops:
            key = f"k{key_i:03d}".encode()
            if op == "put":
                lsm.put(key, value)
                model[key] = value
            else:
                lsm.delete(key)
                model.pop(key, None)
        for key_i in range(51):
            key = f"k{key_i:03d}".encode()
            assert lsm.get(key) == model.get(key)
        assert dict(lsm.range_scan(b"k000", b"k999")) == model


class TestBDBStore:
    def test_put_get_delete(self):
        bdb = BDBStore()
        bdb.put(b"a", b"1")
        assert bdb.get(b"a") == b"1"
        assert bdb.delete(b"a")
        assert bdb.get(b"a") is None
        assert not bdb.delete(b"a")

    def test_overwrite_keeps_single_entry(self):
        bdb = BDBStore()
        bdb.put(b"a", b"1")
        bdb.put(b"a", b"2")
        assert bdb.get(b"a") == b"2"
        assert len(bdb) == 1

    def test_range_scan(self):
        bdb = BDBStore()
        for i in range(10):
            bdb.put(f"k{i}".encode(), str(i).encode())
        got = [k for k, _ in bdb.range_scan(b"k3", b"k7")]
        assert got == [b"k3", b"k4", b"k5", b"k6"]

    def test_serializes_writers_flag(self):
        assert BDBStore.serializes_writers

    def test_charges_pages(self):
        bdb = BDBStore()
        for i in range(200):
            bdb.put(f"key-{i:04d}".encode(), b"v")
        with meter() as ledger:
            bdb.get(b"key-0100")
        assert ledger.counters["bdb_page"] >= 2

    def test_size_tracks_content(self):
        bdb = BDBStore()
        bdb.put(b"a", b"12345")
        size_one = bdb.size_bytes()
        bdb.put(b"a", b"1")
        assert bdb.size_bytes() < size_one


class TestWAL:
    def test_append_and_commit(self):
        wal = WriteAheadLog()
        lsn = wal.append(b"rec1")
        assert lsn == 1
        assert wal.unsynced_records == 1
        wal.commit()
        assert wal.unsynced_records == 0
        assert wal.fsync_count == 1

    def test_commit_idempotent_when_clean(self):
        wal = WriteAheadLog()
        wal.append(b"r")
        wal.commit()
        wal.commit()  # nothing new: no extra fsync
        assert wal.fsync_count == 1

    def test_records_since(self):
        wal = WriteAheadLog()
        wal.append(b"a")
        wal.append(b"b")
        assert wal.records_since(1) == [b"b"]

    def test_checkpointer_flushes_dirty_pages(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=16)
        wal = WriteAheadLog()
        ckpt = Checkpointer(pool, wal)
        pid, page = pool.new_page()
        page.insert(b"data")
        pool.mark_dirty(pid)
        wal.append(b"insert")
        flushed = ckpt.checkpoint()
        assert flushed >= 1
        assert ckpt.checkpoint_count == 1
        assert ckpt.last_checkpoint_lsn == wal.last_lsn
        assert pool.dirty_count() == 0
