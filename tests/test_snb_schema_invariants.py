"""Schema-level invariants of the generated dataset and id spaces."""

import pytest

from repro.snb import GeneratorConfig, UpdateKind, generate
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
    FORUM_ID_BASE,
    MESSAGE_ID_BASE,
    PERSON_ID_BASE,
)

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=21)

#: which payload type each update kind must carry
KIND_PAYLOADS = {
    UpdateKind.ADD_PERSON: Person,
    UpdateKind.ADD_FRIENDSHIP: Knows,
    UpdateKind.ADD_FORUM: Forum,
    UpdateKind.ADD_FORUM_MEMBERSHIP: ForumMembership,
    UpdateKind.ADD_POST: Post,
    UpdateKind.ADD_COMMENT: Comment,
    UpdateKind.ADD_POST_LIKE: Like,
    UpdateKind.ADD_COMMENT_LIKE: Like,
}


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


class TestIdSpaces:
    def test_person_ids_in_range(self, dataset):
        for person in dataset.persons:
            assert PERSON_ID_BASE <= person.id < FORUM_ID_BASE

    def test_forum_ids_in_range(self, dataset):
        for forum in dataset.forums:
            assert FORUM_ID_BASE <= forum.id < MESSAGE_ID_BASE

    def test_message_id_space_shared(self, dataset):
        """Posts and comments share one id space with no collisions."""
        ids = dataset.message_ids()
        assert len(ids) == len(set(ids))
        assert all(i > MESSAGE_ID_BASE for i in ids)

    def test_no_duplicate_entity_ids(self, dataset):
        all_ids = (
            [p.id for p in dataset.persons]
            + [f.id for f in dataset.forums]
            + dataset.message_ids()
            + [t.id for t in dataset.tags]
            + [p.id for p in dataset.places]
            + [o.id for o in dataset.organisations]
        )
        assert len(all_ids) == len(set(all_ids))


class TestUpdatePayloads:
    def test_every_kind_has_correct_payload_type(self, dataset):
        for event in dataset.updates:
            assert isinstance(event.payload, KIND_PAYLOADS[event.kind]), (
                event.kind
            )

    def test_like_kinds_discriminate_posts_and_comments(self, dataset):
        post_ids = {p.id for p in dataset.posts} | {
            e.payload.id
            for e in dataset.updates
            if e.kind is UpdateKind.ADD_POST
        }
        for event in dataset.updates:
            if event.kind is UpdateKind.ADD_POST_LIKE:
                assert event.payload.message in post_ids
            elif event.kind is UpdateKind.ADD_COMMENT_LIKE:
                assert event.payload.message not in post_ids


class TestReferentialIntegrity:
    def test_memberships_reference_forums_and_persons(self, dataset):
        forum_ids = {f.id for f in dataset.forums}
        person_ids = {p.id for p in dataset.persons}
        for m in dataset.memberships:
            assert m.forum in forum_ids
            assert m.person in person_ids

    def test_posts_reference_known_creators(self, dataset):
        person_ids = {p.id for p in dataset.persons}
        for post in dataset.posts:
            assert post.creator in person_ids

    def test_comment_roots_are_posts(self, dataset):
        post_ids = {p.id for p in dataset.posts} | {
            e.payload.id
            for e in dataset.updates
            if e.kind is UpdateKind.ADD_POST
        }
        for comment in dataset.comments:
            assert comment.root_post in post_ids

    def test_interests_reference_tags(self, dataset):
        tag_ids = {t.id for t in dataset.tags}
        for person in dataset.persons:
            assert set(person.interests) <= tag_ids

    def test_person_city_is_a_city(self, dataset):
        cities = {p.id for p in dataset.places if p.kind == "city"}
        for person in dataset.persons:
            assert person.city in cities

    def test_message_countries_are_countries(self, dataset):
        countries = {p.id for p in dataset.places if p.kind == "country"}
        for post in dataset.posts:
            assert post.country in countries
        for comment in dataset.comments:
            assert comment.country in countries
