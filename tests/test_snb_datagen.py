"""Tests for the SNB datagen: determinism, schema invariants, update stream."""

import pytest

from repro.snb import GeneratorConfig, UpdateKind, generate
from repro.snb.datagen import SIM_END_MS, SIM_START_MS
from repro.snb.distributions import power_law_int, zipf_choice
from repro.snb.serializer import raw_size_bytes, serialize_to_dir

import random


@pytest.fixture(scope="module")
def dataset():
    return generate(GeneratorConfig(scale_factor=3, scale_divisor=4000, seed=7))


class TestDistributions:
    def test_power_law_bounds(self):
        rng = random.Random(1)
        samples = [power_law_int(rng, 1, 50) for _ in range(2000)]
        assert all(1 <= s <= 50 for s in samples)

    def test_power_law_is_skewed(self):
        rng = random.Random(1)
        samples = [power_law_int(rng, 1, 100, alpha=2.2) for _ in range(5000)]
        low = sum(1 for s in samples if s <= 5)
        assert low > len(samples) * 0.6  # most mass at the low end

    def test_power_law_validation(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            power_law_int(rng, 0, 5)
        with pytest.raises(ValueError):
            power_law_int(rng, 5, 4)

    def test_power_law_degenerate(self):
        rng = random.Random(1)
        assert power_law_int(rng, 3, 3) == 3

    def test_zipf_bounds_and_skew(self):
        rng = random.Random(2)
        samples = [zipf_choice(rng, 30) for _ in range(5000)]
        assert all(0 <= s < 30 for s in samples)
        zero = sum(1 for s in samples if s == 0)
        tail = sum(1 for s in samples if s == 29)
        assert zero > tail * 3

    def test_zipf_single_choice(self):
        assert zipf_choice(random.Random(1), 1) == 0

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_choice(random.Random(1), 0)


class TestGeneration:
    def test_deterministic(self):
        config = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=11)
        a = generate(config)
        b = generate(config)
        assert [p.id for p in a.persons] == [p.id for p in b.persons]
        assert [k.creation_date for k in a.knows] == [
            k.creation_date for k in b.knows
        ]
        assert len(a.updates) == len(b.updates)

    def test_seed_changes_output(self):
        a = generate(GeneratorConfig(scale_divisor=8000, seed=1))
        b = generate(GeneratorConfig(scale_divisor=8000, seed=2))
        assert [k.person2 for k in a.knows] != [k.person2 for k in b.knows]

    def test_scale_factor_grows_graph(self):
        small = generate(GeneratorConfig(scale_factor=3, scale_divisor=8000))
        large = generate(GeneratorConfig(scale_factor=10, scale_divisor=8000))
        ratio = large.vertex_count() / small.vertex_count()
        assert 2.0 < ratio < 6.0  # paper: 34M/10M = 3.4

    def test_vertex_edge_ratio_matches_paper(self, dataset):
        # paper SF3: 64M edges / 10M vertices = 6.4
        ratio = dataset.edge_count() / dataset.vertex_count()
        assert 3.0 < ratio < 10.0

    def test_knows_endpoints_exist_and_ordered(self, dataset):
        person_ids = {p.id for p in dataset.persons} | {
            e.payload.id
            for e in dataset.updates
            if e.kind is UpdateKind.ADD_PERSON
        }
        for k in dataset.knows:
            assert k.person1 < k.person2
            assert k.person1 in person_ids
            assert k.person2 in person_ids

    def test_no_duplicate_friendships(self, dataset):
        pairs = [(k.person1, k.person2) for k in dataset.knows]
        assert len(pairs) == len(set(pairs))

    def test_comments_reply_to_existing_messages(self, dataset):
        message_ids = set(dataset.message_ids())
        for c in dataset.comments:
            assert c.reply_of in message_ids
            assert c.creation_date >= SIM_START_MS

    def test_comment_dates_after_parent(self, dataset):
        dates = {p.id: p.creation_date for p in dataset.posts}
        dates.update({c.id: c.creation_date for c in dataset.comments})
        for c in dataset.comments:
            assert c.creation_date >= dates[c.reply_of]

    def test_posts_belong_to_snapshot_forums(self, dataset):
        forum_ids = {f.id for f in dataset.forums}
        for p in dataset.posts:
            assert p.forum in forum_ids

    def test_static_entities_before_cutoff(self, dataset):
        assert all(p.creation_date < dataset.cutoff_ms for p in dataset.persons)
        assert all(
            f.creation_date < dataset.cutoff_ms for f in dataset.forums
        )
        assert all(
            c.creation_date < dataset.cutoff_ms for c in dataset.comments
        )

    def test_likes_reference_messages(self, dataset):
        message_ids = set(dataset.message_ids())
        update_message_ids = {
            e.payload.id
            for e in dataset.updates
            if e.kind in (UpdateKind.ADD_POST, UpdateKind.ADD_COMMENT)
        }
        for like in dataset.likes:
            assert like.message in message_ids | update_message_ids

    def test_person_attributes_populated(self, dataset):
        for p in dataset.persons[:20]:
            assert p.first_name and p.last_name
            assert p.gender in ("male", "female")
            assert p.speaks
            assert SIM_START_MS <= p.creation_date < SIM_END_MS

    def test_place_hierarchy_well_formed(self, dataset):
        by_id = {p.id: p for p in dataset.places}
        for place in dataset.places:
            if place.kind == "continent":
                assert place.part_of is None
            else:
                parent = by_id[place.part_of]
                expected = "continent" if place.kind == "country" else "country"
                assert parent.kind == expected


class TestUpdateStream:
    def test_updates_sorted_by_creation(self, dataset):
        times = [e.creation_ms for e in dataset.updates]
        assert times == sorted(times)

    def test_updates_after_cutoff(self, dataset):
        assert all(e.creation_ms >= dataset.cutoff_ms for e in dataset.updates)

    def test_dependency_not_after_creation(self, dataset):
        for e in dataset.updates:
            assert e.dependency_ms <= e.creation_ms

    def test_update_mix_covers_most_kinds(self, dataset):
        kinds = {e.kind for e in dataset.updates}
        # the big five always appear; person adds may be rare at tiny scales
        for kind in (
            UpdateKind.ADD_POST,
            UpdateKind.ADD_COMMENT,
            UpdateKind.ADD_POST_LIKE,
            UpdateKind.ADD_FORUM_MEMBERSHIP,
            UpdateKind.ADD_FRIENDSHIP,
        ):
            assert kind in kinds, kind

    def test_update_volume_roughly_matches_fraction(self, dataset):
        total_dynamic = (
            len(dataset.persons)
            + len(dataset.knows)
            + len(dataset.forums)
            + len(dataset.memberships)
            + len(dataset.posts)
            + len(dataset.comments)
            + len(dataset.likes)
            + len(dataset.updates)
        )
        share = len(dataset.updates) / total_dynamic
        assert 0.03 < share < 0.45


class TestSerializer:
    def test_raw_size_positive_and_scales(self):
        small = generate(GeneratorConfig(scale_factor=3, scale_divisor=8000))
        large = generate(GeneratorConfig(scale_factor=10, scale_divisor=8000))
        assert raw_size_bytes(small) > 0
        assert raw_size_bytes(large) > raw_size_bytes(small) * 2

    def test_serialize_to_dir(self, dataset, tmp_path):
        sizes = serialize_to_dir(dataset, tmp_path)
        assert sizes["person"] > 0
        assert (tmp_path / "person_knows_person.csv").exists()
        total = sum(sizes.values())
        assert abs(total - raw_size_bytes(dataset)) < total * 0.05
