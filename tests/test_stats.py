"""The statistics subsystem: collectors, estimators, the SNB model."""

from repro.graphdb import GraphDatabase
from repro.rdf import RdfDatabase
from repro.relational import Database
from repro.stats import (
    GraphStatistics,
    Selectivity,
    TripleStatistics,
    expected_entity_rows,
    expected_table_rows,
    format_rows,
)


class TestSqlCollection:
    def make_db(self):
        db = Database("row")
        db.execute(
            "CREATE TABLE person (id BIGINT PRIMARY KEY, city TEXT)"
        )
        for pid in range(10):
            db.execute(
                "INSERT INTO person VALUES (?, ?)",
                (pid, "x" if pid % 2 else "y"),
            )
        return db

    def test_analyze_counts_rows_and_distincts(self):
        db = self.make_db()
        stats = db.analyze()
        table = stats.table("person")
        assert table is not None
        assert table.row_count == 10
        assert table.distinct("id") == 10
        assert table.distinct("city") == 2

    def test_min_max_and_unknown_column(self):
        db = self.make_db()
        table = db.analyze().table("person")
        assert table.columns["id"].minimum == 0
        assert table.columns["id"].maximum == 9
        assert table.distinct("nope") is None

    def test_analyze_statement_form(self):
        db = self.make_db()
        assert db.execute("ANALYZE person") == 0
        assert db.stats is not None
        assert db.stats.table("person").row_count == 10

    def test_table_lookup_is_case_insensitive(self):
        db = self.make_db()
        stats = db.analyze()
        assert stats.table("PERSON") is stats.table("person")


class TestSelectivity:
    def test_equality_is_uniform_over_distincts(self):
        assert Selectivity.equality(100) == 0.01
        assert Selectivity.equality(None) == 0.1

    def test_inequality_complements_equality(self):
        assert Selectivity.inequality(4) == 0.75
        assert Selectivity.inequality(None) == 1.0

    def test_join_divides_by_larger_side(self):
        assert Selectivity.join(100, 200, 10, 50) == 400.0
        # floor at one row
        assert Selectivity.join(1, 1, 1000, 1000) == 1.0


class TestGraphStatistics:
    def test_avg_degree_by_direction(self):
        stats = GraphStatistics(
            node_count=10,
            rel_count=40,
            rel_degrees={"knows": (40, 10, 8)},
        )
        assert stats.avg_degree("knows", "out") == 4.0
        assert stats.avg_degree("knows", "in") == 5.0
        assert stats.avg_degree("knows", "both") == 9.0

    def test_unknown_type_falls_back_to_global_ratio(self):
        stats = GraphStatistics(node_count=10, rel_count=40)
        assert stats.avg_degree("likes", "out") == 8.0

    def test_store_collection(self):
        db = GraphDatabase()
        ids = [
            db.store.create_node(("person",), {"id": i}) for i in range(4)
        ]
        db.store.create_node(("forum",), {"id": 99})
        db.store.create_rel("knows", ids[0], ids[1])
        db.store.create_rel("knows", ids[1], ids[2])
        stats = db.store.collect_statistics()
        assert stats.node_count == 5
        assert stats.rel_count == 2
        assert stats.label_count("person") == 4
        assert stats.label_count("forum") == 1
        assert stats.rel_degrees["knows"][0] == 2


class TestTripleStatistics:
    def test_pattern_count_divides_bound_slots(self):
        stats = TripleStatistics(
            triple_count=100,
            predicate_counts={"knows": 50},
            distinct_subjects={"knows": 10},
            distinct_objects={"knows": 25},
            total_subjects=20,
            total_objects=40,
        )
        assert stats.pattern_count(False, "knows", False) == 50.0
        assert stats.pattern_count(True, "knows", False) == 5.0
        assert stats.pattern_count(True, "knows", True) == 0.2
        # unknown predicate: nothing matches
        assert stats.pattern_count(False, "nope", False) == 0.0
        # unbound predicate: whole store scaled by bound slots
        assert stats.pattern_count(True, None, False) == 5.0

    def test_store_collection(self):
        db = RdfDatabase()
        db.insert_triples([
            ("sn:a", "snb:knows", "sn:b"),
            ("sn:a", "snb:knows", "sn:c"),
            ("sn:b", "snb:id", 2),
        ])
        stats = db.store.collect_statistics()
        assert stats.triple_count == 3
        assert stats.predicate_counts["snb:knows"] == 2
        assert stats.distinct_subjects["snb:knows"] == 1
        assert stats.distinct_objects["snb:knows"] == 2


class TestSnbModel:
    def test_person_scales_with_sf(self):
        sf10 = expected_table_rows("person")
        sf3 = expected_table_rows("person", 3)
        assert sf10 is not None and sf3 is not None
        assert sf10 > sf3 > 0

    def test_dimension_tables_are_constant(self):
        assert expected_table_rows("tag") == expected_table_rows("tag", 3)

    def test_unknown_table_is_none(self):
        assert expected_table_rows("no_such_table") is None
        assert expected_entity_rows({"no_such_entity"}) is None

    def test_format_rows_scales_units(self):
        assert format_rows(42) == "~42"
        assert format_rows(833_000) == "~833k"
        assert format_rows(2_100_000) == "~2.1M"
