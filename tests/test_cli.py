"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SMALL = ["--scale-factor", "3", "--scale-divisor", "10000", "--seed", "3"]


class TestSystems:
    def test_lists_all_eight(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        for key in ("neo4j-cypher", "titan-c", "postgres-sql",
                    "virtuoso-sparql"):
            assert key in out


class TestGenerate:
    def test_writes_csvs(self, tmp_path, capsys):
        assert main(["generate", *SMALL, "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "CSV files" in out
        assert (tmp_path / "person.csv").exists()
        assert (tmp_path / "person_knows_person.csv").exists()


class TestLatency:
    def test_single_system(self, capsys):
        assert main(
            ["latency", *SMALL, "--systems", "postgres-sql", "--reps", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "postgres-sql" in out
        assert "point lookup" in out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["latency", *SMALL, "--systems", "oracle"])


class TestInteractive:
    def test_runs_small_workload(self, capsys):
        assert main(
            ["interactive", *SMALL, "--system", "postgres-sql",
             "--readers", "4", "--duration-ms", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "reads/s" in out
        assert "writes/s" in out


class TestLoad:
    def test_sequential(self, capsys):
        assert main(
            ["load", *SMALL, "--system", "titan-b", "--loaders", "1"]
        ) == 0
        assert "edges/s" in capsys.readouterr().out

    def test_concurrent(self, capsys):
        assert main(
            ["load", *SMALL, "--system", "titan-c", "--loaders", "4"]
        ) == 0
        assert "edges/s" in capsys.readouterr().out

    def test_neo4j_gremlin_concurrent_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["load", *SMALL, "--system", "neo4j-gremlin",
                 "--loaders", "4"]
            )

    def test_non_tinkerpop_rejected(self):
        with pytest.raises(SystemExit):
            main(["load", *SMALL, "--system", "postgres-sql"])


class TestValidate:
    def test_cross_check_passes(self, capsys):
        assert main(
            ["validate", *SMALL, "--systems",
             "postgres-sql,virtuoso-sql,neo4j-cypher", "--checks", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out

    def test_needs_two_systems(self):
        with pytest.raises(SystemExit):
            main(["validate", *SMALL, "--systems", "postgres-sql"])

    def test_cached_flag_checks_and_reports_hit_rates(self, capsys):
        assert main(
            ["validate", *SMALL, "--systems",
             "postgres-sql,neo4j-cypher", "--checks", "2", "--cached"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 mismatches" in out
        assert "hit_rate=" in out
        assert "neo4j-neighborhood" in out
