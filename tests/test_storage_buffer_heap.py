"""Tests for the disk manager, buffer pool, and heap file."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simclock import meter
from repro.storage import BufferPool, DiskManager, HeapFile, PAGE_SIZE


def make_heap(capacity=64):
    disk = DiskManager()
    pool = BufferPool(disk, capacity=capacity)
    return HeapFile(pool), pool, disk


class TestDiskManager:
    def test_allocate_and_read(self):
        disk = DiskManager()
        pid = disk.allocate()
        assert disk.read(pid) == bytes(PAGE_SIZE)

    def test_write_roundtrip(self):
        disk = DiskManager()
        pid = disk.allocate()
        image = bytes([1]) * PAGE_SIZE
        disk.write(pid, image)
        assert disk.read(pid) == image

    def test_write_wrong_size_rejected(self):
        disk = DiskManager()
        pid = disk.allocate()
        with pytest.raises(ValueError):
            disk.write(pid, b"short")

    def test_charges_page_io(self):
        disk = DiskManager()
        pid = disk.allocate()
        with meter() as ledger:
            disk.read(pid)
            disk.write(pid, bytes(PAGE_SIZE))
        assert ledger.counters["page_read"] == 1
        assert ledger.counters["page_write"] == 1


class TestBufferPool:
    def test_hit_vs_miss_accounting(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=2)
        pid = disk.allocate()
        with meter() as ledger:
            pool.get(pid)  # miss
            pool.get(pid)  # hit
        assert pool.misses == 1
        assert pool.hits == 1
        assert ledger.counters["page_read"] == 1
        assert ledger.counters["buffer_hit"] >= 1

    def test_eviction_writes_back_dirty(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=1)
        pid_a, page_a = pool.new_page()
        page_a.insert(b"dirty data")
        pool.mark_dirty(pid_a)
        pool.new_page()  # evicts pid_a
        # the dirty page reached disk
        from repro.storage.pages import SlottedPage

        reloaded = SlottedPage(bytearray(disk.read(pid_a)))
        assert reloaded.read(0) == b"dirty data"

    def test_flush_all(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=8)
        pid, page = pool.new_page()
        page.insert(b"x")
        pool.mark_dirty(pid)
        assert pool.flush_all() >= 1
        assert pool.dirty_count() == 0

    def test_mark_dirty_requires_residency(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=1)
        with pytest.raises(KeyError):
            pool.mark_dirty(999)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(DiskManager(), capacity=0)


class TestHeapFile:
    def test_insert_fetch(self):
        heap, _, _ = make_heap()
        rid = heap.insert(b"record one")
        assert heap.fetch(rid) == b"record one"
        assert heap.record_count == 1

    def test_scan_returns_all(self):
        heap, _, _ = make_heap()
        records = [f"r{i}".encode() for i in range(500)]
        rids = [heap.insert(r) for r in records]
        assert heap.page_count > 0
        scanned = {rid: rec for rid, rec in heap.scan()}
        assert scanned == dict(zip(rids, records))

    def test_delete(self):
        heap, _, _ = make_heap()
        rid = heap.insert(b"gone")
        heap.delete(rid)
        assert heap.record_count == 0
        with pytest.raises(KeyError):
            heap.fetch(rid)

    def test_update_in_place_keeps_rid(self):
        heap, _, _ = make_heap()
        rid = heap.insert(b"abcdef")
        new_rid = heap.update(rid, b"ABCDEF")
        assert new_rid == rid
        assert heap.fetch(rid) == b"ABCDEF"

    def test_update_grow_relocates(self):
        heap, _, _ = make_heap()
        rid = heap.insert(b"ab")
        new_rid = heap.update(rid, b"much longer record body")
        assert heap.fetch(new_rid) == b"much longer record body"
        assert heap.record_count == 1

    def test_oversized_record_rejected(self):
        heap, _, _ = make_heap()
        with pytest.raises(ValueError):
            heap.insert(b"x" * PAGE_SIZE)

    def test_many_records_span_pages(self):
        heap, _, _ = make_heap()
        payload = b"y" * 1000
        for _ in range(50):
            heap.insert(payload)
        assert heap.page_count >= 7

    def test_survives_buffer_pressure(self):
        # pool much smaller than the file: every record still readable
        heap, pool, _ = make_heap(capacity=2)
        rids = [heap.insert(f"rec-{i}".encode() * 20) for i in range(200)]
        for i, rid in enumerate(rids):
            assert heap.fetch(rid) == f"rec-{i}".encode() * 20
        assert pool.misses > 0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "update"]),
                st.binary(min_size=1, max_size=300),
            ),
            max_size=60,
        )
    )
    def test_matches_dict_model(self, ops):
        heap, _, _ = make_heap(capacity=4)
        model: dict = {}
        live_rids: list = []
        for op, payload in ops:
            if op == "insert" or not live_rids:
                rid = heap.insert(payload)
                model[rid] = payload
                live_rids.append(rid)
            elif op == "delete":
                rid = live_rids.pop()
                heap.delete(rid)
                del model[rid]
            else:  # update
                rid = live_rids.pop()
                new_rid = heap.update(rid, payload)
                del model[rid]
                model[new_rid] = payload
                live_rids.append(new_rid)
        assert {rid: rec for rid, rec in heap.scan()} == model
