"""Further interactive-runner coverage: configs, mixes, per-system traits."""

import pytest

from repro.core import make_connector
from repro.driver import InteractiveConfig, InteractiveWorkloadRunner
from repro.driver.workload import FULL_MIX
from repro.snb import GeneratorConfig, generate

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=13)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


def run(key, dataset, **overrides):
    connector = make_connector(key)
    connector.load(dataset)
    defaults = dict(readers=4, duration_ms=200.0, window_ms=50.0, seed=5)
    defaults.update(overrides)
    config = InteractiveConfig(**defaults)
    return InteractiveWorkloadRunner(connector, dataset, config).run()


class TestConfiguration:
    def test_max_update_events_caps_writer(self, dataset):
        result = run("postgres-sql", dataset, max_update_events=5)
        assert result.updates_applied <= 5

    def test_duration_respected(self, dataset):
        result = run("postgres-sql", dataset, duration_ms=150.0)
        series = result.read_windows.series()
        # in-flight operations may complete one window past the deadline
        assert series[-1][0] <= 150.0 + 50.0

    def test_more_readers_more_reads(self, dataset):
        few = run("postgres-sql", dataset, readers=2)
        many = run("postgres-sql", dataset, readers=8)
        assert many.read_windows.total() > few.read_windows.total()

    def test_custom_mix(self, dataset):
        result = run("postgres-sql", dataset, mix=[("person_profile", 1)])
        assert result.read_windows.total() > 0

    def test_full_mix_runs_on_sql_systems(self, dataset):
        # the full LDBC mix is fine for native engines (Section 4.4 only
        # breaks the Gremlin Server)
        result = run("postgres-sql", dataset, mix=FULL_MIX)
        assert result.read_failures == 0
        assert not result.server_crashed


class TestPerSystemTraits:
    def test_virtuoso_sparql_writes_slower_than_sql(self, dataset):
        sql = run("virtuoso-sql", dataset, duration_ms=300.0)
        sparql = run("virtuoso-sparql", dataset, duration_ms=300.0)
        assert sql.write_latency.mean() < sparql.write_latency.mean()

    def test_postgres_writes_faster_than_virtuoso(self, dataset):
        pg = run("postgres-sql", dataset, duration_ms=300.0)
        virt = run("virtuoso-sql", dataset, duration_ms=300.0)
        assert pg.write_latency.mean() < virt.write_latency.mean()

    def test_result_metadata(self, dataset):
        result = run("titan-c", dataset)
        assert result.system == "titan-c"
        assert result.readers == 4
        assert result.read_latency.percentile(50) > 0

    def test_writer_consumes_kafka_in_order(self, dataset):
        result = run("postgres-sql", dataset, duration_ms=400.0)
        # the applied updates are a prefix of the dependency-sorted stream:
        # dependencies were never violated
        assert result.updates_applied <= len(dataset.updates)
