"""Additional traversal-engine coverage: edge steps, paths, predicates."""

import pytest

from repro.tinkerpop import Graph, P, TinkerGraphProvider, anon
from repro.tinkerpop.structure import Edge, Vertex
from repro.tinkerpop.traversal import TraversalError


@pytest.fixture()
def g():
    provider = TinkerGraphProvider()
    provider.create_index("airport", "code")
    g = Graph(provider).traversal()
    airports = {}
    for code, country in [
        ("YYZ", "ca"), ("FRA", "de"), ("NRT", "jp"), ("YVR", "ca"),
    ]:
        airports[code] = (
            g.addV("airport").property("code", code)
            .property("country", country).next()
        )
    for a, b, km in [
        ("YYZ", "FRA", 6300), ("FRA", "NRT", 9300), ("YYZ", "YVR", 3300),
        ("YVR", "NRT", 7500),
    ]:
        g.V(airports[a].id).addE("route").to(airports[b]).property(
            "km", km
        ).iterate()
    return g


class TestEdgeSteps:
    def test_outE_inV(self, g):
        codes = sorted(
            g.V().has("airport", "code", "YYZ").outE("route").inV()
            .values("code")
        )
        assert codes == ["FRA", "YVR"]

    def test_inE_outV(self, g):
        codes = g.V().has("airport", "code", "NRT").inE("route").outV().values(
            "code"
        ).toList()
        assert sorted(codes) == ["FRA", "YVR"]

    def test_edge_value_filtering(self, g):
        kms = (
            g.V().has("airport", "code", "YYZ").outE("route")
            .has("km", P.gt(5000)).values("km").toList()
        )
        assert kms == [6300]

    def test_other_v_from_both(self, g):
        codes = sorted(
            g.V().has("airport", "code", "FRA").bothE("route").otherV()
            .values("code")
        )
        assert codes == ["NRT", "YYZ"]

    def test_edge_value_map(self, g):
        maps = (
            g.V().has("airport", "code", "FRA").outE("route").valueMap()
            .toList()
        )
        assert maps == [{"km": 9300}]


class TestPathsAndPredicates:
    def test_path_contains_elements(self, g):
        paths = (
            g.V().has("airport", "code", "YYZ").outE("route").inV()
            .path().toList()
        )
        for path in paths:
            assert isinstance(path[0], Vertex)
            assert isinstance(path[1], Edge)
            assert isinstance(path[2], Vertex)

    def test_within_on_strings(self, g):
        codes = sorted(
            g.V().hasLabel("airport")
            .has("country", P.within(["ca"])).values("code")
        )
        assert codes == ["YVR", "YYZ"]

    def test_lte_gte(self, g):
        assert g.V().hasLabel("airport").bothE("route").has(
            "km", P.lte(3300)
        ).dedup().count().next() == 1
        assert g.V().hasLabel("airport").bothE("route").has(
            "km", P.gte(9300)
        ).dedup().count().next() == 1

    def test_repeat_emit(self, g):
        codes = (
            g.V().has("airport", "code", "YYZ")
            .repeat(anon().out("route").simplePath()).emit().times(2)
            .values("code").toList()
        )
        # emits intermediate and final hops
        assert set(codes) == {"FRA", "YVR", "NRT"}

    def test_values_skips_missing_keys(self, g):
        g.addV("airport").property("code", "XXX").next()  # no country
        countries = g.V().hasLabel("airport").values("country").toList()
        assert len(countries) == 4  # XXX contributes nothing

    def test_filter_helper(self, g):
        big = (
            g.V().hasLabel("airport").values("code")
            .filter_(lambda code: code.startswith("Y")).toList()
        )
        assert sorted(big) == ["YVR", "YYZ"]


class TestErrors:
    def test_values_on_scalar_rejected(self, g):
        with pytest.raises(TraversalError):
            g.V().hasLabel("airport").values("code").values("code").toList()

    def test_out_on_edge_rejected(self, g):
        with pytest.raises(TraversalError):
            g.V().hasLabel("airport").outE("route").out("route").toList()

    def test_next_on_empty(self, g):
        with pytest.raises(TraversalError):
            g.V().has("airport", "code", "ZZZ").next()

    def test_repeat_without_terminator(self, g):
        with pytest.raises(TraversalError):
            g.V().hasLabel("airport").repeat(anon().out("route")).toList()

    def test_to_without_addE(self, g):
        vertex = g.V().has("airport", "code", "YYZ").next()
        with pytest.raises(TraversalError):
            g.V().to(vertex)
