"""Unit and property tests for the trace-replay race detector.

The property tests pin down the algebra the happens-before reasoning
rests on: ``VectorClock.__le__`` must be a genuine partial order, or
"neither clock precedes the other" stops meaning "concurrent".
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.sanitizer.events import Event, VectorClock
from repro.sanitizer.race import analyze_trace

workers = st.sampled_from(["w1", "w2", "w3", "w4"])
clocks = st.dictionaries(
    workers, st.integers(min_value=0, max_value=5), max_size=4
).map(VectorClock)


class TestVectorClockPartialOrder:
    @given(clocks)
    def test_reflexive(self, a):
        assert a <= a

    @given(clocks, clocks)
    def test_antisymmetric(self, a, b):
        if a <= b and b <= a:
            assert a == b

    @given(clocks, clocks, clocks)
    def test_transitive(self, a, b, c):
        if a <= b and b <= c:
            assert a <= c

    @given(clocks, workers)
    def test_tick_strictly_advances(self, a, w):
        ticked = a.tick(w)
        assert a <= ticked
        assert ticked != a
        assert not ticked <= a

    @given(clocks, clocks)
    def test_join_is_an_upper_bound(self, a, b):
        joined = a.join(b)
        assert a <= joined
        assert b <= joined

    @given(clocks, clocks)
    def test_concurrent_is_symmetric_and_irreflexive(self, a, b):
        assert a.concurrent(b) == b.concurrent(a)
        assert not a.concurrent(a)


def _events(*specs):
    """Build a trace from (kind, worker, txn_id[, resource[, mode]])."""
    out = []
    for seq, spec in enumerate(specs):
        kind, worker, txn_id, *rest = spec
        resource = rest[0] if rest else ""
        mode = rest[1] if len(rest) > 1 else ""
        out.append(Event(seq, kind, worker, txn_id, resource, mode))
    return out


class TestAnalyzeTrace:
    def test_empty_trace_is_silent(self):
        assert analyze_trace([]) == []

    def test_unlocked_concurrent_writes_are_qa601(self):
        trace = _events(
            ("begin", "w1", 1),
            ("write", "w1", 1, "('person', 7)"),
            ("commit", "w1", 1),
            ("begin", "w2", 2),
            ("write", "w2", 2, "('person', 7)"),
            ("commit", "w2", 2),
        )
        codes = [d.code for d in analyze_trace(trace)]
        assert codes == ["QA601"]

    def test_qa601_deduped_per_resource_and_worker_pair(self):
        trace = _events(
            ("write", "w1", 1, "('person', 7)"),
            ("write", "w2", 2, "('person', 7)"),
            ("write", "w1", 1, "('person', 7)"),
            ("write", "w2", 2, "('person', 7)"),
        )
        codes = [d.code for d in analyze_trace(trace)]
        assert codes == ["QA601"]

    def test_release_acquire_edge_orders_the_writes(self):
        # w2 acquires the lock w1 released: the published clock makes
        # w1's write happen-before w2's, so no race
        trace = _events(
            ("begin", "w1", 1),
            ("acquire", "w1", 1, "('person', 7)", "X"),
            ("write", "w1", 1, "('person', 7)"),
            ("commit", "w1", 1),
            ("release", "w1", 1, "('person', 7)"),
            ("begin", "w2", 2),
            ("acquire", "w2", 2, "('person', 7)", "X"),
            ("write", "w2", 2, "('person', 7)"),
            ("commit", "w2", 2),
            ("release", "w2", 2, "('person', 7)"),
        )
        assert analyze_trace(trace) == []

    def test_common_lock_serialises_concurrent_writes(self):
        trace = _events(
            ("begin", "w1", 1),
            ("acquire", "w1", 1, "('person', 7)", "X"),
            ("write", "w1", 1, "('person', 7)"),
            ("begin", "w2", 2),
            ("acquire", "w2", 2, "('person', 7)", "X"),
            ("write", "w2", 2, "('person', 7)"),
        )
        codes = [d.code for d in analyze_trace(trace)]
        assert "QA601" not in codes

    def test_same_worker_never_races_with_itself(self):
        trace = _events(
            ("write", "w1", 1, "('person', 7)"),
            ("write", "w1", 2, "('person', 7)"),
        )
        assert analyze_trace(trace) == []

    def test_lock_held_across_commit_is_qa602(self):
        trace = _events(
            ("begin", "w1", 1),
            ("acquire", "w1", 1, "('person', 7)", "X"),
            ("commit", "w1", 1),
        )
        diagnostics = analyze_trace(trace)
        assert [d.code for d in diagnostics] == ["QA602"]
        assert "commit boundary" in diagnostics[0].message

    def test_never_released_lock_is_qa602(self):
        trace = _events(
            ("begin", "w1", 1),
            ("acquire", "w1", 1, "('person', 7)", "X"),
        )
        diagnostics = analyze_trace(trace)
        assert [d.code for d in diagnostics] == ["QA602"]
        assert "never released" in diagnostics[0].message

    def test_opposite_order_overlapping_txns_are_qa501_qa502(self):
        trace = _events(
            ("begin", "w1", 1),
            ("acquire", "w1", 1, "('a', 1)", "S"),
            ("begin", "w2", 2),
            ("acquire", "w2", 2, "('b', 2)", "S"),
            ("acquire", "w1", 1, "('b', 2)", "S"),
            ("acquire", "w2", 2, "('a', 1)", "S"),
            ("abort", "w1", 1),
            ("release", "w1", 1, "('a', 1)"),
            ("release", "w1", 1, "('b', 2)"),
            ("abort", "w2", 2),
            ("release", "w2", 2, "('b', 2)"),
            ("release", "w2", 2, "('a', 1)"),
        )
        codes = sorted({d.code for d in analyze_trace(trace)})
        assert codes == ["QA501", "QA502"]

    def test_serial_unsorted_acquisition_stays_silent(self):
        # same opposite orders, but the txns never overlap: a serial
        # history cannot deadlock, so the order gate must not fire
        trace = _events(
            ("begin", "w1", 1),
            ("acquire", "w1", 1, "('b', 2)", "S"),
            ("acquire", "w1", 1, "('a', 1)", "S"),
            ("abort", "w1", 1),
            ("release", "w1", 1, "('b', 2)"),
            ("release", "w1", 1, "('a', 1)"),
            ("begin", "w2", 2),
            ("acquire", "w2", 2, "('a', 1)", "S"),
            ("acquire", "w2", 2, "('b', 2)", "S"),
            ("abort", "w2", 2),
            ("release", "w2", 2, "('a', 1)"),
            ("release", "w2", 2, "('b', 2)"),
        )
        assert analyze_trace(trace) == []
