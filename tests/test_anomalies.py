"""The snapshot-anomaly audit (QA603/QA604/QA605).

Two halves, mirroring ``tests/test_sanitizer_harness.py``:

* unit — hand-built transaction histories fed straight into
  :func:`audit_history`: each canonical anomaly is flagged exactly
  once, serializable and aborted histories stay silent, and the
  JSON diagnostic shape is pinned;
* end-to-end — the seeded fault injectors plant each anomaly inside a
  real instrumented Figure 3 run, and the audit reports exactly the
  registered code (the race detector stays silent: the fixtures are
  lock-protected and happens-before ordered on purpose).
"""

import pytest

from repro.sanitizer.anomalies import audit_history
from repro.sanitizer.events import Event
from repro.sanitizer.harness import run_sanitize
from repro.snb import GeneratorConfig, generate

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=10000, seed=3)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


def history(*steps):
    """Build an Event list from (kind, worker, txn_id[, resource[, mode]])."""
    events = []
    for seq, step in enumerate(steps):
        kind, worker, txn_id, *rest = step
        resource = rest[0] if rest else ""
        mode = rest[1] if len(rest) > 1 else ""
        events.append(Event(seq, kind, worker, txn_id, resource, mode))
    return events


def codes(events):
    return [d.code for d in audit_history(events)]


LOST_UPDATE = history(
    ("begin", "w1", 1),
    ("begin", "w2", 2),
    ("read", "w1", 1, "r"),
    ("read", "w2", 2, "r"),
    ("write", "w2", 2, "r"),
    ("commit", "w2", 2),
    ("write", "w1", 1, "r"),  # lands without having seen txn 2's
    ("commit", "w1", 1),
)

NON_REPEATABLE = history(
    ("begin", "w1", 1),
    ("read", "w1", 1, "r"),
    ("begin", "w2", 2),
    ("write", "w2", 2, "r"),
    ("commit", "w2", 2),
    ("read", "w1", 1, "r"),  # same txn, different answer
    ("commit", "w1", 1),
)

WRITE_SKEW = history(
    ("begin", "w1", 1),
    ("begin", "w2", 2),
    ("read", "w1", 1, "a", "snapshot"),
    ("read", "w2", 2, "b", "snapshot"),
    ("write", "w1", 1, "b"),
    ("write", "w2", 2, "a"),
    ("commit", "w1", 1),
    ("commit", "w2", 2),
)


class TestAuditHistory:
    def test_lost_update_is_flagged_once(self):
        assert codes(LOST_UPDATE) == ["QA603"]

    def test_non_repeatable_read_is_flagged_once(self):
        assert codes(NON_REPEATABLE) == ["QA604"]

    def test_snapshot_reads_are_repeatable_by_construction(self):
        protected = history(
            ("begin", "w1", 1),
            ("read", "w1", 1, "r", "snapshot"),
            ("begin", "w2", 2),
            ("write", "w2", 2, "r"),
            ("commit", "w2", 2),
            ("read", "w1", 1, "r", "snapshot"),
            ("commit", "w1", 1),
        )
        assert codes(protected) == []

    def test_write_skew_is_flagged_once(self):
        # one report per transaction pair, not per crossed resource pair
        assert codes(WRITE_SKEW) == ["QA605"]

    def test_serial_histories_are_silent(self):
        serial = history(
            ("begin", "w1", 1),
            ("read", "w1", 1, "r"),
            ("write", "w1", 1, "r"),
            ("commit", "w1", 1),
            ("begin", "w2", 2),
            ("read", "w2", 2, "r"),
            ("write", "w2", 2, "r"),
            ("commit", "w2", 2),
        )
        assert codes(serial) == []

    def test_aborted_transactions_never_participate(self):
        aborted = history(
            ("begin", "w1", 1),
            ("begin", "w2", 2),
            ("read", "w1", 1, "r"),
            ("read", "w2", 2, "r"),
            ("write", "w2", 2, "r"),
            ("commit", "w2", 2),
            ("write", "w1", 1, "r"),
            ("abort", "w1", 1),  # the lost update never committed
        )
        assert codes(aborted) == []

    def test_storage_events_attribute_via_the_open_transaction(self):
        # storage layers emit txn_id=-1; the worker's open txn claims them
        skew = history(
            ("begin", "w1", 1),
            ("begin", "w2", 2),
            ("read", "w1", -1, "a", "snapshot"),
            ("read", "w2", -1, "b", "snapshot"),
            ("write", "w1", -1, "b"),
            ("write", "w2", -1, "a"),
            ("commit", "w1", 1),
            ("commit", "w2", 2),
        )
        assert codes(skew) == ["QA605"]

    def test_accesses_outside_any_transaction_are_ignored(self):
        # the interactive harness's readers run outside transactions;
        # their reads must not manufacture histories
        stray = history(
            ("read", "reader-0", -1, "r"),
            ("begin", "w1", 1),
            ("write", "w1", 1, "r"),
            ("commit", "w1", 1),
            ("read", "reader-0", -1, "r"),
        )
        assert codes(stray) == []

    def test_disjoint_resources_are_not_skew(self):
        # both write what they themselves read: plain overlapping
        # updates of independent resources, serializable either way
        independent = history(
            ("begin", "w1", 1),
            ("begin", "w2", 2),
            ("read", "w1", 1, "a", "snapshot"),
            ("read", "w2", 2, "b", "snapshot"),
            ("write", "w1", 1, "a"),
            ("write", "w2", 2, "b"),
            ("commit", "w1", 1),
            ("commit", "w2", 2),
        )
        assert codes(independent) == []


class TestDiagnosticShape:
    """Pin the ``--format json`` object shape for the QA60x family."""

    EXPECTED = {
        "QA603": "lost-update",
        "QA604": "non-repeatable-read",
        "QA605": "write-skew",
    }

    @pytest.mark.parametrize(
        "fixture, code",
        [
            (LOST_UPDATE, "QA603"),
            (NON_REPEATABLE, "QA604"),
            (WRITE_SKEW, "QA605"),
        ],
    )
    def test_json_schema_is_pinned(self, fixture, code):
        (diagnostic,) = audit_history(fixture)
        record = diagnostic.to_dict()
        assert set(record) == {
            "code",
            "name",
            "severity",
            "dialect",
            "operation",
            "query_index",
            "message",
        }
        assert record["code"] == code
        assert record["name"] == self.EXPECTED[code]
        assert record["severity"] == "error"
        assert record["dialect"] == "runtime"
        assert record["operation"] == "anomaly-audit"
        assert record["query_index"] == 0
        assert record["message"]


class TestSeededHistories:
    """Each injector's history produces exactly its QA60x, nothing else."""

    @pytest.mark.parametrize(
        "mode, code",
        [
            ("lost-update", "QA603"),
            ("non-repeatable-read", "QA604"),
            ("write-skew", "QA605"),
        ],
    )
    def test_injected_run_reports_exactly_one_anomaly(
        self, dataset, mode, code
    ):
        report = run_sanitize(
            "postgres-sql",
            dataset,
            readers=2,
            duration_ms=100.0,
            inject_mode=mode,
        )
        assert [d.code for d in report.diagnostics] == [code]
        assert report.ok

    def test_clean_run_is_silent(self, dataset):
        report = run_sanitize(
            "postgres-sql", dataset, readers=2, duration_ms=100.0
        )
        assert report.diagnostics == []
        assert report.ok
