"""The SQL walker: clean built-in catalog, seeded-defect detection."""

from repro.analysis import analyze_sql
from repro.core.connectors.sql import SQL_QUERIES


def codes(queries, operation="test"):
    return [d.code for d in analyze_sql(operation, queries).diagnostics]


class TestBuiltinCatalog:
    def test_every_operation_is_clean(self):
        for operation, queries in SQL_QUERIES.items():
            result = analyze_sql(operation, queries)
            assert result.diagnostics == [], (
                operation,
                [str(d) for d in result.diagnostics],
            )

    def test_point_lookup_footprint(self):
        result = analyze_sql("point_lookup", SQL_QUERIES["point_lookup"])
        assert result.footprint == {"person"}

    def test_fk_columns_reach_the_footprint(self):
        result = analyze_sql(
            "person_recent_posts", SQL_QUERIES["person_recent_posts"]
        )
        assert "hasCreator" in result.footprint


class TestMutations:
    def test_unknown_table(self):
        # the unresolvable columns cascade into QA103s; the table
        # diagnosis leads
        found = codes(("SELECT id FROM persons WHERE id = ?",))
        assert found[0] == "QA104"

    def test_unknown_column(self):
        assert codes(
            ("SELECT nickname FROM person WHERE id = ?",)
        ) == ["QA103"]

    def test_parse_error(self):
        assert codes(("SELECT FROM WHERE",)) == ["QA105"]

    def test_insert_arity_mismatch(self):
        # person has 9 columns
        assert codes(("INSERT INTO person VALUES (?, ?, ?)",)) == ["QA106"]

    def test_wrong_typed_predicate(self):
        assert codes(
            ("SELECT id FROM person WHERE firstname = 42",)
        ) == ["QA201"]

    def test_string_literal_against_int_column(self):
        assert codes(
            ("SELECT id FROM person WHERE id = 'alice'",)
        ) == ["QA201"]

    def test_cartesian_join(self):
        # the JOIN condition never references the preceding table
        assert "QA301" in codes(
            ("SELECT p.id, f.id FROM person p "
             "JOIN forum f ON f.id = ? WHERE p.id = ?",)
        )

    def test_non_sargable_filter(self):
        assert codes(
            ("SELECT id FROM person WHERE id + 1 = ?",)
        ) == ["QA302"]

    def test_aggregates_are_not_flagged(self):
        assert codes(
            ("SELECT count(id) FROM person WHERE id = ?",)
        ) == []

    def test_shortest_path_len_checks_its_string_args(self):
        assert codes(
            ("SELECT shortest_path_len('knows', 'p1', 'nope', ?, ?)",)
        ) == ["QA103"]

    def test_shortest_path_len_unknown_table(self):
        assert codes(
            ("SELECT shortest_path_len('knowz', 'p1', 'p2', ?, ?)",)
        ) == ["QA104"]
