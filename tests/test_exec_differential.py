"""Differential tests: interpreted vs compiled execution.

Every read in the connector catalog runs twice on the *same* loaded
instance — once through the tuple-at-a-time interpreter, once through
the compiled/vectorized closures — and the answers must be identical.
This is the contract that lets the engines default to ``compiled``
while the paper harnesses pin ``interpreted``: execution mode is a
performance knob, never a semantics knob.

A second pass replays an update batch and an ANALYZE (which bump the
closure-cache epochs and force recompilation against new statistics)
and re-checks the whole catalog.
"""

import pytest

from repro.core import SUT_KEYS, make_connector
from repro.core.benchmark import WorkloadParams
from repro.snb import GeneratorConfig, generate

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=13)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


@pytest.fixture(scope="module")
def loaded(dataset):
    connectors = {}
    for key in SUT_KEYS:
        connector = make_connector(key)
        connector.load(dataset)
        connectors[key] = connector
    return connectors


@pytest.fixture(scope="module")
def params(dataset):
    return WorkloadParams.curate(dataset, count=4, seed=3)


def _catalog(params):
    """Every read operation in the catalog with curated arguments."""
    ops = []
    for pid in params.person_ids:
        ops.append(("point_lookup", (pid,)))
        ops.append(("one_hop", (pid,)))
        ops.append(("two_hop", (pid,)))
        ops.append(("person_profile", (pid,)))
        ops.append(("person_recent_posts", (pid, 10)))
        ops.append(("person_friends", (pid,)))
        ops.append(("complex_two_hop", (pid, 20)))
        ops.append(("friends_recent_posts", (pid, 10)))
    for pair in params.path_pairs:
        ops.append(("shortest_path", pair))
    for mid in params.message_ids:
        ops.append(("message_content", (mid,)))
        ops.append(("message_creator", (mid,)))
        ops.append(("message_forum", (mid,)))
        ops.append(("message_replies", (mid,)))
    return ops


def _normalize(value):
    """Order-insensitive comparison form (sorted, hashable elements)."""
    if isinstance(value, list):
        return sorted(
            tuple(v) if isinstance(v, (list, tuple)) else v for v in value
        )
    return value


def _assert_modes_agree(connector, key, ops):
    for op, args in ops:
        connector.set_execution_mode("interpreted")
        interpreted = getattr(connector, op)(*args)
        connector.set_execution_mode("compiled")
        compiled = getattr(connector, op)(*args)
        assert _normalize(compiled) == _normalize(interpreted), (
            f"{key}: {op}{args} diverges between execution modes"
        )


@pytest.mark.parametrize("key", SUT_KEYS)
def test_catalog_interpreted_vs_compiled(key, loaded, params):
    _assert_modes_agree(loaded[key], key, _catalog(params))


@pytest.mark.parametrize("key", SUT_KEYS)
def test_catalog_agrees_after_update_batch(key, dataset, params):
    """An update batch + ANALYZE forces recompilation: the closures are
    rebuilt against fresh statistics and must still match the
    interpreter on the grown graph."""
    connector = make_connector(key)
    connector.load(dataset)
    ops = _catalog(params)
    _assert_modes_agree(connector, key, ops)  # warm both caches first
    connector.apply_update_batch(dataset.updates[:40])
    _assert_modes_agree(connector, key, ops)


def test_update_batch_forces_recompilation(dataset, params):
    """The second pass above is only meaningful if the update batch
    actually evicted compiled closures — pin that on the Cypher engine,
    whose loader re-ANALYZEs after the batch."""
    connector = make_connector("neo4j-cypher")
    connector.load(dataset)
    pid = params.person_ids[0]
    connector.two_hop(pid)
    before = {
        s.name: s.invalidations for s in connector.cache_stats()
    }
    connector.apply_update_batch(dataset.updates[:40])
    connector.db.analyze()
    after = {s.name: s.invalidations for s in connector.cache_stats()}
    assert after["cypher-closures"] > before["cypher-closures"]
    assert after["cypher-plans"] > before["cypher-plans"]
