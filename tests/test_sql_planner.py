"""Planner unit tests: access-path and join-algorithm selection."""

import pytest

from repro.relational import Database
from repro.relational.sql.planner import PlanError


@pytest.fixture(params=["row", "column"])
def db(request):
    database = Database(request.param)
    database.execute(
        "CREATE TABLE person (id BIGINT PRIMARY KEY, name TEXT, city TEXT)"
    )
    database.execute("CREATE TABLE knows (p1 BIGINT, p2 BIGINT)")
    database.execute("CREATE INDEX ON knows (p1) USING HASH")
    database.execute(
        "CREATE TABLE visited (personid BIGINT, place TEXT)"
    )  # deliberately unindexed
    for pid in range(20):
        database.execute(
            "INSERT INTO person VALUES (?, ?, ?)",
            (pid, f"p{pid}", "x" if pid % 2 else "y"),
        )
        database.execute("INSERT INTO knows VALUES (?, ?)", (pid, (pid + 1) % 20))
        database.execute(
            "INSERT INTO visited VALUES (?, ?)", (pid, f"place{pid % 3}")
        )
    return database


class TestAccessPaths:
    def test_pk_equality_uses_index_scan(self, db):
        plan = db.explain("SELECT name FROM person WHERE id = 3")
        assert "IndexEqScan" in plan
        assert "SeqScan" not in plan

    def test_param_equality_uses_index_scan(self, db):
        plan = db.explain("SELECT name FROM person WHERE id = ?")
        assert "IndexEqScan" in plan

    def test_non_indexed_predicate_scans(self, db):
        plan = db.explain("SELECT name FROM person WHERE city = 'x'")
        assert "SeqScan" in plan
        assert "Filter" in plan

    def test_unindexed_table_scans(self, db):
        plan = db.explain("SELECT place FROM visited WHERE personid = 3")
        assert "SeqScan" in plan


class TestJoinSelection:
    def test_indexed_join_uses_index_nested_loop(self, db):
        plan = db.explain(
            "SELECT p.name FROM person src "
            "JOIN knows k ON k.p1 = src.id "
            "JOIN person p ON p.id = k.p2 WHERE src.id = 1"
        )
        if db.catalog.storage == "column":
            assert "VectorizedIndexNLJoin" in plan
        else:
            assert "IndexNLJoin" in plan
            assert "Vectorized" not in plan

    def test_unindexed_equality_uses_hash_join(self, db):
        plan = db.explain(
            "SELECT v.place FROM person p "
            "JOIN visited v ON v.personid = p.id"
        )
        assert "HashJoin" in plan

    def test_non_equality_falls_back_to_nested_loop(self, db):
        plan = db.explain(
            "SELECT p2.name FROM person p1 JOIN person p2 ON p2.id > p1.id "
            "WHERE p1.id = 0"
        )
        assert "NLJoin" in plan

    def test_join_results_identical_across_algorithms(self, db):
        """The hash-join and index-join paths agree on the same query."""
        via_index = db.query(
            "SELECT k.p2 FROM person p JOIN knows k ON k.p1 = p.id "
            "WHERE p.id = 5"
        )
        via_hash = db.query(
            "SELECT k.p2 FROM person p JOIN visited v ON v.personid = p.id "
            "JOIN knows k ON k.p1 = p.id WHERE p.id = 5"
        )
        assert sorted(via_index) == sorted(via_hash)


class TestPlanShape:
    def test_limit_and_sort_in_plan(self, db):
        plan = db.explain(
            "SELECT name FROM person ORDER BY name DESC LIMIT 3"
        )
        assert "Sort" in plan and "Limit" in plan

    def test_distinct_in_plan(self, db):
        plan = db.explain("SELECT DISTINCT city FROM person")
        assert "Distinct" in plan

    def test_aggregate_in_plan(self, db):
        plan = db.explain("SELECT city, COUNT(*) FROM person GROUP BY city")
        assert "Aggregate" in plan

    def test_recursive_plan(self, db):
        plan = db.explain(
            "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL "
            "SELECT n + 1 FROM r WHERE n < 3) SELECT n FROM r"
        )
        assert "RecursiveCTEPlan" in plan

    def test_explain_rejects_dml(self, db):
        with pytest.raises(TypeError):
            db.explain("INSERT INTO person VALUES (99, 'x', 'y')")

    def test_aggregate_mixed_select_rejected(self, db):
        with pytest.raises(PlanError):
            db.query("SELECT name, COUNT(*) FROM person GROUP BY city")

    def test_unresolvable_where_rejected(self, db):
        from repro.relational.sql.executor import SqlRuntimeError

        with pytest.raises((PlanError, SqlRuntimeError)):
            db.query("SELECT name FROM person WHERE ghost = 1")


class TestProjectionPushdown:
    def test_column_store_fetches_only_needed_columns(self):
        from repro.simclock import meter

        db = Database("column")
        db.execute(
            "CREATE TABLE wide (id BIGINT PRIMARY KEY, a TEXT, b TEXT, "
            "c TEXT, d TEXT, e TEXT, f TEXT, g TEXT)"
        )
        for i in range(50):
            db.execute(
                "INSERT INTO wide VALUES (?, 'a', 'b', 'c', 'd', 'e', "
                "'f', 'g')",
                (i,),
            )
        with meter() as narrow:
            db.query("SELECT a FROM wide WHERE id = 25")
        with meter() as full:
            db.query("SELECT * FROM wide WHERE id = 25")
        assert (
            narrow.counters["column_seek"] < full.counters["column_seek"]
        )
