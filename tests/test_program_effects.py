"""The QA806–QA810 MVCC-effect passes: seeded fixtures, clean twins,
fixpoint termination, and the real tree.

Layers, mirroring ``test_program_analysis.py``:

* each new code catches its seeded-violation fixture — and *only* that
  code fires from the QA806–QA810 family;
* the repaired twin of every fixture is silent across the entire QA8xx
  family (old passes included);
* the interprocedural closures terminate on mutually recursive call
  graphs and still propagate facts through the cycle;
* the real engine tree is silent for QA806–QA810 modulo the committed
  justified baseline, and QA806 catches the DESIGN §13 pre-fix shape
  (an index lookup with visibility filtering but no ``stale_keys``
  re-check).
"""

from repro.analysis.program import (
    analyze_program,
    analyze_program_sources,
)

EFFECT_PASSES = {"QA806", "QA807", "QA808", "QA809", "QA810"}


def codes(diagnostics):
    return [d.code for d in diagnostics]


def effect_codes(source, key="fixture.py"):
    return codes(
        analyze_program_sources({key: source}, passes=EFFECT_PASSES)
    )


def all_pass_codes(source, key="fixture.py"):
    return codes(analyze_program_sources({key: source}))


# -- QA806: snapshot-bypassing raw read ----------------------------------

QA806_RAW_BAD = '''
class Store:
    def __init__(self):
        self.mvcc = VersionStore("s")
        self._rows = {}

    def insert(self, key, value):
        self.mvcc.stamp(key)
        self._rows[key] = value

    def fetch(self, key):
        return self._rows[key]
'''

QA806_RAW_OK = QA806_RAW_BAD.replace(
    "    def fetch(self, key):\n"
    "        return self._rows[key]",
    "    def fetch(self, key):\n"
    "        if not self.mvcc.visible(key):\n"
    "            return None\n"
    "        return self.mvcc.read(key, self._rows[key])",
)

# the DESIGN §13 shape: the lookup filters hits for visibility but
# never re-checks stale keys, so entries re-filed by later writers
# make a held snapshot's probe miss (or wrongly surface) rows
QA806_INDEX_BAD = '''
class Store:
    def __init__(self):
        self.mvcc = VersionStore("s")
        self._rows = {}
        self._name_index = {}

    def update(self, key, value):
        self.mvcc.record_update(key, self._rows[key])
        self._name_index.pop(self._rows[key], None)
        self._name_index[value] = key
        self._rows[key] = value

    def lookup(self, value):
        hits = self._name_index.get(value, [])
        return self.mvcc.filter_visible(hits)
'''

QA806_INDEX_OK = QA806_INDEX_BAD.replace(
    "        return self.mvcc.filter_visible(hits)",
    "        visible = self.mvcc.filter_visible(hits)\n"
    "        for key in self.mvcc.stale_keys():\n"
    "            visible = self._fixup(key, value, visible)\n"
    "        return visible",
) + '''
    def _fixup(self, key, value, visible):
        row = self.mvcc.read(key, self._rows.get(key))
        if row == value and key not in visible:
            visible.append(key)
        if row != value and key in visible:
            visible.remove(key)
        return visible
'''


class TestSnapshotBypassPass:
    def test_raw_container_read_fires_exactly_qa806(self):
        diags = analyze_program_sources(
            {"fixture.py": QA806_RAW_BAD}, passes=EFFECT_PASSES
        )
        assert codes(diags) == ["QA806"]
        assert "Store.fetch" in diags[0].location.operation
        assert "_rows" in diags[0].message

    def test_version_read_through_mvcc_is_silent(self):
        assert all_pass_codes(QA806_RAW_OK) == []

    def test_design13_index_probe_without_stale_keys_fires(self):
        diags = analyze_program_sources(
            {"fixture.py": QA806_INDEX_BAD}, passes=EFFECT_PASSES
        )
        assert codes(diags) == ["QA806"]
        assert "Store.lookup" in diags[0].location.operation
        assert "stale_keys" in diags[0].message

    def test_stale_keys_fixup_clears_the_probe(self):
        assert all_pass_codes(QA806_INDEX_OK) == []

    def test_writers_may_read_their_own_containers_raw(self):
        # insert/update read _rows raw in both fixtures; as version
        # writers they are exempt (read-your-own-write is their job)
        bad = analyze_program_sources(
            {"fixture.py": QA806_RAW_BAD}, passes=EFFECT_PASSES
        )
        assert all(
            "insert" not in d.location.operation for d in bad
        )


# -- QA807: mutation without version stamping ----------------------------

QA807_BAD = '''
class Store:
    def __init__(self):
        self.mvcc = VersionStore("s")
        self._rows = {}

    def fetch(self, key):
        if not self.mvcc.visible(key):
            return None
        return self.mvcc.read(key, self._rows[key])

    def put_row(self, key, value):
        self._rows[key] = value
'''

QA807_OK = QA807_BAD.replace(
    "    def put_row(self, key, value):\n"
    "        self._rows[key] = value",
    "    def put_row(self, key, value):\n"
    "        self.mvcc.stamp(key)\n"
    "        self._rows[key] = value",
)

# the stamp may live in a helper: the fact must propagate through the
# call graph, not just the mutating function's own body
QA807_HELPER_OK = QA807_BAD.replace(
    "    def put_row(self, key, value):\n"
    "        self._rows[key] = value",
    "    def put_row(self, key, value):\n"
    "        self._note_write(key)\n"
    "        self._rows[key] = value\n"
    "\n"
    "    def _note_write(self, key):\n"
    "        self.mvcc.stamp(key)",
)


class TestUnversionedMutationPass:
    def test_unstamped_container_write_fires_exactly_qa807(self):
        diags = analyze_program_sources(
            {"fixture.py": QA807_BAD}, passes=EFFECT_PASSES
        )
        assert codes(diags) == ["QA807"]
        assert "Store.put_row" in diags[0].location.operation

    def test_stamped_write_is_silent(self):
        assert all_pass_codes(QA807_OK) == []

    def test_stamp_in_a_callee_carries_the_discipline(self):
        assert all_pass_codes(QA807_HELPER_OK) == []


# -- QA808: cache ops not gated on snapshot staleness --------------------

QA808_BAD = '''
class Engine:
    def __init__(self):
        self.mvcc = VersionStore("s")
        self._rows = {}
        self._row_cache = {}

    def insert(self, key, value):
        self.mvcc.stamp(key)
        self._rows[key] = value

    def fetch(self, key):
        if key in self._row_cache:
            return self._row_cache[key]
        value = self.mvcc.read(key, self._rows[key])
        self._row_cache[key] = value
        return value
'''

QA808_OK = QA808_BAD.replace(
    "    def fetch(self, key):\n"
    "        if key in self._row_cache:",
    "    def fetch(self, key):\n"
    "        if self.mvcc.stale(key):\n"
    "            return self.mvcc.read(key, self._rows[key])\n"
    "        if key in self._row_cache:",
)


class TestUngatedCachePass:
    def test_ungated_fill_and_hit_fires_exactly_qa808(self):
        diags = analyze_program_sources(
            {"fixture.py": QA808_BAD}, passes=EFFECT_PASSES
        )
        assert codes(diags) == ["QA808"]
        assert "Engine.fetch" in diags[0].location.operation
        assert "_row_cache" in diags[0].message

    def test_staleness_gate_clears_it(self):
        assert all_pass_codes(QA808_OK) == []


# -- QA809: physical reclaim outside the watermark path ------------------

QA809_BAD = '''
class Store:
    def __init__(self):
        self.mvcc = VersionStore("s", on_reclaim=self._reclaim)
        self._rows = {}

    def _reclaim(self, key):
        self._rows.pop(key, None)

    def delete(self, key):
        if not self.mvcc.record_delete(key):
            self._reclaim(key)

    def evict(self, key):
        self._reclaim(key)
'''

QA809_OK = QA809_BAD.replace(
    "    def evict(self, key):\n"
    "        self._reclaim(key)",
    "    def evict(self, key):\n"
    "        if not self.mvcc.record_delete(key):\n"
    "            self._reclaim(key)",
)


class TestReclaimDisciplinePass:
    def test_reclaim_without_tombstone_consult_fires_qa809(self):
        diags = analyze_program_sources(
            {"fixture.py": QA809_BAD}, passes=EFFECT_PASSES
        )
        assert codes(diags) == ["QA809"]
        assert "Store.evict" in diags[0].location.operation

    def test_record_delete_consult_licenses_the_reclaim(self):
        assert all_pass_codes(QA809_OK) == []

    def test_the_callback_closure_itself_is_sanctioned(self):
        # _reclaim unstamps and mutates _rows with no version write:
        # as the registered on_reclaim callback it is the watermark
        # path, exempt from QA806/QA807 by construction
        diags = analyze_program_sources(
            {"fixture.py": QA809_BAD}, passes=EFFECT_PASSES
        )
        assert all(
            "_reclaim" not in d.location.operation for d in diags
        )


# -- QA810: side effects in compiled execution ---------------------------

QA810_BAD = '''
def compiled_filter(batch, engine):
    out = []
    for row in batch:
        if row.score > 0:
            engine.put(row.key, row)
            out.append(row)
    return out
'''

QA810_OK = '''
def compiled_filter(batch):
    out = []
    for row in batch:
        if row.score > 0:
            out.append(row)
    return out
'''


class TestExecEffectsPass:
    def test_write_verb_in_exec_module_fires_exactly_qa810(self):
        diags = analyze_program_sources(
            {"repro/exec/fixture.py": QA810_BAD},
            passes=EFFECT_PASSES,
        )
        assert codes(diags) == ["QA810"]
        assert "compiled_filter" in diags[0].location.operation
        assert "put" in diags[0].message

    def test_read_only_kernel_is_silent(self):
        assert (
            all_pass_codes(QA810_OK, key="repro/exec/fixture.py")
            == []
        )

    def test_same_code_outside_exec_is_not_qa810(self):
        assert (
            effect_codes(QA810_BAD, key="repro/other/fixture.py")
            == []
        )


# -- fixpoint termination on recursive call graphs -----------------------

RECURSIVE = '''
class Store:
    def __init__(self):
        self.mvcc = VersionStore("s")
        self._rows = {}

    def insert(self, key, value):
        self.mvcc.stamp(key)
        self._rows[key] = value

    def walk(self, key, depth):
        if depth == 0:
            return self.probe(key, depth)
        return self.walk(key, depth - 1)

    def probe(self, key, depth):
        if key not in self._rows:
            return self.walk(key, depth + 1)
        if self.mvcc.visible(key):
            return self.mvcc.read(key, self._rows[key])
        return None
'''

RECURSIVE_BAD = RECURSIVE.replace(
    "        if self.mvcc.visible(key):\n"
    "            return self.mvcc.read(key, self._rows[key])\n"
    "        return None",
    "        return self._rows[key]",
)


class TestFixpointTermination:
    def test_mutually_recursive_cycle_terminates_and_is_clean(self):
        # walk <-> probe form a cycle; the upward closure must reach
        # the fixpoint (both carry probe's version read) and stop
        assert all_pass_codes(RECURSIVE) == []

    def test_cycle_without_a_version_read_still_fires(self):
        diags = analyze_program_sources(
            {"fixture.py": RECURSIVE_BAD}, passes=EFFECT_PASSES
        )
        assert sorted(set(codes(diags))) == ["QA806"]
        flagged = {d.location.operation.split(":")[1] for d in diags}
        assert "Store.probe" in flagged

    def test_self_recursive_function_terminates(self):
        source = RECURSIVE.replace(
            "    def insert(self, key, value):",
            "    def spin(self, key):\n"
            "        return self.spin(key)\n"
            "\n"
            "    def insert(self, key, value):",
        )
        assert all_pass_codes(source) == []


# -- the real tree -------------------------------------------------------


class TestRealTreeEffects:
    def test_effect_passes_clean_under_committed_baseline(self):
        assert (
            analyze_program(passes=EFFECT_PASSES) == []
        )

    def test_unbaselined_effect_findings_are_the_justified_two(self):
        raw = analyze_program(baseline=None, passes=EFFECT_PASSES)
        assert sorted(d.location.operation for d in raw) == [
            "repro.rdf.triples:TripleStore._match_ids_raw",
            "repro.rdf.triples:TripleStore.lookup_term",
        ]
        assert {d.code for d in raw} == {"QA806"}
