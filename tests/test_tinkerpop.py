"""Tests for the TinkerPop stack, run against all four providers.

Parameterizing the same traversal tests over TinkerGraph, Neo4j, Sqlg,
and both Titan backends validates the paper's premise: one Gremlin
implementation of the workload executes against any compliant system.
"""

import pytest

from repro.graphdb.tinkerpop_adapter import Neo4jProvider
from repro.simclock import meter
from repro.sqlg import SqlgProvider
from repro.tinkerpop import (
    Graph,
    GremlinServer,
    GremlinServerError,
    P,
    TinkerGraphProvider,
    anon,
)
from repro.tinkerpop.traversal import TraversalError
from repro.titan import titan_berkeley, titan_cassandra


def make_tinker():
    provider = TinkerGraphProvider()
    provider.create_index("person", "id")
    return provider


def make_neo4j():
    provider = Neo4jProvider()
    provider.store.create_index("person", "id")
    return provider


def make_sqlg():
    provider = SqlgProvider()
    provider.define_vertex_label("person", {"id": int, "name": str, "age": int})
    provider.define_edge_label("knows", {"since": int})
    return provider


def make_titan_c():
    provider = titan_cassandra()
    provider.create_index("person", "id")
    return provider


def make_titan_b():
    provider = titan_berkeley()
    provider.create_index("person", "id")
    return provider


PROVIDERS = {
    "tinkergraph": make_tinker,
    "neo4j": make_neo4j,
    "sqlg": make_sqlg,
    "titan-c": make_titan_c,
    "titan-b": make_titan_b,
}


@pytest.fixture(params=sorted(PROVIDERS))
def g(request):
    provider = PROVIDERS[request.param]()
    graph = Graph(provider)
    g = graph.traversal()
    vertex = {}
    for pid, name, age in [
        (1, "alice", 30),
        (2, "bob", 35),
        (3, "carol", 28),
        (4, "dave", 41),
        (5, "erin", 25),
    ]:
        vertex[pid] = (
            g.addV("person")
            .property("id", pid)
            .property("name", name)
            .property("age", age)
            .next()
        )
    for a, b, since in [(1, 2, 2010), (2, 3, 2011), (3, 4, 2012), (1, 5, 2013)]:
        g.V(vertex[a].id).addE("knows").to(vertex[b]).property(
            "since", since
        ).iterate()
    return g


class TestTraversals:
    def test_point_lookup(self, g):
        rows = g.V().has("person", "id", 3).values("name").toList()
        assert rows == ["carol"]

    def test_lookup_missing(self, g):
        assert g.V().has("person", "id", 999).toList() == []

    def test_value_map(self, g):
        maps = g.V().has("person", "id", 1).valueMap().toList()
        assert maps[0]["name"] == "alice"
        assert maps[0]["age"] == 30

    def test_one_hop_both(self, g):
        names = sorted(
            g.V().has("person", "id", 1).both("knows").values("name")
        )
        assert names == ["bob", "erin"]

    def test_one_hop_directed(self, g):
        assert g.V().has("person", "id", 2).out("knows").values("name").toList() == ["carol"]
        assert g.V().has("person", "id", 2).in_("knows").values("name").toList() == ["alice"]

    def test_two_hop_dedup(self, g):
        names = (
            g.V().has("person", "id", 1)
            .both("knows").both("knows")
            .has("id", P.neq(1))
            .dedup().values("name").toList()
        )
        assert sorted(names) == ["carol"]

    def test_edge_properties(self, g):
        since = (
            g.V().has("person", "id", 1)
            .bothE("knows").has("since", P.gt(2012))
            .values("since").toList()
        )
        assert since == [2013]

    def test_other_v(self, g):
        names = sorted(
            g.V().has("person", "id", 1).bothE("knows").otherV().values("name")
        )
        assert names == ["bob", "erin"]

    def test_count(self, g):
        assert g.V().hasLabel("person").count().next() == 5

    def test_order_by(self, g):
        names = (
            g.V().hasLabel("person").order().by("age", descending=True)
            .values("name").limit(2).toList()
        )
        assert names == ["dave", "bob"]

    def test_limit(self, g):
        assert len(g.V().hasLabel("person").limit(3).toList()) == 3

    def test_repeat_times(self, g):
        names = (
            g.V().has("person", "id", 1)
            .repeat(anon().both("knows").simplePath()).times(2)
            .dedup().values("name").toList()
        )
        assert sorted(names) == ["carol"]

    def test_repeat_until_shortest_path(self, g):
        paths = (
            g.V().has("person", "id", 1)
            .repeat(anon().both("knows").simplePath())
            .until(anon().has("id", P.eq(4)))
            .path().limit(1).toList()
        )
        # path: v1 -> v2 -> v3 -> v4 (4 vertices, 3 hops)
        assert len(paths[0]) == 4

    def test_repeat_until_unreachable_is_empty(self, g):
        results = (
            g.V().has("person", "id", 1)
            .repeat(anon().both("knows").simplePath())
            .until(anon().has("id", P.eq(12345)))
            .limit(1).toList()
        )
        assert results == []

    def test_within_predicate(self, g):
        names = sorted(
            g.V().hasLabel("person").has("id", P.within([1, 4])).values("name")
        )
        assert names == ["alice", "dave"]

    def test_property_mutation(self, g):
        g.V().has("person", "id", 5).property("age", 26).iterate()
        assert g.V().has("person", "id", 5).values("age").next() == 26

    def test_anonymous_traversal_cannot_iterate(self, g):
        with pytest.raises(TraversalError):
            anon().both("knows").toList()

    def test_by_requires_order(self, g):
        with pytest.raises(TraversalError):
            g.V().by("age")


class TestGremlinServer:
    def test_submit_executes(self):
        provider = make_tinker()
        server = GremlinServer(provider)
        g0 = Graph(provider).traversal()
        g0.addV("person").property("id", 1).property("name", "a").iterate()
        results = server.submit(
            lambda g: g.V().has("person", "id", 1).values("name")
        )
        assert results == ["a"]
        assert server.requests_served == 1

    def test_submit_charges_server_overhead(self):
        provider = make_tinker()
        server = GremlinServer(provider)
        Graph(provider).traversal().addV("person").property(
            "id", 1
        ).iterate()
        with meter() as ledger:
            server.submit(lambda g: g.V().has("person", "id", 1))
        assert ledger.counters["server_rtt"] >= 1
        assert ledger.counters["gremlin_compile"] == 1
        assert ledger.counters["serialize_item"] == 1

    def test_gremlin_overhead_dominates_embedded(self):
        """Server-mediated access costs orders of magnitude more than
        embedded traversal — Figure 2's architecture, Table 2's result."""
        from repro.simclock import CostModel

        provider = make_tinker()
        Graph(provider).traversal().addV("person").property(
            "id", 1
        ).iterate()
        server = GremlinServer(provider)
        model = CostModel()
        with meter() as embedded:
            Graph(provider).traversal().V().has("person", "id", 1).toList()
        with meter() as served:
            server.submit(lambda g: g.V().has("person", "id", 1))
        assert served.cost_us(model) > 50 * embedded.cost_us(model)

    def test_crash_semantics(self):
        provider = make_tinker()
        server = GremlinServer(provider)
        server.crash()
        with pytest.raises(GremlinServerError):
            server.submit(lambda g: g.V())
        assert server.requests_failed == 1
        server.restart()
        server.submit(lambda g: g.V())


class TestBackendCharacteristics:
    def test_titan_c_charges_backend_rtt(self):
        provider = make_titan_c()
        g = Graph(provider).traversal()
        with meter() as ledger:
            g.addV("person").property("id", 1).iterate()
        assert ledger.counters["backend_rtt"] >= 1
        assert ledger.counters["lock_rtt"] >= 1  # uniqueness locking

    def test_titan_b_no_rtt_but_serialized_writers(self):
        provider = make_titan_b()
        g = Graph(provider).traversal()
        with meter() as ledger:
            g.addV("person").property("id", 1).iterate()
        assert ledger.counters["backend_rtt"] == 0
        assert ledger.counters["lock_rtt"] == 0
        assert provider.serializes_writers

    def test_sqlg_issues_sql_per_step(self):
        provider = make_sqlg()
        g = Graph(provider).traversal()
        g.addV("person").property("id", 1).property("name", "a").iterate()
        g.addV("person").property("id", 2).property("name", "b").iterate()
        v1 = g.V().has("person", "id", 1).next()
        v2 = g.V().has("person", "id", 2).next()
        g.V(v1.id).addE("knows").to(v2).property("since", 2010).iterate()
        statements_before = provider.db.statements_executed
        names = (
            g.V().has("person", "id", 1).both("knows").values("name").toList()
        )
        assert names == ["b"]
        # lookup + adjacency (out & in) + props: several small statements
        assert provider.db.statements_executed - statements_before >= 3

    def test_titan_adjacency_is_range_scan(self):
        provider = make_titan_c()
        g = Graph(provider).traversal()
        for pid in (1, 2, 3):
            g.addV("person").property("id", pid).iterate()
        v1 = g.V().has("person", "id", 1).next()
        for other in (2, 3):
            vo = g.V().has("person", "id", other).next()
            g.V(v1.id).addE("knows").to(vo).iterate()
        assert sorted(
            g.V().has("person", "id", 1).out("knows").values("id")
        ) == [2, 3]
