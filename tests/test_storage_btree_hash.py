"""Tests for the B+tree and hash index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simclock import meter
from repro.storage import BPlusTree, HashIndex


class TestBPlusTree:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(1) == []
        assert list(tree.items()) == []

    def test_insert_search(self):
        tree = BPlusTree()
        tree.insert(5, "five")
        assert tree.search(5) == ["five"]
        assert tree.contains(5)
        assert not tree.contains(6)

    def test_duplicates_allowed_by_default(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert sorted(tree.search(1)) == ["a", "b"]
        assert len(tree) == 2

    def test_unique_rejects_duplicates(self):
        tree = BPlusTree(unique=True)
        tree.insert(1, "a")
        with pytest.raises(KeyError):
            tree.insert(1, "b")

    def test_split_preserves_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(100))
        for k in keys:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.items()] == keys
        assert tree.height() > 1

    def test_reverse_insertion_order(self):
        tree = BPlusTree(order=4)
        for k in reversed(range(50)):
            tree.insert(k, str(k))
        assert [k for k, _ in tree.items()] == list(range(50))

    def test_range_scan_bounds(self):
        tree = BPlusTree(order=4)
        for k in range(20):
            tree.insert(k, k)
        assert [k for k, _ in tree.range_scan(5, 8)] == [5, 6, 7, 8]
        assert [k for k, _ in tree.range_scan(5, 8, lo_inclusive=False)] == [6, 7, 8]
        assert [k for k, _ in tree.range_scan(5, 8, hi_inclusive=False)] == [5, 6, 7]
        assert [k for k, _ in tree.range_scan(hi=2)] == [0, 1, 2]
        assert [k for k, _ in tree.range_scan(lo=17)] == [17, 18, 19]

    def test_range_scan_missing_bound_keys(self):
        tree = BPlusTree(order=4)
        for k in [10, 20, 30, 40]:
            tree.insert(k, k)
        assert [k for k, _ in tree.range_scan(15, 35)] == [20, 30]

    def test_delete_specific_value(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.search(1) == ["b"]

    def test_delete_all_values(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1) == 2
        assert tree.search(1) == []
        assert len(tree) == 0

    def test_delete_absent_key(self):
        assert BPlusTree().delete(99) == 0

    def test_min_key(self):
        tree = BPlusTree(order=4)
        for k in [5, 3, 9]:
            tree.insert(k, k)
        assert tree.min_key() == 3
        with pytest.raises(KeyError):
            BPlusTree().min_key()

    def test_tuple_keys(self):
        tree = BPlusTree()
        tree.insert((1, "a"), "x")
        tree.insert((1, "b"), "y")
        tree.insert((2, "a"), "z")
        got = [v for _, v in tree.range_scan((1, ""), (1, "zzz"))]
        assert got == ["x", "y"]

    def test_charges_index_work(self):
        tree = BPlusTree(order=4)
        for k in range(100):
            tree.insert(k, k)
        with meter() as ledger:
            tree.search(50)
        assert ledger.counters["index_probe"] == 1
        assert ledger.counters["index_node"] >= tree.height()

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 500), st.integers()), max_size=300))
    def test_matches_sorted_model(self, pairs):
        tree = BPlusTree(order=4)
        model: dict[int, list[int]] = {}
        for key, value in pairs:
            tree.insert(key, value)
            model.setdefault(key, []).append(value)
        expected = [
            (k, v) for k in sorted(model) for v in model[k]
        ]
        assert list(tree.items()) == expected
        for key in model:
            assert tree.search(key) == model[key]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=200),
        st.lists(st.integers(0, 100), max_size=100),
    )
    def test_delete_property(self, inserts, deletes):
        tree = BPlusTree(order=4)
        model: dict[int, list[int]] = {}
        for k in inserts:
            tree.insert(k, k)
            model.setdefault(k, []).append(k)
        for k in deletes:
            removed = tree.delete(k)
            assert removed == len(model.pop(k, []))
        expected = [(k, v) for k in sorted(model) for v in model[k]]
        assert list(tree.items()) == expected


class TestHashIndex:
    def test_insert_search(self):
        idx = HashIndex()
        idx.insert("k", 1)
        idx.insert("k", 2)
        assert idx.search("k") == [1, 2]
        assert idx.search("absent") == []

    def test_unique(self):
        idx = HashIndex(unique=True)
        idx.insert("k", 1)
        with pytest.raises(KeyError):
            idx.insert("k", 2)

    def test_delete_value(self):
        idx = HashIndex()
        idx.insert("k", 1)
        idx.insert("k", 2)
        assert idx.delete("k", 1) == 1
        assert idx.search("k") == [2]

    def test_delete_key(self):
        idx = HashIndex()
        idx.insert("k", 1)
        idx.insert("k", 2)
        assert idx.delete("k") == 2
        assert not idx.contains("k")
        assert len(idx) == 0

    def test_items(self):
        idx = HashIndex()
        idx.insert("a", 1)
        idx.insert("b", 2)
        assert sorted(idx.items()) == [("a", 1), ("b", 2)]

    def test_charges(self):
        idx = HashIndex()
        with meter() as ledger:
            idx.insert("a", 1)
            idx.search("a")
        assert ledger.counters["index_insert"] == 1
        assert ledger.counters["hash_probe"] == 1
