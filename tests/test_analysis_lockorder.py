"""The lock-order pass: AB/BA cycles in synthetic sources, and the
absence of any such cycle in the repository itself."""

from repro.analysis import analyze_lock_order
from repro.analysis.lockorder import analyze_lock_order_sources

X = "LockMode.EXCLUSIVE"


def qa501(diagnostics):
    return [d for d in diagnostics if d.code == "QA501"]


def qa502(diagnostics):
    return [d for d in diagnostics if d.code == "QA502"]


class TestSyntheticSources:
    def test_two_way_cycle(self):
        diagnostics = analyze_lock_order_sources({
            "a.py": (
                "def path_one(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.acquire(t, 'B', {X})\n"
            ),
            "b.py": (
                "def path_two(m, t):\n"
                f"    m.acquire(t, 'B', {X})\n"
                f"    m.acquire(t, 'A', {X})\n"
            ),
        })
        found = qa501(diagnostics)
        assert len(found) == 1
        message = found[0].message
        assert "path_one" in message and "path_two" in message
        assert "'A'" in message and "'B'" in message

    def test_three_way_cycle(self):
        diagnostics = analyze_lock_order_sources({
            "c.py": (
                "def f1(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.acquire(t, 'B', {X})\n"
                "def f2(m, t):\n"
                f"    m.acquire(t, 'B', {X})\n"
                f"    m.acquire(t, 'C', {X})\n"
                "def f3(m, t):\n"
                f"    m.acquire(t, 'C', {X})\n"
                f"    m.acquire(t, 'A', {X})\n"
            ),
        })
        found = qa501(diagnostics)
        assert len(found) == 1
        assert "'A'" in found[0].message
        assert "'C'" in found[0].message

    def test_consistent_order_is_clean(self):
        diagnostics = analyze_lock_order_sources({
            "d.py": (
                "def f1(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.acquire(t, 'B', {X})\n"
                "def f2(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.acquire(t, 'C', {X})\n"
            ),
        })
        assert qa501(diagnostics) == []

    def test_try_acquire_cannot_deadlock(self):
        diagnostics = analyze_lock_order_sources({
            "e.py": (
                "def f1(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.try_acquire(t, 'B', {X})\n"
                "def f2(m, t):\n"
                f"    m.acquire(t, 'B', {X})\n"
                f"    m.try_acquire(t, 'A', {X})\n"
            ),
        })
        assert qa501(diagnostics) == []

    def test_reacquiring_the_same_resource_is_not_a_cycle(self):
        diagnostics = analyze_lock_order_sources({
            "f.py": (
                "def f1(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.acquire(t, 'A', {X})\n"
            ),
        })
        assert qa501(diagnostics) == []


class TestSortedAcquisition:
    def test_unsorted_pair_in_one_function_warns(self):
        diagnostics = analyze_lock_order_sources({
            "g.py": (
                "def backwards(m, t):\n"
                f"    m.acquire(t, 'B', {X})\n"
                f"    m.acquire(t, 'A', {X})\n"
            ),
        })
        found = qa502(diagnostics)
        assert len(found) == 1
        assert "backwards" in found[0].message
        assert "acquire_many" in found[0].message

    def test_sorted_acquisition_is_clean(self):
        diagnostics = analyze_lock_order_sources({
            "h.py": (
                "def forwards(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.acquire(t, 'B', {X})\n"
                f"    m.acquire(t, 'C', {X})\n"
            ),
        })
        assert qa502(diagnostics) == []

    def test_single_lock_is_clean(self):
        diagnostics = analyze_lock_order_sources({
            "i.py": (
                "def single(m, t):\n"
                f"    m.acquire(t, 'Z', {X})\n"
            ),
        })
        assert qa502(diagnostics) == []

    def test_reacquisition_does_not_count_as_unsorted(self):
        # A .. B .. A: the trailing A is a re-entrant no-op, not a
        # second (out-of-order) acquisition.
        diagnostics = analyze_lock_order_sources({
            "j.py": (
                "def reentrant(m, t):\n"
                f"    m.acquire(t, 'A', {X})\n"
                f"    m.acquire(t, 'B', {X})\n"
                f"    m.acquire(t, 'A', {X})\n"
            ),
        })
        assert qa502(diagnostics) == []


class TestRepository:
    def test_the_package_has_no_conflicting_lock_orders(self):
        diagnostics = analyze_lock_order()
        assert qa501(diagnostics) == [], [str(d) for d in diagnostics]

    def test_the_package_acquires_multi_locks_in_sorted_order(self):
        diagnostics = analyze_lock_order()
        assert qa502(diagnostics) == [], [str(d) for d in diagnostics]
