"""Cost-based optimization across the four engines.

Each class designs a worst-case textual order, checks the optimizer
rewrites it (plan shape and/or simulated cost), and — most importantly —
checks the answers never change.
"""

import pytest

from repro.graphdb import GraphDatabase
from repro.rdf import RdfDatabase
from repro.relational import Database
from repro.simclock import CostModel, meter
from repro.tinkerpop import Graph, TinkerGraphProvider

MODEL = CostModel()


def cost_of(run) -> float:
    with meter() as ledger:
        run()
    return ledger.cost_us(MODEL)


# --- SQL -------------------------------------------------------------------------


@pytest.fixture
def sql_db():
    db = Database("row")
    db.execute(
        "CREATE TABLE person (id BIGINT PRIMARY KEY, city TEXT)"
    )
    db.execute("CREATE TABLE knows (p1 BIGINT, p2 BIGINT)")
    db.execute("CREATE INDEX ON knows (p1) USING HASH")
    db.execute("CREATE INDEX ON knows (p2) USING HASH")
    for pid in range(40):
        db.execute(
            "INSERT INTO person VALUES (?, ?)", (pid, f"c{pid % 4}")
        )
        for off in (1, 2, 3):
            db.execute(
                "INSERT INTO knows VALUES (?, ?)",
                (pid, (pid + off) % 40),
            )
    db.analyze()
    return db


REVERSED_2HOP = (
    "SELECT DISTINCT k2.p2 FROM knows k2 "
    "JOIN knows k1 ON k2.p1 = k1.p2 "
    "JOIN person p ON k1.p1 = p.id "
    "WHERE p.id = 7"
)


class TestSqlJoinReordering:
    def test_reversed_from_clause_starts_at_the_point_filter(self, sql_db):
        plan = sql_db.explain(REVERSED_2HOP)
        assert "IndexEqScan(person" in plan
        assert "HashJoin" not in plan

    def test_textual_order_preserved_when_disabled(self, sql_db):
        sql_db.set_join_reordering(False)
        try:
            plan = sql_db.explain(REVERSED_2HOP)
            # textual order drives from the full knows scan
            assert "SeqScan(knows as k2)" in plan
        finally:
            sql_db.set_join_reordering(True)
        assert "SeqScan(knows as k2)" not in sql_db.explain(REVERSED_2HOP)

    def test_answers_identical_either_way(self, sql_db):
        optimized = sql_db.query(REVERSED_2HOP)
        sql_db.set_join_reordering(False)
        try:
            textual = sql_db.query(REVERSED_2HOP)
        finally:
            sql_db.set_join_reordering(True)
        assert sorted(optimized) == sorted(textual)

    def test_reordered_plan_is_cheaper(self, sql_db):
        # interpreted execution: the classic iterator model this cost
        # ratio was calibrated against (vectorization narrows the gap
        # because the bad plan's extra tuples get the cheap batch rate)
        sql_db.set_execution_mode("interpreted")
        optimized = cost_of(lambda: sql_db.query(REVERSED_2HOP))
        sql_db.set_join_reordering(False)
        try:
            textual = cost_of(lambda: sql_db.query(REVERSED_2HOP))
        finally:
            sql_db.set_join_reordering(True)
        assert textual > 2.0 * optimized

    def test_reordered_plan_is_cheaper_compiled(self, sql_db):
        optimized = cost_of(lambda: sql_db.query(REVERSED_2HOP))
        sql_db.set_join_reordering(False)
        try:
            textual = cost_of(lambda: sql_db.query(REVERSED_2HOP))
        finally:
            sql_db.set_join_reordering(True)
        assert textual > optimized

    def test_explain_estimates_every_node(self, sql_db):
        for sql in (
            REVERSED_2HOP,
            "SELECT id FROM person WHERE city = 'c1'",
            "SELECT count(*) FROM knows",
        ):
            plan = sql_db.explain(sql)
            for line in plan.splitlines():
                assert "[est_rows=" in line, line


# --- SPARQL ----------------------------------------------------------------------


@pytest.fixture
def rdf_db():
    db = RdfDatabase()
    triples = []
    for pid in range(40):
        person = f"sn:pers{pid}"
        triples.append((person, "rdf:type", "snb:Person"))
        triples.append((person, "snb:id", pid))
        for off in (1, 2, 3):
            triples.append(
                (person, "snb:knows", f"sn:pers{(pid + off) % 40}")
            )
    db.insert_triples(triples)
    db.analyze()
    return db


UNBOUND_FIRST = (
    "SELECT DISTINCT ?fofid WHERE { "
    "?f snb:knows ?fof . ?fof snb:id ?fofid . "
    "?p snb:knows ?f . ?p snb:id $id . ?p rdf:type snb:Person } "
    "ORDER BY ?fofid"
)


class TestSparqlPatternOrdering:
    def test_stats_order_beats_textual(self, rdf_db):
        params = {"id": 7}
        optimized = cost_of(lambda: rdf_db.execute(UNBOUND_FIRST, params))
        rdf_db.executor.order_mode = "textual"
        try:
            textual = cost_of(
                lambda: rdf_db.execute(UNBOUND_FIRST, params)
            )
        finally:
            rdf_db.executor.order_mode = "stats"
        assert textual > 2.0 * optimized

    def test_answers_identical_across_modes(self, rdf_db):
        params = {"id": 7}
        results = {}
        for mode in ("stats", "boundness", "textual"):
            rdf_db.executor.order_mode = mode
            results[mode] = rdf_db.execute(UNBOUND_FIRST, params)
        rdf_db.executor.order_mode = "stats"
        assert results["stats"] == results["textual"]
        assert results["stats"] == results["boundness"]


# --- Cypher ----------------------------------------------------------------------


@pytest.fixture
def graph_db():
    db = GraphDatabase()
    for pid in range(40):
        db.execute(
            "CREATE (p:Person {id: $id, name: $name})",
            {"id": pid, "name": f"p{pid}"},
        )
    for pid in range(40):
        for off in (1, 2, 3):
            db.execute(
                "MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
                "CREATE (a)-[:KNOWS]->(b)",
                {"a": pid, "b": (pid + off) % 40},
            )
    db.create_index("Person", "id")
    return db


TWO_HOP = (
    "MATCH (fof:Person)<-[:KNOWS]-(f:Person)<-[:KNOWS]-"
    "(p:Person {id: $id}) RETURN DISTINCT fof.id ORDER BY fof.id"
)


class TestCypherAnchorSelection:
    def test_stats_anchor_is_cheaper_than_heuristic(self, graph_db):
        params = {"id": 7}
        baseline = cost_of(lambda: graph_db.execute(TWO_HOP, params))
        graph_db.analyze()
        optimized = cost_of(lambda: graph_db.execute(TWO_HOP, params))
        assert optimized <= baseline

    def test_answers_identical_with_and_without_stats(self, graph_db):
        params = {"id": 7}
        before = graph_db.execute(TWO_HOP, params)
        graph_db.analyze()
        assert graph_db.execute(TWO_HOP, params) == before

    def test_label_scan_uses_the_label_index(self, graph_db):
        ids = list(graph_db.store.nodes_with_label("Person"))
        assert len(ids) == 40
        assert ids == sorted(ids)


# --- TinkerPop -------------------------------------------------------------------


class TestGremlinIndexFold:
    def make_g(self):
        provider = TinkerGraphProvider()
        provider.create_index("person", "name")
        g = Graph(provider).traversal()
        for pid, name in enumerate(["alice", "bob", "carol"]):
            g.addV("person").property("id", pid).property(
                "name", name
            ).iterate()
        return g

    def test_haslabel_has_folds_into_index(self, g=None):
        g = self.make_g()
        t = g.V().hasLabel("person").has("name", "bob")
        step = t.steps[0]
        assert step.index_key == "name"
        assert step.index_value == "bob"
        assert len(t.steps) == 1

    def test_folded_lookup_returns_the_same_rows(self):
        g = self.make_g()
        folded = g.V().hasLabel("person").has("name", "bob").values("id")
        assert folded.toList() == [1]

    def test_no_fold_without_an_index(self):
        provider = TinkerGraphProvider()
        g = Graph(provider).traversal()
        g.addV("person").property("name", "dana").iterate()
        t = g.V().hasLabel("person").has("name", "dana")
        assert t.steps[0].index_key is None
        assert len(t.steps) == 2
