"""Tests for metric collection and report rendering."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import LatencyRecorder, ThroughputWindow
from repro.core.report import render_series, render_table


class TestLatencyRecorder:
    def test_empty_stats_are_nan(self):
        recorder = LatencyRecorder()
        assert math.isnan(recorder.mean())
        assert math.isnan(recorder.percentile(50))
        assert math.isnan(recorder.min())
        assert recorder.count == 0

    def test_mean_min_max(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.mean() == pytest.approx(2.0)
        assert recorder.min() == 1.0
        assert recorder.max() == 3.0

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.percentile(50) == 50.0
        assert recorder.percentile(99) == 99.0
        assert recorder.percentile(100) == 100.0
        assert recorder.percentile(0) == 1.0

    def test_percentile_bounds(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    @given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=200))
    def test_percentile_monotone(self, samples):
        recorder = LatencyRecorder()
        for value in samples:
            recorder.record(value)
        assert recorder.percentile(10) <= recorder.percentile(90)
        eps = 1e-9 * max(1.0, recorder.max())  # float-summation slack
        assert recorder.min() - eps <= recorder.mean() <= recorder.max() + eps


class TestThroughputWindow:
    def test_records_bucket_by_window(self):
        window = ThroughputWindow(window_ms=100.0)
        for at in (10, 20, 150, 250, 251):
            window.record(at)
        series = dict(window.series())
        assert series[0.0] == pytest.approx(20.0)  # 2 ops in 0.1s
        assert series[100.0] == pytest.approx(10.0)
        assert series[200.0] == pytest.approx(20.0)

    def test_empty_windows_reported_as_zero(self):
        window = ThroughputWindow(window_ms=100.0)
        window.record(10)
        window.record(350)
        series = window.series()
        rates = [rate for _, rate in series]
        assert rates[1] == 0.0 and rates[2] == 0.0

    def test_total_and_mean_rate(self):
        window = ThroughputWindow(window_ms=100.0)
        for at in range(0, 1000, 10):
            window.record(at)
        assert window.total() == 100
        assert window.mean_rate(1000.0) == pytest.approx(100.0)
        assert window.mean_rate(0) == 0.0

    def test_empty_series(self):
        assert ThroughputWindow().series() == []


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(
            "Title", ["name", "value"], [["alpha", 1.0], ["b", 123456.0]]
        )
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_nan_renders_as_dnf_dash(self):
        out = render_table("t", ["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_none_renders_as_dash(self):
        out = render_table("t", ["x"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_float_formatting(self):
        out = render_table("t", ["x"], [[0.123456], [12.3], [1234.5]])
        assert "0.12" in out
        assert "12.3" in out
        assert "1,234" in out or "1234" in out

    def test_empty_rows(self):
        out = render_table("t", ["a", "b"], [])
        assert "a" in out and "b" in out


class TestRenderSeries:
    def test_contains_legend_and_symbols(self):
        out = render_series(
            "chart",
            {"sys-a": [(0, 10), (100, 20)], "sys-b": [(0, 5), (100, 15)]},
        )
        assert "sys-a" in out and "sys-b" in out
        assert "o" in out

    def test_empty_series(self):
        assert "(no data)" in render_series("chart", {})
