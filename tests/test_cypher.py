"""Tests for the Cypher parser and executor through GraphDatabase."""

import pytest

from repro.graphdb import GraphDatabase
from repro.graphdb.cypher import CypherParseError, parse
from repro.graphdb.cypher import ast
from repro.graphdb.cypher.executor import CypherRuntimeError


class TestParser:
    def test_match_return(self):
        q = parse("MATCH (p:Person {id: $id}) RETURN p.name")
        match = q.clauses[0]
        node = match.patterns[0].nodes[0]
        assert node.var == "p"
        assert node.labels == ("Person",)
        assert node.props[0][0] == "id"
        assert q.returns.items[0].expr == ast.PropAccess("p", "name")

    def test_directions(self):
        q = parse("MATCH (a)-[:X]->(b)<-[:Y]-(c)-[:Z]-(d) RETURN a.id")
        rels = q.clauses[0].patterns[0].rels
        assert [r.direction for r in rels] == ["out", "in", "both"]

    def test_var_length(self):
        q = parse("MATCH (a)-[:KNOWS*1..2]-(b) RETURN b.id")
        rel = q.clauses[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, 2)

    def test_var_length_unbounded(self):
        q = parse("MATCH (a)-[:KNOWS*]-(b) RETURN b.id")
        rel = q.clauses[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, -1)

    def test_var_length_exact(self):
        q = parse("MATCH (a)-[:KNOWS*2]-(b) RETURN b.id")
        rel = q.clauses[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (2, 2)

    def test_shortest_path(self):
        q = parse(
            "MATCH p = shortestPath((a:Person {id:$a})-[:KNOWS*]-"
            "(b:Person {id:$b})) RETURN length(p)"
        )
        pattern = q.clauses[0].patterns[0]
        assert pattern.shortest
        assert pattern.assign_var == "p"

    def test_create(self):
        q = parse("CREATE (p:Person {id: 1, name: 'bob'})")
        assert q.returns is None
        node = q.clauses[0].patterns[0].nodes[0]
        assert dict(node.props)["name"] == ast.Literal("bob")

    def test_match_create(self):
        q = parse(
            "MATCH (a:Person {id:$a}), (b:Person {id:$b}) "
            "CREATE (a)-[:KNOWS {since: $d}]->(b)"
        )
        assert len(q.clauses) == 2

    def test_return_modifiers(self):
        q = parse(
            "MATCH (p:Person) RETURN DISTINCT p.name AS name "
            "ORDER BY name DESC LIMIT 3"
        )
        assert q.returns.distinct
        assert q.returns.limit == 3
        assert q.returns.order_by[0].descending

    def test_count_star(self):
        q = parse("MATCH (p:Person) RETURN count(*)")
        assert q.returns.items[0].expr.star

    def test_where_comparison(self):
        q = parse("MATCH (p:Person) WHERE p.age >= 18 AND p.id <> $me RETURN p.id")
        assert q.clauses[0].where.op == "AND"

    def test_empty_rejected(self):
        with pytest.raises(CypherParseError):
            parse("")

    def test_garbage_rejected(self):
        with pytest.raises(CypherParseError):
            parse("MATCH (p RETURN p")


@pytest.fixture()
def db():
    g = GraphDatabase()
    g.create_index("Person", "id")
    g.create_index("Post", "id")
    people = {
        1: "alice", 2: "bob", 3: "carol", 4: "dave", 5: "erin", 7: "zed",
    }
    for pid, name in people.items():
        g.execute(
            "CREATE (p:Person {id: $id, name: $name, age: $age})",
            {"id": pid, "name": name, "age": 20 + pid},
        )
    for a, b, since in [(1, 2, 2010), (2, 3, 2011), (3, 4, 2012), (1, 5, 2013)]:
        g.execute(
            "MATCH (a:Person {id:$a}), (b:Person {id:$b}) "
            "CREATE (a)-[:KNOWS {since: $since}]->(b)",
            {"a": a, "b": b, "since": since},
        )
    g.execute(
        "MATCH (p:Person {id: 2}) CREATE (m:Post {id: 100, content: 'hi'})"
        "-[:HAS_CREATOR]->(p)"
    )
    return g


class TestExecutor:
    def test_point_lookup(self, db):
        rows = db.execute(
            "MATCH (p:Person {id: $id}) RETURN p.name, p.age", {"id": 3}
        )
        assert rows == [("carol", 23)]

    def test_lookup_missing(self, db):
        assert db.execute(
            "MATCH (p:Person {id: $id}) RETURN p.name", {"id": 999}
        ) == []

    def test_one_hop_both_directions(self, db):
        rows = db.execute(
            "MATCH (p:Person {id: $id})-[:KNOWS]-(f:Person) "
            "RETURN f.name ORDER BY f.name",
            {"id": 1},
        )
        assert rows == [("bob",), ("erin",)]

    def test_one_hop_directed(self, db):
        rows = db.execute(
            "MATCH (p:Person {id: $id})-[:KNOWS]->(f:Person) RETURN f.name",
            {"id": 2},
        )
        assert rows == [("carol",)]

    def test_two_hop_distinct(self, db):
        rows = db.execute(
            "MATCH (p:Person {id: $id})-[:KNOWS]-(f)-[:KNOWS]-(fof:Person) "
            "WHERE fof.id <> $id RETURN DISTINCT fof.name",
            {"id": 1},
        )
        assert sorted(rows) == [("carol",)]

    def test_var_length_two_hops(self, db):
        rows = db.execute(
            "MATCH (p:Person {id: $id})-[:KNOWS*1..2]-(f:Person) "
            "WHERE f.id <> $id RETURN DISTINCT f.name ORDER BY f.name",
            {"id": 1},
        )
        assert rows == [("bob",), ("carol",), ("erin",)]

    def test_rel_property_access(self, db):
        rows = db.execute(
            "MATCH (a:Person {id:1})-[k:KNOWS]-(b:Person {id:2}) "
            "RETURN k.since"
        )
        assert rows == [(2010,)]

    def test_rel_property_filter(self, db):
        rows = db.execute(
            "MATCH (a:Person {id:1})-[k:KNOWS]-(f) WHERE k.since > 2012 "
            "RETURN f.name"
        )
        assert rows == [("erin",)]

    def test_shortest_path_length(self, db):
        rows = db.execute(
            "MATCH p = shortestPath((a:Person {id:$a})-[:KNOWS*]-"
            "(b:Person {id:$b})) RETURN length(p)",
            {"a": 1, "b": 4},
        )
        assert rows == [(3,)]

    def test_shortest_path_unreachable(self, db):
        rows = db.execute(
            "MATCH p = shortestPath((a:Person {id:$a})-[:KNOWS*]-"
            "(b:Person {id:$b})) RETURN length(p)",
            {"a": 1, "b": 7},
        )
        assert rows == []

    def test_shortest_path_same_node(self, db):
        rows = db.execute(
            "MATCH p = shortestPath((a:Person {id:1})-[:KNOWS*]-"
            "(b:Person {id:1})) RETURN length(p)"
        )
        assert rows == [(0,)]

    def test_count_aggregate(self, db):
        rows = db.execute("MATCH (p:Person) RETURN count(*)")
        assert rows == [(6,)]

    def test_implicit_grouping(self, db):
        db.execute(
            "MATCH (p:Person {id: 3}) CREATE (m:Post {id: 101})"
            "-[:HAS_CREATOR]->(p)"
        )
        rows = db.execute(
            "MATCH (m:Post)-[:HAS_CREATOR]->(p:Person) "
            "RETURN p.name, count(*) AS posts ORDER BY posts DESC, p.name"
        )
        assert rows == [("bob", 1), ("carol", 1)]

    def test_min_max(self, db):
        rows = db.execute("MATCH (p:Person) RETURN min(p.age), max(p.age)")
        assert rows == [(21, 27)]

    def test_create_node_visible(self, db):
        db.execute("CREATE (p:Person {id: 50, name: 'new'})")
        rows = db.execute("MATCH (p:Person {id: 50}) RETURN p.name")
        assert rows == [("new",)]

    def test_create_rel_between_matched(self, db):
        db.execute(
            "MATCH (a:Person {id:4}), (b:Person {id:5}) "
            "CREATE (a)-[:KNOWS {since: 2020}]->(b)"
        )
        rows = db.execute(
            "MATCH (a:Person {id:4})-[:KNOWS]-(f) RETURN f.name ORDER BY f.name"
        )
        assert rows == [("carol",), ("erin",)]

    def test_set_property(self, db):
        db.execute(
            "MATCH (p:Person {id: 1}) SET p.age = 99", {}
        )
        assert db.execute("MATCH (p:Person {id:1}) RETURN p.age") == [(99,)]

    def test_optional_match(self, db):
        rows = db.execute(
            "MATCH (p:Person {id: 7}) "
            "OPTIONAL MATCH (p)-[:KNOWS]-(f:Person) RETURN p.name, f.name"
        )
        assert rows == [("zed", None)]

    def test_cartesian_match(self, db):
        rows = db.execute(
            "MATCH (a:Person {id:1}), (b:Person {id:2}) RETURN a.name, b.name"
        )
        assert rows == [("alice", "bob")]

    def test_statement_cache(self, db):
        before = db.statements_executed
        db.execute("MATCH (p:Person {id:1}) RETURN p.name")
        db.execute("MATCH (p:Person {id:1}) RETURN p.name")
        assert db.statements_executed == before + 2
        assert len(db._stmt_cache) >= 1

    def test_missing_param_rejected(self, db):
        with pytest.raises(CypherRuntimeError):
            db.execute("MATCH (p:Person {id: $nope}) RETURN p.name", {})

    def test_wal_and_dirty_tracking(self, db):
        dirty_before = db.dirty_records
        fsync_before = db.wal.fsync_count
        db.execute("CREATE (p:Person {id: 60, name: 'w'})")
        assert db.dirty_records == dirty_before + 1
        assert db.wal.fsync_count == fsync_before + 1
        flushed = db.checkpoint()
        assert flushed == dirty_before + 1
        assert db.dirty_records == 0
