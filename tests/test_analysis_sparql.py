"""The SPARQL walker: clean built-in catalog, seeded-defect detection."""

from repro.analysis import analyze_sparql
from repro.core.connectors.sparql import SPARQL_QUERIES


def codes(queries, operation="test"):
    return [d.code for d in analyze_sparql(operation, queries).diagnostics]


class TestBuiltinCatalog:
    def test_every_operation_is_clean(self):
        for operation, queries in SPARQL_QUERIES.items():
            result = analyze_sparql(operation, queries)
            assert result.diagnostics == [], (
                operation,
                [str(d) for d in result.diagnostics],
            )

    def test_one_hop_footprint(self):
        result = analyze_sparql("one_hop", SPARQL_QUERIES["one_hop"])
        assert "knows" in result.footprint
        assert "person" in result.footprint


class TestMutations:
    def test_unknown_class(self):
        assert codes(
            ("SELECT ?p WHERE { ?p rdf:type snb:Persn . "
             "?p snb:id $id }",)
        ) == ["QA101"]

    def test_unknown_predicate(self):
        assert codes(
            ("SELECT ?x WHERE { ?p snb:id $id . ?p snb:nickname ?x }",)
        ) == ["QA102"]

    def test_parse_error(self):
        assert codes(("SELECT WHERE {",)) == ["QA105"]

    def test_unbound_variable_in_select(self):
        assert codes(
            ("SELECT ?ghost WHERE { ?p snb:id $id }",)
        ) == ["QA107"]

    def test_unbound_variable_in_order_by(self):
        assert codes(
            ("SELECT ?p WHERE { ?p snb:id $id } ORDER BY ?ghost",)
        ) == ["QA107"]

    def test_wrong_typed_literal_object(self):
        # firstName is declared str; 42 is an int literal
        assert codes(
            ('SELECT ?p WHERE { ?p snb:id $id . ?p snb:firstName 42 }',)
        ) == ["QA201"]

    def test_wrong_typed_filter_comparison(self):
        assert codes(
            ('SELECT ?fn WHERE { ?p snb:id $id . '
             '?p snb:firstName ?fn . FILTER(?fn = 42) }',)
        ) == ["QA201"]

    def test_contradictory_narrowing_is_an_endpoint_mismatch(self):
        # containerOf makes ?m a post; knows requires a person subject
        assert "QA202" in codes(
            ("SELECT ?x WHERE { ?f snb:containerOf ?m . "
             "?m snb:knows ?x . ?f snb:id $id }",)
        )

    def test_cartesian_product(self):
        assert codes(
            ("SELECT ?a ?b WHERE { ?a snb:knows ?x . "
             "?b snb:hasCreator ?y }",)
        ) == ["QA301"]

    def test_param_anchored_groups_are_fine(self):
        assert codes(
            ("SELECT ?a ?b WHERE { ?a snb:id $x . ?b snb:id $y }",)
        ) == []
