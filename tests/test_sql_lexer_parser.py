"""Tests for the SQL lexer and parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational.sql import SqlLexError, SqlParseError, parse, tokenize
from repro.relational.sql import ast


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert [t.value for t in tokens[:-1]] == ["select"] * 3

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Person_Name")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "Person_Name"

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.5 and isinstance(tokens[1].value, float)

    def test_strings_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("= <> != <= >= < >")
        values = [t.value for t in tokens[:-1]]
        assert values == ["=", "<>", "<>", "<=", ">=", "<", ">"]

    def test_comments_skipped(self):
        tokens = tokenize("select -- the rest\n 1")
        assert [t.kind for t in tokens] == ["keyword", "number", "eof"]

    def test_params(self):
        tokens = tokenize("? ?")
        assert [t.kind for t in tokens[:-1]] == ["param", "param"]

    def test_unknown_character(self):
        with pytest.raises(SqlLexError):
            tokenize("select @")


class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT name FROM person")
        assert isinstance(stmt, ast.Select)
        assert stmt.from_table.name == "person"
        assert stmt.items[0].expr == ast.ColumnRef(None, "name")

    def test_select_star(self):
        stmt = parse("SELECT * FROM person")
        assert stmt.items[0].expr == ast.ColumnRef(None, "*")

    def test_qualified_star(self):
        stmt = parse("SELECT p.* FROM person p")
        assert stmt.items[0].expr == ast.ColumnRef("p", "*")

    def test_where_params(self):
        stmt = parse("SELECT id FROM person WHERE id = ? AND age > ?")
        params = []

        def collect(e):
            if isinstance(e, ast.Param):
                params.append(e.index)
            elif isinstance(e, ast.BinaryOp):
                collect(e.left)
                collect(e.right)

        collect(stmt.where)
        assert params == [0, 1]

    def test_join_parsing(self):
        stmt = parse(
            "SELECT p.name FROM person p "
            "JOIN knows k ON k.p1 = p.id "
            "LEFT JOIN city c ON c.id = p.city"
        )
        assert len(stmt.joins) == 2
        assert stmt.joins[0].kind == "inner"
        assert stmt.joins[1].kind == "left"
        assert stmt.joins[1].table.binding == "c"

    def test_inner_join_keyword(self):
        stmt = parse("SELECT a.x FROM t a INNER JOIN u b ON a.x = b.x")
        assert stmt.joins[0].kind == "inner"

    def test_order_limit(self):
        stmt = parse("SELECT id FROM t ORDER BY id DESC, name ASC LIMIT 10")
        assert stmt.limit == 10
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_group_by_count(self):
        stmt = parse("SELECT city, COUNT(*) AS n FROM p GROUP BY city")
        assert stmt.group_by == (ast.ColumnRef(None, "city"),)
        assert stmt.items[1].expr.star
        assert stmt.items[1].alias == "n"

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT city) FROM p")
        assert stmt.items[0].expr.distinct

    def test_in_list(self):
        stmt = parse("SELECT id FROM t WHERE id IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        stmt = parse("SELECT id FROM t WHERE id NOT IN (1)")
        assert stmt.where.negated

    def test_is_null(self):
        stmt = parse("SELECT id FROM t WHERE x IS NULL AND y IS NOT NULL")
        left, right = stmt.where.left, stmt.where.right
        assert isinstance(left, ast.IsNull) and not left.negated
        assert isinstance(right, ast.IsNull) and right.negated

    def test_precedence_or_and(self):
        stmt = parse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus(self):
        stmt = parse("SELECT -x FROM t")
        assert isinstance(stmt.items[0].expr, ast.UnaryOp)

    def test_insert(self):
        stmt = parse("INSERT INTO person VALUES (?, 'bob', NULL, TRUE)")
        assert isinstance(stmt, ast.Insert)
        assert stmt.values[1] == ast.Literal("bob")
        assert stmt.values[2] == ast.Literal(None)
        assert stmt.values[3] == ast.Literal(True)

    def test_update(self):
        stmt = parse("UPDATE person SET name = ?, age = 30 WHERE id = ?")
        assert isinstance(stmt, ast.Update)
        assert stmt.assignments[0][0] == "name"
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM person WHERE id = 1")
        assert isinstance(stmt, ast.Delete)

    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE person (id BIGINT PRIMARY KEY, name TEXT)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].type_name == "text"

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx ON knows (p1) USING HASH")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.method == "hash"

    def test_create_index_unnamed_defaults_btree(self):
        stmt = parse("CREATE INDEX ON knows (p1)")
        assert stmt.name is None
        assert stmt.method == "btree"

    def test_recursive_cte(self):
        stmt = parse(
            "WITH RECURSIVE bfs (node, depth) AS ("
            "  SELECT k.p2, 1 FROM knows k WHERE k.p1 = ?"
            "  UNION"
            "  SELECT k.p2, b.depth + 1 FROM bfs b "
            "    JOIN knows k ON k.p1 = b.node WHERE b.depth < 10"
            ") SELECT MIN(depth) FROM bfs WHERE node = ?"
        )
        assert isinstance(stmt, ast.RecursiveCTE)
        assert stmt.distinct  # UNION without ALL
        assert stmt.columns == ("node", "depth")

    def test_recursive_cte_union_all(self):
        stmt = parse(
            "WITH RECURSIVE r (n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 5"
            ") SELECT n FROM r"
        )
        assert not stmt.distinct

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT 1 FROM t extra garbage here")

    def test_empty_rejected(self):
        with pytest.raises(SqlParseError):
            parse("")

    def test_semicolon_allowed(self):
        parse("SELECT 1;")

    @given(st.integers(-(10**9), 10**9))
    def test_integer_literals_roundtrip(self, n):
        stmt = parse(f"SELECT {n} FROM t" if n >= 0 else f"SELECT ({n}) FROM t")
        expr = stmt.items[0].expr
        if n >= 0:
            assert expr == ast.Literal(n)
        else:
            assert isinstance(expr, ast.UnaryOp)
