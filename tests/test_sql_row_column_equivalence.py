"""Row and columnar storage must be observationally identical.

The Virtuoso-like engine adds vectorized joins and projection pushdown;
none of that may change results.  Same data, same statements, both
engines — every answer must match.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Database

DDL = [
    "CREATE TABLE person (id BIGINT PRIMARY KEY, name TEXT, city TEXT, "
    "age INT)",
    "CREATE TABLE knows (p1 BIGINT, p2 BIGINT, since INT)",
    "CREATE INDEX ON knows (p1) USING HASH",
    "CREATE INDEX ON knows (p2) USING HASH",
]

PEOPLE = [
    (1, "alice", "waterloo", 30),
    (2, "bob", "toronto", 35),
    (3, "carol", "waterloo", 28),
    (4, "dave", None, 41),
    (5, "erin", "toronto", None),
]
EDGES = [(1, 2, 2010), (2, 3, 2011), (3, 4, 2012), (1, 5, 2013), (2, 5, 2014)]

QUERIES = [
    ("SELECT name FROM person WHERE id = ?", (3,)),
    ("SELECT * FROM person WHERE id = ?", (4,)),
    ("SELECT name, age FROM person WHERE city = 'waterloo'", ()),
    ("SELECT p.name FROM knows k JOIN person p ON p.id = k.p2 "
     "WHERE k.p1 = ? ORDER BY p.name", (2,)),
    ("SELECT DISTINCT k2.p2 FROM knows k1 JOIN knows k2 ON k2.p1 = k1.p2 "
     "WHERE k1.p1 = ? AND k2.p2 <> ? ORDER BY k2.p2", (1, 1)),
    ("SELECT city, COUNT(*) AS n FROM person GROUP BY city "
     "ORDER BY n DESC, city", ()),
    ("SELECT MIN(age), MAX(age), SUM(age) FROM person", ()),
    ("SELECT p.name, k.since FROM person p "
     "LEFT JOIN knows k ON k.p1 = p.id ORDER BY p.name, k.since", ()),
    ("SELECT name FROM person WHERE age > 28 AND city IS NOT NULL "
     "ORDER BY name", ()),
    ("SELECT name FROM person WHERE id IN (1, 3, 5) ORDER BY name", ()),
    ("SELECT COUNT(*) FROM knows WHERE since >= 2012", ()),
    ("SELECT p.name FROM person p JOIN knows k ON k.p2 = p.id "
     "JOIN person src ON src.id = k.p1 WHERE src.city = 'waterloo' "
     "ORDER BY p.name", ()),
    ("SELECT name, age * 2 AS doubled FROM person WHERE age IS NOT NULL "
     "ORDER BY doubled DESC LIMIT 2", ()),
]


def build(storage: str) -> Database:
    db = Database(storage)
    for ddl in DDL:
        db.execute(ddl)
    for row in PEOPLE:
        db.execute("INSERT INTO person VALUES (?, ?, ?, ?)", row)
    for a, b, since in EDGES:
        db.execute("INSERT INTO knows VALUES (?, ?, ?)", (a, b, since))
        db.execute("INSERT INTO knows VALUES (?, ?, ?)", (b, a, since))
    return db


@pytest.fixture(scope="module")
def engines():
    return build("row"), build("column")


@pytest.mark.parametrize("query,params", QUERIES, ids=range(len(QUERIES)))
def test_query_equivalence(engines, query, params):
    row_db, col_db = engines
    row_result = row_db.query(query, params)
    col_result = col_db.query(query, params)
    # unordered queries may differ in row order, not content
    if "ORDER BY" in query:
        assert col_result == row_result
    else:
        assert sorted(map(str, col_result)) == sorted(map(str, row_result))


def test_update_equivalence(engines):
    row_db, col_db = engines
    for db in engines:
        db.execute("UPDATE person SET age = 99 WHERE id = 1")
        db.execute("DELETE FROM knows WHERE p1 = 3 AND p2 = 4")
        db.execute("DELETE FROM knows WHERE p1 = 4 AND p2 = 3")
    q = "SELECT p2 FROM knows WHERE p1 = ? ORDER BY p2"
    assert row_db.query(q, (3,)) == col_db.query(q, (3,))
    q = "SELECT age FROM person WHERE id = 1"
    assert row_db.query(q) == col_db.query(q) == [(99,)]


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(0, 50),
            st.sampled_from(["x", "y", "z"]),
            st.one_of(st.none(), st.integers(0, 100)),
        ),
        min_size=1,
        max_size=40,
        unique_by=lambda r: r[0],
    ),
    pivot=st.integers(0, 100),
)
def test_filter_aggregate_property(rows, pivot):
    """Random data, same filters and aggregates on both engines."""
    results = []
    for storage in ("row", "column"):
        db = Database(storage)
        db.execute(
            "CREATE TABLE t (id BIGINT PRIMARY KEY, tag TEXT, v INT)"
        )
        for row in rows:
            db.execute("INSERT INTO t VALUES (?, ?, ?)", row)
        results.append(
            (
                db.query("SELECT COUNT(*), SUM(v) FROM t WHERE v <= ?",
                         (pivot,)),
                db.query(
                    "SELECT tag, COUNT(*) AS n FROM t GROUP BY tag "
                    "ORDER BY tag"
                ),
                db.query("SELECT id FROM t WHERE v IS NULL ORDER BY id"),
            )
        )
    assert results[0] == results[1]
