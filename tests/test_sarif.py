"""SARIF 2.1.0 output, the --diff gate, and baseline hygiene.

The schema URI and version are pinned here: CI uploads the log to code
scanning, and a silent bump would break every consumer at once.
"""

import json

import pytest

from repro.analysis.diagnostics import SourceLocation, make
from repro.analysis.program.callgraph import (
    module_name_for_key,
    sources_from_paths,
)
from repro.analysis.sarif import (
    SARIF_SCHEMA,
    SARIF_VERSION,
    dumps,
    to_sarif,
)
from repro.cli import main

QA806_BAD = '''
class Store:
    def __init__(self):
        self.mvcc = VersionStore("s")
        self._rows = {}

    def insert(self, key, value):
        self.mvcc.stamp(key)
        self._rows[key] = value

    def fetch(self, key):
        return self._rows[key]
'''


@pytest.fixture
def empty_baseline(tmp_path):
    path = tmp_path / "empty_baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": []}))
    return str(path)


def program_diag():
    return make(
        "QA806",
        "raw read",
        SourceLocation("python", "repro.graphdb.store:GraphStore.x"),
    )


def catalog_diag():
    return make(
        "QA302",
        "non-sargable",
        SourceLocation("cypher", "person_profile", 0),
    )


class TestSarifShape:
    def test_schema_and_version_are_pinned(self):
        log = to_sarif([])
        assert log["$schema"] == SARIF_SCHEMA
        assert (
            log["$schema"]
            == "https://json.schemastore.org/sarif-2.1.0.json"
        )
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert len(log["runs"]) == 1

    def test_result_carries_rule_level_and_locations(self):
        run = to_sarif([program_diag()])["runs"][0]
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "QA806"
        ]
        (result,) = run["results"]
        assert result["ruleId"] == "QA806"
        assert result["level"] == "error"
        location = result["locations"][0]
        assert (
            location["logicalLocations"][0]["fullyQualifiedName"]
            == "python:repro.graphdb.store:GraphStore.x[0]"
        )
        assert (
            location["physicalLocation"]["artifactLocation"]["uri"]
            == "src/repro/graphdb/store.py"
        )

    def test_catalog_findings_get_no_physical_location(self):
        run = to_sarif([catalog_diag()])["runs"][0]
        (result,) = run["results"]
        assert result["level"] == "warning"
        assert "physicalLocation" not in result["locations"][0]

    def test_dumps_is_valid_json(self):
        parsed = json.loads(dumps([program_diag(), catalog_diag()]))
        assert len(parsed["runs"][0]["results"]) == 2


class TestCliSarif:
    def test_program_sarif_mode_emits_one_log(
        self, tmp_path, empty_baseline, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text(QA806_BAD)
        exit_code = main([
            "lint", "--program", "--format", "sarif",
            "--paths", str(bad),
            "--baseline", empty_baseline,
        ])
        assert exit_code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["QA806"]

    def test_catalog_sarif_mode_parses(self, capsys):
        main(["lint", "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)
        assert log["$schema"] == SARIF_SCHEMA


class TestDiffAndHygiene:
    def stale_baseline(self, tmp_path, location):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "code": "QA806",
                "location": location,
                "justification": "left over from deleted code",
            }],
        }))
        return str(path)

    def test_unresolvable_entry_fails_the_plain_gate(
        self, tmp_path, capsys
    ):
        clean = tmp_path / "clean.py"
        clean.write_text("def free():\n    return 1\n")
        baseline = self.stale_baseline(
            tmp_path, "repro.gone:Ghost.method"
        )
        exit_code = main([
            "lint", "--program",
            "--paths", str(clean),
            "--baseline", baseline,
        ])
        assert exit_code == 1
        err = capsys.readouterr().err
        assert "no longer resolves" in err
        assert "prune it" in err

    def test_stale_entry_that_still_resolves_also_fails(
        self, tmp_path, capsys
    ):
        fixed = tmp_path / "fixed.py"
        fixed.write_text(QA806_BAD.replace(
            "        return self._rows[key]",
            "        return self.mvcc.read(key, self._rows[key])",
        ))
        module = module_name_for_key(
            next(iter(sources_from_paths([str(fixed)])))
        )
        baseline = self.stale_baseline(
            tmp_path, f"{module}:Store.fetch"
        )
        exit_code = main([
            "lint", "--program",
            "--paths", str(fixed),
            "--baseline", baseline,
        ])
        assert exit_code == 1
        assert "matched no diagnostic" in capsys.readouterr().err

    def test_diff_mode_tolerates_stale_entries(
        self, tmp_path, capsys
    ):
        clean = tmp_path / "clean.py"
        clean.write_text("def free():\n    return 1\n")
        baseline = self.stale_baseline(
            tmp_path, "repro.gone:Ghost.method"
        )
        exit_code = main([
            "lint", "--program", "--diff",
            "--paths", str(clean),
            "--baseline", baseline,
        ])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "note:" in captured.err
        assert "new diagnostic(s) vs. baseline" in captured.out

    def test_diff_mode_still_fails_on_new_findings(
        self, tmp_path, empty_baseline, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text(QA806_BAD)
        exit_code = main([
            "lint", "--program", "--diff",
            "--paths", str(bad),
            "--baseline", empty_baseline,
        ])
        assert exit_code == 1
        assert "QA806" in capsys.readouterr().out

    def test_suppressed_finding_never_refails_in_diff_mode(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_text(QA806_BAD)
        module = module_name_for_key(
            next(iter(sources_from_paths([str(bad)])))
        )
        baseline = tmp_path / "justified.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "code": "QA806",
                "location": f"{module}:Store.fetch",
                "justification": "judged and accepted",
            }],
        }))
        exit_code = main([
            "lint", "--program", "--diff",
            "--paths", str(bad),
            "--baseline", str(baseline),
        ])
        assert exit_code == 0
        assert "0 new diagnostic(s)" in capsys.readouterr().out

    def test_bare_baseline_flag_uses_the_committed_default(
        self, capsys
    ):
        assert main([
            "lint", "--program", "--baseline", "--diff"
        ]) == 0
        assert (
            "0 new diagnostic(s)" in capsys.readouterr().out
        )
