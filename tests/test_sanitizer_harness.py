"""End-to-end tests for ``repro sanitize``.

Two halves of the acceptance criterion:

* clean runs are *silent* — every connector, at write batch 1 and 16,
  produces zero diagnostics under full instrumentation;
* every seeded fault is *caught* — each ``--inject`` mode yields
  exactly the codes its registry entry promises, nothing else.
"""

import json

import pytest

from repro.cli import main
from repro.core import SUT_KEYS
from repro.sanitizer.faults import FAULTS
from repro.sanitizer.harness import run_sanitize
from repro.snb import GeneratorConfig, generate

SMALL = ["--scale-factor", "3", "--scale-divisor", "10000", "--seed", "3"]

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=10000, seed=3)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


def _run(dataset, system, **kwargs):
    kwargs.setdefault("readers", 2)
    kwargs.setdefault("duration_ms", 100.0)
    return run_sanitize(system, dataset, **kwargs)


class TestCleanRunsAreSilent:
    @pytest.mark.parametrize("system", SUT_KEYS)
    def test_batch_1(self, dataset, system):
        report = _run(dataset, system)
        assert report.diagnostics == [], [
            str(d) for d in report.diagnostics
        ]
        assert report.ok
        assert report.event_count > 0
        assert report.updates_applied > 0

    @pytest.mark.parametrize("system", ["postgres-sql", "neo4j-cypher"])
    def test_batch_16(self, dataset, system):
        report = _run(dataset, system, write_batch_size=16)
        assert report.diagnostics == [], [
            str(d) for d in report.diagnostics
        ]
        assert report.write_batch_size == 16


#: one representative system per (mode, target kind) dispatch path
MATRIX = [
    ("unlocked-write", "postgres-sql"),
    ("unlocked-write", "neo4j-cypher"),
    ("unlocked-write", "virtuoso-sparql"),
    ("unlocked-write", "titan-b"),
    ("lock-across-commit", "postgres-sql"),
    ("lock-across-commit", "sqlg"),
    ("unsorted-locks", "postgres-sql"),
    ("lost-update", "postgres-sql"),
    ("non-repeatable-read", "postgres-sql"),
    ("write-skew", "virtuoso-sql"),
    ("dangling-edge", "neo4j-cypher"),
    ("dangling-edge", "postgres-sql"),
    ("dangling-edge", "titan-c"),
    ("index-skew", "virtuoso-sparql"),
    ("index-skew", "neo4j-gremlin"),
    ("skip-invalidation", "neo4j-cypher"),
    ("skip-fsync", "neo4j-cypher"),
    ("skip-fsync", "virtuoso-sql"),
]


class TestInjectedFaultsAreCaught:
    @pytest.mark.parametrize("mode,system", MATRIX)
    def test_exactly_the_expected_codes(self, dataset, mode, system):
        report = _run(dataset, system, inject_mode=mode)
        assert report.observed_codes == FAULTS[mode].expected, [
            str(d) for d in report.diagnostics
        ]
        assert report.ok

    def test_unknown_mode_is_rejected(self, dataset):
        with pytest.raises(ValueError, match="unknown fault mode"):
            _run(dataset, "postgres-sql", inject_mode="melt-the-disk")

    def test_inapplicable_mode_is_rejected(self, dataset):
        # the in-memory gremlin connector has no WAL to lose writes from
        with pytest.raises(ValueError, match="not applicable"):
            _run(dataset, "neo4j-gremlin", inject_mode="skip-fsync")


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert main(
            ["sanitize", *SMALL, "--systems", "postgres-sql",
             "--readers", "2", "--duration-ms", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "postgres-sql: ok" in out

    def test_injected_run_reports_and_exits_zero(self, capsys):
        assert main(
            ["sanitize", *SMALL, "--systems", "neo4j-cypher",
             "--readers", "2", "--duration-ms", "100",
             "--inject", "dangling-edge"]
        ) == 0
        out = capsys.readouterr().out
        assert "QA701" in out
        assert "neo4j-cypher: ok" in out

    def test_inapplicable_inject_is_skipped_and_fails(self, capsys):
        assert main(
            ["sanitize", *SMALL, "--systems", "neo4j-gremlin",
             "--readers", "2", "--duration-ms", "100",
             "--inject", "skip-fsync"]
        ) == 1
        assert "not applicable" in capsys.readouterr().out

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["sanitize", *SMALL, "--systems", "oracle"])


class TestJsonSchema:
    """The JSON line format is an interface: CI parses it."""

    #: exactly the keys ``Diagnostic.to_dict`` promises — additions or
    #: renames must be deliberate (update CI consumers alongside this)
    KEYS = {
        "code", "name", "severity", "dialect", "operation",
        "query_index", "message",
    }

    def test_to_dict_keys_are_pinned(self):
        from repro.analysis.diagnostics import (
            CODES,
            SourceLocation,
            make,
        )

        diagnostic = make(
            "QA601", "race", SourceLocation("runtime", "race-detector")
        )
        record = diagnostic.to_dict()
        assert set(record) == self.KEYS
        assert record["code"] in CODES
        assert isinstance(record["severity"], str)
        assert isinstance(record["query_index"], int)

    def test_lint_json_mode_emits_nothing_when_clean(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_sanitize_json_rows_add_the_system_key(self, capsys):
        assert main(
            ["sanitize", *SMALL, "--systems", "virtuoso-sparql",
             "--readers", "2", "--duration-ms", "100",
             "--inject", "index-skew", "--format", "json"]
        ) == 0
        out = capsys.readouterr().out
        rows = [
            json.loads(line)
            for line in out.splitlines()
            if line.startswith("{")
        ]
        assert rows, out
        for row in rows:
            assert set(row) == self.KEYS | {"system"}
            assert row["system"] == "virtuoso-sparql"
        assert any(row["code"] == "QA702" for row in rows)
