"""Unit tests for the Titan provider's KV encoding and backends."""

import pytest

from repro.simclock import meter
from repro.titan import titan_berkeley, titan_cassandra
from repro.titan.graph import _encode_value, _pad


class TestKeyEncoding:
    def test_pad_preserves_numeric_order(self):
        values = [0, 9, 10, 99, 1_000_000_007, 7_000_000_000]
        padded = [_pad(v) for v in values]
        assert padded == sorted(padded)

    def test_encode_value_ints_order(self):
        values = [0, 5, 42, 1000]
        encoded = [_encode_value(v) for v in values]
        assert encoded == sorted(encoded)

    def test_encode_value_strings_prefix(self):
        assert _encode_value("abc").startswith("s")
        assert _encode_value(7).startswith("n")


@pytest.fixture(params=["cassandra", "berkeley"])
def provider(request):
    p = titan_cassandra() if request.param == "cassandra" else titan_berkeley()
    p.create_index("person", "id")
    return p


class TestTitanProvider:
    def test_vertex_roundtrip(self, provider):
        vid = provider.create_vertex("person", {"id": 7, "name": "x"})
        assert vid == 7
        assert provider.vertex_label(7) == "person"
        assert provider.vertex_props(7) == {"id": 7, "name": "x"}

    def test_vertex_requires_id(self, provider):
        with pytest.raises(ValueError):
            provider.create_vertex("person", {"name": "anon"})

    def test_index_lookup(self, provider):
        provider.create_vertex("person", {"id": 5})
        assert provider.lookup("person", "id", 5) == [5]
        assert provider.lookup("person", "id", 6) == []

    def test_lookup_without_index_rejected(self, provider):
        with pytest.raises(KeyError):
            provider.lookup("forum", "id", 1)

    def test_edges_stored_both_directions(self, provider):
        provider.create_vertex("person", {"id": 1})
        provider.create_vertex("person", {"id": 2})
        eid = provider.create_edge("knows", 1, 2, {"since": 2010})
        out = list(provider.adjacent(1, "out", "knows"))
        into = list(provider.adjacent(2, "in", "knows"))
        assert [o for _, o in out] == [2]
        assert [o for _, o in into] == [1]
        assert provider.edge_props(eid) == {"since": 2010}
        assert provider.edge_endpoints(eid) == (1, 2)

    def test_both_direction_single_labelled_scan(self, provider):
        provider.create_vertex("person", {"id": 1})
        provider.create_vertex("person", {"id": 2})
        provider.create_vertex("person", {"id": 3})
        provider.create_edge("knows", 1, 2, {})
        provider.create_edge("knows", 3, 1, {})
        both = sorted(o for _, o in provider.adjacent(1, "both", "knows"))
        assert both == [2, 3]

    def test_unlabelled_adjacency_scans_whole_row(self, provider):
        provider.create_vertex("person", {"id": 1})
        provider.create_vertex("post", {"id": 100})
        provider.create_vertex("person", {"id": 2})
        provider.create_edge("likes", 1, 100, {})
        provider.create_edge("knows", 1, 2, {})
        all_neighbours = sorted(o for _, o in provider.adjacent(1, "both", None))
        assert all_neighbours == [2, 100]

    def test_set_vertex_prop_invalidates_cache(self, provider):
        provider.create_vertex("person", {"id": 1, "age": 30})
        assert provider.vertex_props(1)["age"] == 30  # warm the tx cache
        provider.set_vertex_prop(1, "age", 31)
        assert provider.vertex_props(1)["age"] == 31

    def test_tx_cache_avoids_backend_reads(self):
        provider = titan_cassandra()
        provider.create_index("person", "id")
        provider.create_vertex("person", {"id": 1, "name": "x"})
        provider.vertex_props(1)  # populate cache
        with meter() as ledger:
            provider.vertex_props(1)
            provider.vertex_props(1)
        assert ledger.counters.get("backend_rtt", 0) == 0


class TestBackendDifferences:
    def test_cassandra_is_remote(self):
        assert titan_cassandra().remote_backend
        assert titan_cassandra().requires_locking
        assert not titan_cassandra().serializes_writers

    def test_berkeley_is_embedded_and_serialized(self):
        p = titan_berkeley()
        assert not p.remote_backend
        assert not p.requires_locking
        assert p.serializes_writers

    def test_locking_charge_only_on_cassandra(self):
        for factory, expect_lock in (
            (titan_cassandra, True),
            (titan_berkeley, False),
        ):
            provider = factory()
            provider.create_index("person", "id")
            with meter() as ledger:
                provider.create_vertex("person", {"id": 1})
            assert (ledger.counters.get("lock_rtt", 0) > 0) is expect_lock
