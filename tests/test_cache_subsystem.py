"""The shared caching subsystem: LRU bookkeeping, epoch and
dependency-set invalidation, the engines' uniform ``cache_stats()``
facades, the store's neighborhood cache, and WAL group commit."""

import pytest

from repro.cache import (
    CacheStats,
    DependencyTrackingCache,
    EpochKeyedCache,
    LRUCache,
)
from repro.graphdb import Direction, GraphDatabase, GraphStore
from repro.rdf import RdfDatabase
from repro.relational import Database
from repro.simclock import meter
from repro.storage.wal import WriteAheadLog
from repro.tinkerpop import Graph, GremlinServer, TinkerGraphProvider


class TestLRUCache:
    def test_hit_and_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # touch: "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_peek_does_not_touch_counters_or_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert (cache.hits, cache.misses) == (0, 0)
        cache.put("c", 3)  # "a" was not touched, so it is evicted
        assert "a" not in cache

    def test_invalidate(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.invalidate_all() == 1
        assert cache.invalidations == 2
        assert len(cache) == 0

    def test_stats_snapshot(self):
        cache = LRUCache(8, name="unit")
        cache.put("k", "v")
        cache.get("k")
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert stats.name == "unit"
        assert (stats.size, stats.capacity) == (1, 8)
        assert stats.hits == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestEpochKeyedCache:
    def test_store_and_lookup(self):
        cache = EpochKeyedCache(4)
        assert cache.lookup("q") is None
        cache.store("q", "plan")
        assert cache.lookup("q") == "plan"

    def test_bump_epoch_invalidates_everything(self):
        cache = EpochKeyedCache(4)
        cache.store("q", "plan")
        cache.bump_epoch()
        assert cache.lookup("q") is None
        assert cache == {}

    def test_stale_stamp_counts_as_a_miss(self):
        cache = EpochKeyedCache(4)
        cache.store("q", "plan")
        cache.epoch += 1  # epoch moved without an explicit clear
        assert cache.lookup("q") is None
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == 1  # the stale lookup, not a raw hit

    def test_mapping_protocol_exposes_epoch_value_pairs(self):
        cache = EpochKeyedCache(4)
        cache.store("q", "plan")
        assert "q" in cache
        assert cache["q"] == (cache.epoch, "plan")


class TestDependencyTrackingCache:
    def test_member_invalidation_is_exact(self):
        cache = DependencyTrackingCache(16)
        cache.put("n1", "hood-1", deps=(1, 2))
        cache.put("n3", "hood-3", deps=(3,))
        assert cache.invalidate_members((2,)) == 1
        assert cache.get("n1") is None
        assert cache.get("n3") == "hood-3"

    def test_unrelated_member_invalidates_nothing(self):
        cache = DependencyTrackingCache(16)
        cache.put("n1", "hood-1", deps=(1,))
        assert cache.invalidate_members((99,)) == 0
        assert cache.get("n1") == "hood-1"

    def test_eviction_unlinks_dependencies(self):
        cache = DependencyTrackingCache(1)
        cache.put("n1", "hood-1", deps=(1,))
        cache.put("n2", "hood-2", deps=(2,))  # evicts n1
        # invalidating member 1 must not resurrect or double-count n1
        assert cache.invalidate_members((1,)) == 0
        assert cache.get("n2") == "hood-2"

    def test_invalidate_all_is_the_bulk_fallback(self):
        cache = DependencyTrackingCache(16)
        cache.put("n1", "x", deps=(1,))
        cache.put("n2", "y", deps=(2,))
        assert cache.invalidate_all() == 2
        assert cache.invalidate_members((1, 2)) == 0


@pytest.fixture()
def friends_store():
    """a - b - c - d chain plus an index, neighborhood cache enabled."""
    store = GraphStore()
    ids = [store.create_node(["Person"], {"id": i}) for i in range(4)]
    for left, right in zip(ids, ids[1:]):
        store.create_rel("KNOWS", left, right)
    store.enable_neighborhood_cache()
    return store, ids


class TestNeighborhoodCache:
    def test_disabled_store_returns_lazy_iterator(self):
        store = GraphStore()
        a = store.create_node(["Person"], {"id": 1})
        b = store.create_node(["Person"], {"id": 2})
        store.create_rel("KNOWS", a, b)
        result = store.neighbors(a)
        assert not isinstance(result, (list, tuple))  # chain walk, lazy
        assert [other for _, other in result] == [b]
        assert store.cache_stats() == []

    def test_warm_read_charges_cache_hit_not_record_reads(self, friends_store):
        store, ids = friends_store
        cold = tuple(store.neighbors(ids[1]))
        with meter() as ledger:
            warm = tuple(store.neighbors(ids[1]))
        assert warm == cold
        assert ledger.counters.get("cache_hit") == 1
        assert "record_read" not in ledger.counters

    def test_edge_insert_invalidates_only_endpoint_neighborhoods(
        self, friends_store
    ):
        store, ids = friends_store
        for nid in ids:
            tuple(store.neighbors(nid))  # populate all four entries
        before = store.cache_stats()[0]
        store.create_rel("KNOWS", ids[0], ids[3])
        after = store.cache_stats()[0]
        assert after.invalidations - before.invalidations == 2
        # untouched nodes stay warm, endpoints recompute correctly
        with meter() as ledger:
            tuple(store.neighbors(ids[1]))
        assert ledger.counters.get("cache_hit") == 1
        assert {o for _, o in store.neighbors(ids[0])} == {ids[1], ids[3]}

    def test_friends_of_friends_cached_and_correct(self, friends_store):
        store, ids = friends_store
        cold = store.friends_of_friends(ids[0])
        assert cold == (ids[2],)
        with meter() as ledger:
            warm = store.friends_of_friends(ids[0])
        assert warm == cold
        assert ledger.counters.get("cache_hit") == 1

    def test_two_hop_entry_invalidated_by_a_friends_new_edge(
        self, friends_store
    ):
        store, ids = friends_store
        assert store.friends_of_friends(ids[0]) == (ids[2],)
        # new edge at b (a's friend) changes a's two-hop frontier
        e = store.create_node(["Person"], {"id": 9})
        store.create_rel("KNOWS", ids[1], e)
        assert store.friends_of_friends(ids[0]) == tuple(
            sorted((ids[2], e))
        )

    def test_delete_node_invalidates_its_neighborhood(self, friends_store):
        store, ids = friends_store
        extra = store.create_node(["Person"], {"id": 8})
        tuple(store.neighbors(extra))
        before = store.cache_stats()[0].invalidations
        store.delete_node(extra)
        assert store.cache_stats()[0].invalidations > before

    def test_invalidate_caches_is_the_epoch_fallback(self, friends_store):
        store, ids = friends_store
        tuple(store.neighbors(ids[0]))
        store.invalidate_caches()
        with meter() as ledger:
            tuple(store.neighbors(ids[0]))
        assert "cache_hit" not in ledger.counters


class TestWalGroupCommit:
    def test_group_defers_to_one_fsync(self):
        wal = WriteAheadLog()
        with wal.group():
            for i in range(5):
                wal.append(b"rec")
                wal.commit()
        assert wal.fsync_count == 1

    def test_nested_groups_join_the_outermost(self):
        wal = WriteAheadLog()
        with wal.group():
            wal.append(b"a")
            wal.commit()
            with wal.group():
                wal.append(b"b")
                wal.commit()
            wal.append(b"c")
            wal.commit()
        assert wal.fsync_count == 1

    def test_commits_outside_a_group_fsync_each(self):
        wal = WriteAheadLog()
        wal.append(b"a")
        wal.commit()
        wal.append(b"b")
        wal.commit()
        assert wal.fsync_count == 2


class TestEngineFacades:
    def test_sql_engine_reports_statement_and_plan_caches(self):
        db = Database("row")
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (?)", (1,))
        db.query("SELECT id FROM t", ())
        db.query("SELECT id FROM t", ())
        names = {s.name for s in db.cache_stats()}
        assert names == {"sql-statements", "sql-plans", "sql-closures"}
        stats = {s.name: s for s in db.cache_stats()}
        # compiled mode (the default): warm statements hit the closure
        # cache; the plan was still built (and cached) exactly once
        assert stats["sql-closures"].hits >= 1
        assert stats["sql-plans"].misses == 1

    def test_sql_interpreted_mode_hits_plan_cache(self):
        db = Database("row", execution_mode="interpreted")
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (?)", (1,))
        db.query("SELECT id FROM t", ())
        db.query("SELECT id FROM t", ())
        stats = {s.name: s for s in db.cache_stats()}
        assert stats["sql-plans"].hits >= 1
        assert stats["sql-closures"].hits == 0

    def test_cypher_engine_reports_plan_cache(self):
        db = GraphDatabase()
        db.execute("CREATE (:Person {id: 1})")
        db.execute("MATCH (p:Person) RETURN p.id")
        db.execute("MATCH (p:Person) RETURN p.id")
        stats = {s.name: s for s in db.cache_stats()}
        assert stats["cypher-plans"].hits >= 1

    def test_cypher_create_index_invalidates_cached_plans(self):
        db = GraphDatabase()
        db.execute("CREATE (:Person {id: 1})")
        db.execute("MATCH (p:Person) WHERE p.id = 1 RETURN p.id")
        epoch = db._stmt_cache.epoch
        db.create_index("Person", "id")
        assert db._stmt_cache.epoch > epoch
        assert len(db._stmt_cache) == 0
        # the replanned statement can now use the index, same answer
        rows = db.execute("MATCH (p:Person) WHERE p.id = 1 RETURN p.id")
        assert rows == [(1,)]

    def test_cypher_ddl_analyze_bumps_invalidation_counters(self):
        """The BENCH_cache blind spot: DDL/ANALYZE must surface as
        ``invalidations`` on the plan AND closure caches, not silently
        reset the epoch while the counters stay at zero."""
        db = GraphDatabase()
        db.execute("CREATE (:Person {id: 1})")
        db.execute("MATCH (p:Person) WHERE p.id = 1 RETURN p.id")
        before = {s.name: s.invalidations for s in db.cache_stats()}
        db.create_index("Person", "id")  # DDL path
        db.analyze()  # maintenance path
        after = {s.name: s.invalidations for s in db.cache_stats()}
        assert after["cypher-plans"] > before["cypher-plans"]
        assert after["cypher-closures"] > before["cypher-closures"]

    def test_sparql_engine_reports_statement_cache(self):
        # compiled mode (the default): the warm path resolves straight
        # to the compiled closure; parse happened exactly once
        db = RdfDatabase()
        db.store.add("sn:p1", "snb:firstName", "Alice")
        q = "SELECT ?n WHERE { ?p snb:firstName ?n }"
        db.execute(q)
        db.execute(q)
        stats = {s.name: s for s in db.cache_stats()}
        assert stats["sparql-closures"].hits >= 1
        assert stats["sparql-statements"].misses == 1

    def test_sparql_interpreted_mode_hits_statement_cache(self):
        db = RdfDatabase(execution_mode="interpreted")
        db.store.add("sn:p1", "snb:firstName", "Alice")
        q = "SELECT ?n WHERE { ?p snb:firstName ?n }"
        db.execute(q)
        db.execute(q)
        stats = {s.name: s for s in db.cache_stats()}
        assert stats["sparql-statements"].hits >= 1
        assert stats["sparql-closures"].hits == 0

    def test_all_facades_return_cachestats_rows(self):
        for facade in (Database("row"), GraphDatabase(), RdfDatabase()):
            for row in facade.cache_stats():
                assert isinstance(row, CacheStats)


class TestGremlinScriptCache:
    # the legacy script cache is an interpreted-mode concern: compiled
    # mode subsumes it with the closure cache (tested below)
    def _server(self):
        provider = TinkerGraphProvider()
        Graph(provider).traversal().addV("person").property(
            "id", 1
        ).iterate()
        return GremlinServer(provider, execution_mode="interpreted")

    def test_keyed_resubmit_skips_compilation(self):
        server = self._server()
        server.enable_script_cache()
        build = lambda g: g.V().has("person", "id", 1)  # noqa: E731
        server.submit(build, cache_key="point_lookup")
        with meter() as ledger:
            results = server.submit(build, cache_key="point_lookup")
        assert results  # evaluation still ran
        assert "gremlin_compile" not in ledger.counters
        assert ledger.counters.get("cache_hit") == 1
        assert server.cache_stats()[0].hits == 1

    def test_keyless_submit_always_compiles(self):
        server = self._server()
        server.enable_script_cache()
        for _ in range(2):
            with meter() as ledger:
                server.submit(lambda g: g.V().has("person", "id", 1))
            assert ledger.counters["gremlin_compile"] == 1

    def test_cache_off_by_default(self):
        server = self._server()
        assert server.cache_stats() == []
        for _ in range(2):
            with meter() as ledger:
                server.submit(
                    lambda g: g.V().has("person", "id", 1),
                    cache_key="point_lookup",
                )
            assert ledger.counters["gremlin_compile"] == 1


class TestGremlinClosureCache:
    def _server(self):
        provider = TinkerGraphProvider()
        Graph(provider).traversal().addV("person").property(
            "id", 1
        ).iterate()
        return GremlinServer(provider)  # compiled by default

    def test_warm_submit_skips_script_evaluation(self):
        server = self._server()
        build = lambda g: g.V().has("person", "id", 1).values("id")  # noqa: E731
        with meter() as cold:
            first = server.submit(build, cache_key="point_lookup")
        with meter() as warm:
            second = server.submit(build, cache_key="point_lookup")
        assert first == second == [1]
        assert cold.counters["gremlin_compile"] == 1
        assert cold.counters["closure_compile"] == 1
        assert "gremlin_compile" not in warm.counters
        assert warm.counters["compiled_exec"] == 1
        assert "step_eval" not in warm.counters
        stats = {s.name: s for s in server.cache_stats()}
        assert stats["gremlin-closures"].hits == 1

    def test_uncompilable_script_falls_back_per_key(self):
        server = self._server()
        build = lambda g: g.addV("person").property("id", 9)  # noqa: E731
        server.submit(build, cache_key="add_vertex:person")
        with meter() as ledger:
            server.submit(
                lambda g: g.addV("person").property("id", 10),
                cache_key="add_vertex:person",
            )
        # the failed compile is remembered: resubmits reuse bytecode
        assert "closure_compile" not in ledger.counters
        assert ledger.counters["cache_hit"] == 1
        assert ledger.counters["step_eval"] >= 1

    def test_restart_clears_compiled_closures(self):
        server = self._server()
        build = lambda g: g.V().has("person", "id", 1).values("id")  # noqa: E731
        server.submit(build, cache_key="point_lookup")
        server.crash()
        server.restart()
        with meter() as ledger:
            server.submit(build, cache_key="point_lookup")
        assert ledger.counters["gremlin_compile"] == 1
        assert ledger.counters["closure_compile"] == 1
