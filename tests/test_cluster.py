"""Cluster layer tests: partitioning, parity, CDC ordering, staleness.

The load-bearing properties:

* **ghost closure** — every per-shard sub-dataset is reference-closed,
  so stock engines (including the Cypher/Gremlin loaders that
  dereference endpoints eagerly) load it without danglers;
* **parity** — the scatter/gather coordinator answers the whole read
  catalog identically to a single-node engine, before and after the
  update stream, on relational and graph backends alike;
* **CDC ordering** — interleaved updates against different shards never
  reorder *within* a shard's topic-partition (the neo4j-cdc-sync
  single-partition pitfall, regression-tested);
* **bounded staleness** — replica lag is measured, bounded by the
  configured budget at read time, and zero after a full sync;
* **deadlock freedom** — cross-shard writes take their shard locks in
  one globally sorted order.
"""

import pytest

from repro.cluster import (
    CDC_TOPIC,
    ClusterConnector,
    partition_dataset,
    shard_of,
)
from repro.core import make_connector
from repro.core.benchmark import WorkloadParams
from repro.kafka import Broker, Consumer, Producer
from repro.simclock.costmodel import CostModel
from repro.simclock.ledger import charge, isolated, meter
from repro.snb import GeneratorConfig, generate
from repro.snb.schema import Knows

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=13)
SHARDS = 3

READ_CATALOG = [
    ("point_lookup", "person"),
    ("one_hop", "person"),
    ("two_hop", "person"),
    ("person_profile", "person"),
    ("person_recent_posts", "person"),
    ("person_friends", "person"),
    ("complex_two_hop", "person"),
    ("friends_recent_posts", "person"),
    ("message_content", "message"),
    ("message_creator", "message"),
    ("message_forum", "message"),
    ("message_replies", "message"),
]


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


@pytest.fixture(scope="module")
def params(dataset):
    return WorkloadParams.curate(dataset, count=6, seed=3)


# -- partitioning ------------------------------------------------------------


class TestPartitioning:
    def test_every_person_lives_on_its_hash_shard(self, dataset):
        part = partition_dataset(dataset, SHARDS)
        for person in dataset.persons:
            home = shard_of(person.id, SHARDS)
            assert person.id in part.persons_at[home]
            assert any(
                p.id == person.id for p in part.shards[home].persons
            )

    def test_knows_edges_on_both_endpoint_homes(self, dataset):
        part = partition_dataset(dataset, SHARDS)
        for knows in dataset.knows:
            for s in {
                shard_of(knows.person1, SHARDS),
                shard_of(knows.person2, SHARDS),
            }:
                shard = part.shards[s]
                assert any(
                    k.person1 == knows.person1
                    and k.person2 == knows.person2
                    for k in shard.knows
                )

    def test_shards_are_reference_closed(self, dataset):
        """No shard contains an entity whose references are missing."""
        part = partition_dataset(dataset, SHARDS)
        for shard in part.shards:
            persons = {p.id for p in shard.persons}
            forums = {f.id for f in shard.forums}
            messages = {p.id for p in shard.posts} | {
                c.id for c in shard.comments
            }
            for k in shard.knows:
                assert {k.person1, k.person2} <= persons
            for f in shard.forums:
                assert f.moderator in persons
            for m in shard.memberships:
                assert m.person in persons and m.forum in forums
            for p in shard.posts:
                assert p.creator in persons and p.forum in forums
            for c in shard.comments:
                assert c.creator in persons
                assert c.reply_of in messages
                assert c.root_post in messages
            for like in shard.likes:
                assert like.person in persons
                assert like.message in messages

    def test_comment_mirrored_at_parent_home(self, dataset):
        part = partition_dataset(dataset, SHARDS)
        for comment in dataset.comments:
            parent_home = part.directory.home[comment.reply_of]
            assert comment.id in part.messages_at[parent_home]


# -- scatter/gather parity ---------------------------------------------------


def _catalog_answers(connector, params):
    answers = {}
    for op, kind in READ_CATALOG:
        ids = (
            params.person_ids if kind == "person" else params.message_ids
        )
        for i in ids:
            answers[(op, i)] = getattr(connector, op)(i)
    for pair in params.path_pairs:
        answers[("shortest_path", pair)] = connector.shortest_path(*pair)
    return answers


@pytest.mark.parametrize("backend", ["postgres-sql", "neo4j-cypher"])
def test_cluster_matches_single_node(backend, dataset, params):
    single = make_connector(backend)
    single.load(dataset)
    cluster = ClusterConnector(backend, shards=SHARDS)
    cluster.load(dataset)
    assert _catalog_answers(cluster, params) == _catalog_answers(
        single, params
    )


def test_cluster_matches_single_node_after_updates(dataset, params):
    single = make_connector("postgres-sql")
    single.load(dataset)
    cluster = ClusterConnector("postgres-sql", shards=SHARDS, replicas=1)
    cluster.load(dataset)
    for event in dataset.updates:
        single.apply_update(event)
        cluster.apply_update(event)
    assert _catalog_answers(cluster, params) == _catalog_answers(
        single, params
    )
    # replica-served reads agree once replicas are fully fresh
    cluster.set_read_preference("replica", 0)
    assert _catalog_answers(cluster, params) == _catalog_answers(
        single, params
    )


def test_batched_writes_match_single_applies(dataset, params):
    one_by_one = ClusterConnector("postgres-sql", shards=SHARDS)
    one_by_one.load(dataset)
    batched = ClusterConnector("postgres-sql", shards=SHARDS)
    batched.load(dataset)
    events = dataset.updates[:200]
    for event in events:
        one_by_one.apply_update(event)
    batched.apply_update_batch(events)
    assert _catalog_answers(batched, params) == _catalog_answers(
        one_by_one, params
    )


# -- CDC ordering (the neo4j-cdc-sync single-partition pitfall) ---------------


def test_interleaved_shard_updates_never_reorder_within_partition(dataset):
    """Per-shard CDC order must equal per-shard apply order, exactly.

    The SNIPPETS.md neo4j-cdc-sync pipeline preserved order only
    because it used a single partition; with multiple partitions,
    correctness requires each shard's changes to be pinned to the
    shard's own partition.  Interleave the update stream across shards
    and assert each partition replays its shard's apply sequence with
    no events reordered, dropped, or leaked to another partition.
    """
    cluster = ClusterConnector("postgres-sql", shards=SHARDS)
    cluster.load(dataset)
    for event in dataset.updates[:400]:
        cluster.apply_update(event)
    broker = cluster._broker
    for s in range(SHARDS):
        records = broker.fetch(CDC_TOPIC, s, 0, 1_000_000)
        assert [r.value for r in records] == cluster.primaries[s].applied
        assert all(r.key == s for r in records)


def test_replicas_replay_identical_per_shard_streams(dataset, params):
    cluster = ClusterConnector("postgres-sql", shards=SHARDS, replicas=2)
    cluster.load(dataset)
    for event in dataset.updates[:300]:
        cluster.apply_update(event)
    cluster.sync_replicas(0)
    primary_answers = _catalog_answers(cluster, params)
    cluster.set_read_preference("replica", 0)
    assert _catalog_answers(cluster, params) == primary_answers


# -- bounded staleness --------------------------------------------------------


def test_staleness_measured_and_bounded_by_budget(dataset):
    budget = 5
    cluster = ClusterConnector(
        "postgres-sql",
        shards=SHARDS,
        replicas=1,
        read_preference="replica",
        staleness_budget=budget,
    )
    cluster.load(dataset)
    pid = dataset.persons[0].id
    for event in dataset.updates[:150]:
        cluster.apply_update(event)
    assert cluster.max_staleness() > budget  # lag actually accumulated
    cluster.one_hop(pid)  # a replica read drains its pod to the budget
    served = shard_of(pid, SHARDS)
    assert cluster.replica_staleness()[(served, 0)] <= budget
    cluster.sync_replicas(0)
    assert cluster.max_staleness() == 0


def test_consumer_partition_assignment_is_enforced():
    broker = Broker()
    broker.create_topic("t", partitions=3)
    producer = Producer(broker, batch_size=1)
    for i in range(9):
        producer.send("t", key=i, value=i, partition=i % 3)
    consumer = Consumer(broker, "g", "t", partitions=[1])
    got = consumer.poll(100)
    assert [r.value for r in got] == [1, 4, 7]
    assert all(r.partition == 1 for r in got)
    assert consumer.lag() == 0  # other partitions don't count
    with pytest.raises(ValueError):
        Consumer(broker, "g2", "t", partitions=[3])


# -- locking ------------------------------------------------------------------


def test_cross_shard_writes_lock_shards_in_sorted_order(dataset):
    cluster = ClusterConnector("postgres-sql", shards=SHARDS)
    cluster.load(dataset)
    order: list[tuple] = []
    inner = cluster.locks.acquire

    def spy(txn_id, resource, mode):
        order.append(resource)
        return inner(txn_id, resource, mode)

    cluster.locks.acquire = spy
    persons = dataset.persons
    by_shard = {shard_of(p.id, SHARDS): p.id for p in persons}
    assert len(by_shard) == SHARDS, "dataset too small to span shards"
    shards = sorted(by_shard)
    # a friendship spanning the two *highest* shards, then one spanning
    # all the way down: each acquisition run must still be ascending
    for a, b in [(shards[2], shards[1]), (shards[2], shards[0])]:
        order.clear()
        cluster.add_friendship(
            Knows(by_shard[a], by_shard[b], creation_date=1)
        )
        shard_locks = [r for r in order if r[0] == "shard"]
        assert shard_locks == sorted(shard_locks)
        assert {s for _, s in shard_locks} == {a, b}


# -- coordinator cache ---------------------------------------------------------


def test_coordinator_cache_respects_per_shard_epochs(dataset):
    cluster = ClusterConnector("postgres-sql", shards=SHARDS)
    cluster.load(dataset)
    cluster.enable_caching()
    by_shard: dict[int, int] = {}
    for p in dataset.persons:
        by_shard.setdefault(shard_of(p.id, SHARDS), p.id)
    pid_a, pid_b = by_shard[0], by_shard[1]

    def coord_stats():
        return next(
            s for s in cluster.cache_stats()
            if s.name == "cluster-coordinator"
        )

    cluster.one_hop(pid_a)
    cluster.one_hop(pid_b)
    before = coord_stats().hits
    cluster.one_hop(pid_a)
    cluster.one_hop(pid_b)
    assert coord_stats().hits == before + 2
    # a write that touches only shard 0 must invalidate shard-0 reads
    # (new epoch key -> miss) while shard-1 reads keep hitting
    friend = next(
        p.id for p in dataset.persons
        if shard_of(p.id, SHARDS) == 0 and p.id != pid_a
    )
    cluster.add_friendship(Knows(pid_a, friend, creation_date=1))
    assert friend in cluster.one_hop(pid_a)  # fresh answer, not cached
    hits_after_write = coord_stats().hits
    cluster.one_hop(pid_b)
    assert coord_stats().hits == hits_after_write + 1


# -- shared gremlin closure cache (pods of one shard) -------------------------


def test_replica_pods_share_gremlin_closure_cache(dataset):
    cluster = ClusterConnector("neo4j-gremlin", shards=2, replicas=1)
    cluster.load(dataset)
    primary = cluster.primaries[0].engine
    replica = cluster.replicas[0][0].engine
    assert replica.server._closure_cache is primary.server._closure_cache
    # warm the primary, then serve the same query shape from the
    # replica: the shared cache means no recompilation on the replica
    pid = next(
        p.id for p in dataset.persons if shard_of(p.id, 2) == 0
    )
    cluster.one_hop(pid)
    cache = primary.server._closure_cache
    hits, misses = cache.stats().hits, cache.stats().misses
    cluster.set_read_preference("replica", 0)
    assert cluster.one_hop(pid) == cluster.primaries[0].engine.one_hop(pid)
    assert cache.stats().misses == misses  # replica never recompiled
    assert cache.stats().hits > hits


# -- cost accounting -----------------------------------------------------------


def test_isolated_ledger_suspends_ambient():
    with meter() as ambient:
        charge("cache_hit")
        with isolated() as inner:
            charge("cache_hit", 5)
        assert inner.counters == {"cache_hit": 5}
    assert ambient.counters == {"cache_hit": 1}


def test_scatter_charges_critical_path_not_sum(dataset):
    cluster = ClusterConnector("postgres-sql", shards=SHARDS)
    cluster.load(dataset)
    model = CostModel()
    pid = dataset.persons[0].id
    with meter() as ledger:
        cluster.two_hop(pid)
    counters = ledger.counters
    assert counters["shard_rtt"] >= 1
    assert counters["scatter_wait_us"] > 0
    # the ambient wait is the max of the per-pod busy times, so it can
    # never exceed the total work the pods did
    assert counters["scatter_wait_us"] <= sum(
        cluster.scatter.busy_us.values()
    )
    # engine-level charges stayed on the pods' isolated ledgers: the
    # ambient ledger sees only the cluster's own counters
    assert set(counters) <= {
        "shard_msg",
        "shard_rtt",
        "scatter_wait_us",
        "gather_item",
    }
    assert ledger.cost_us(model) > 0
