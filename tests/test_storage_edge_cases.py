"""Storage-layer edge cases: eviction correctness, WAL durability
boundaries, B+tree boundary shapes, and LSM shadowing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    BPlusTree,
    BufferPool,
    DiskManager,
    HeapFile,
    LSMTree,
    WriteAheadLog,
)


class TestBufferEvictionCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(
        capacity=st.integers(1, 4),
        payloads=st.lists(st.binary(min_size=1, max_size=600),
                          min_size=1, max_size=80),
    )
    def test_no_data_loss_under_any_pool_size(self, capacity, payloads):
        """Whatever the pool size, every record survives eviction."""
        heap = HeapFile(BufferPool(DiskManager(), capacity=capacity))
        rids = [heap.insert(p) for p in payloads]
        for rid, payload in zip(rids, payloads):
            assert heap.fetch(rid) == payload

    def test_interleaved_reads_and_writes_under_pressure(self):
        heap = HeapFile(BufferPool(DiskManager(), capacity=2))
        rids = []
        for i in range(60):
            rids.append(heap.insert(f"value-{i}".encode() * 10))
            # re-read an old record, forcing eviction churn
            old = rids[i // 2]
            assert heap.fetch(old).startswith(b"value-")
        assert heap.record_count == 60


class TestWalDurabilityBoundary:
    def test_durable_records_stop_at_last_commit(self):
        wal = WriteAheadLog()
        wal.append(b"a")
        wal.append(b"b")
        wal.commit()
        wal.append(b"c")
        assert wal.durable_records() == [b"a", b"b"]

    def test_empty_wal(self):
        wal = WriteAheadLog()
        assert wal.durable_records() == []
        assert wal.last_lsn == 0

    def test_commit_then_more_appends(self):
        wal = WriteAheadLog()
        wal.append(b"a")
        wal.commit()
        wal.append(b"b")
        wal.commit()
        assert wal.durable_records() == [b"a", b"b"]
        assert wal.fsync_count == 2


class TestBPlusTreeBoundaries:
    def test_exactly_at_order_boundary(self):
        tree = BPlusTree(order=4)
        for k in range(5):  # forces exactly one split
            tree.insert(k, k)
        assert tree.height() == 2
        assert [k for k, _ in tree.items()] == list(range(5))

    def test_all_equal_keys(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(7, i)
        assert len(tree) == 50
        assert sorted(tree.search(7)) == list(range(50))

    def test_range_scan_empty_interval(self):
        tree = BPlusTree(order=4)
        for k in (1, 5, 9):
            tree.insert(k, k)
        assert list(tree.range_scan(2, 4)) == []
        assert list(tree.range_scan(10, 20)) == []

    def test_interleaved_insert_delete_stress(self):
        tree = BPlusTree(order=4)
        for k in range(200):
            tree.insert(k % 37, k)
        for k in range(0, 37, 2):
            tree.delete(k)
        remaining = {k for k, _ in tree.items()}
        assert remaining == {k for k in range(37) if k % 2 == 1}


class TestLsmShadowing:
    def test_newest_value_wins_across_many_runs(self):
        lsm = LSMTree(memtable_limit=4, max_sstables=3)
        for round_no in range(10):
            for key_i in range(6):
                lsm.put(f"k{key_i}".encode(), f"v{round_no}".encode())
        for key_i in range(6):
            assert lsm.get(f"k{key_i}".encode()) == b"v9"

    def test_tombstone_survives_compaction_boundary(self):
        lsm = LSMTree(memtable_limit=2, max_sstables=2)
        lsm.put(b"key", b"old")
        lsm.put(b"pad1", b"x")  # triggers flush
        lsm.delete(b"key")
        lsm.put(b"pad2", b"x")
        lsm.put(b"pad3", b"x")  # triggers flush + compaction
        assert lsm.get(b"key") is None

    def test_flush_idempotent(self):
        lsm = LSMTree()
        lsm.put(b"a", b"1")
        lsm.flush()
        count = lsm.sstable_count
        lsm.flush()  # empty memtable: no new run
        assert lsm.sstable_count == count
