"""Tests for the triple store and the SPARQL subset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import RdfDatabase, TripleStore
from repro.rdf.sparql import SparqlParseError, SparqlRuntimeError, parse


class TestTripleStore:
    def test_add_and_match(self):
        ts = TripleStore()
        assert ts.add("sn:p1", "snb:firstName", "Alice")
        assert list(ts.match("sn:p1", "snb:firstName", None)) == [
            ("sn:p1", "snb:firstName", "Alice")
        ]

    def test_duplicate_insert_ignored(self):
        ts = TripleStore()
        assert ts.add("s", "p", "o")
        assert not ts.add("s", "p", "o")
        assert ts.triple_count == 1

    def test_remove(self):
        ts = TripleStore()
        ts.add("s", "p", "o")
        assert ts.remove("s", "p", "o")
        assert not ts.remove("s", "p", "o")
        assert ts.count(None, None, None) == 0

    def test_remove_emits_sanitizer_trace(self):
        # index deletion is a storage mutation the race detector must
        # see, exactly like add (flagged by QA804 before the hook)
        from repro.sanitizer import runtime

        ts = TripleStore()
        ts.add("s", "p", "o")
        with runtime.tracing() as collector:
            assert ts.remove("s", "p", "o")
        writes = [e for e in collector.events if e.kind == "write"]
        assert [e.resource for e in writes] == [repr(("rdf-subject", "s"))]

    def test_failed_remove_emits_no_trace(self):
        from repro.sanitizer import runtime

        ts = TripleStore()
        ts.add("s", "p", "o")
        with runtime.tracing() as collector:
            assert not ts.remove("s", "p", "missing")
        assert [e for e in collector.events if e.kind == "write"] == []

    def test_wildcard_patterns(self):
        ts = TripleStore()
        ts.add("a", "knows", "b")
        ts.add("a", "knows", "c")
        ts.add("b", "knows", "c")
        ts.add("a", "name", "Alice")
        assert ts.count("a", "knows", None) == 2
        assert ts.count(None, "knows", None) == 3
        assert ts.count(None, None, "c") == 2
        assert ts.count(None, "knows", "c") == 2
        assert ts.count("a", None, None) == 3
        assert ts.count("a", None, "c") == 1
        assert ts.count(None, None, None) == 4

    def test_unknown_term_short_circuits(self):
        ts = TripleStore()
        ts.add("a", "p", "b")
        assert ts.count("nope", None, None) == 0

    def test_typed_literals(self):
        ts = TripleStore()
        ts.add("p1", "age", 30)
        ts.add("p2", "age", 31)
        assert ts.count(None, "age", 30) == 1

    def test_size_bytes_grows(self):
        ts = TripleStore()
        before = ts.size_bytes()
        ts.add("subject", "predicate", "object-string")
        assert ts.size_bytes() > before

    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(
            st.tuples(
                st.integers(0, 8), st.integers(0, 3), st.integers(0, 8)
            ),
            max_size=60,
        )
    )
    def test_matches_set_model(self, triples):
        ts = TripleStore()
        model = set()
        for s, p, o in triples:
            ts.add(f"s{s}", f"p{p}", f"o{o}")
            model.add((f"s{s}", f"p{p}", f"o{o}"))
        assert set(ts.match(None, None, None)) == model
        for s, p, o in list(model)[:10]:
            assert set(ts.match(s, None, None)) == {
                t for t in model if t[0] == s
            }
            assert set(ts.match(None, p, o)) == {
                t for t in model if t[1] == p and t[2] == o
            }


@pytest.fixture()
def db():
    rdf = RdfDatabase()
    people = {1: ("Alice", 30), 2: ("Bob", 35), 3: ("Carol", 28)}
    triples = []
    for pid, (name, age) in people.items():
        iri = f"sn:pers{pid}"
        triples += [
            (iri, "rdf:type", "snb:Person"),
            (iri, "snb:id", pid),
            (iri, "snb:firstName", name),
            (iri, "snb:age", age),
        ]
    triples += [
        ("sn:pers1", "snb:knows", "sn:pers2"),
        ("sn:pers2", "snb:knows", "sn:pers1"),
        ("sn:pers2", "snb:knows", "sn:pers3"),
        ("sn:pers3", "snb:knows", "sn:pers2"),
    ]
    rdf.insert_triples(triples)
    return rdf


class TestSparql:
    def test_parse_basic(self):
        q = parse(
            "SELECT ?name WHERE { ?p snb:id $id . ?p snb:firstName ?name }"
        )
        assert len(q.patterns) == 2
        assert q.items[0].var.name == "name"

    def test_parse_rejects_bare_identifier(self):
        with pytest.raises(SparqlParseError):
            parse("SELECT ?x WHERE { ?x has ?y }")

    def test_point_lookup(self, db):
        rows = db.execute(
            "SELECT ?name WHERE { ?p snb:id $id . ?p snb:firstName ?name }",
            {"id": 2},
        )
        assert rows == [("Bob",)]

    def test_one_hop(self, db):
        rows = db.execute(
            "SELECT ?name WHERE { ?p snb:id $id . ?p snb:knows ?f . "
            "?f snb:firstName ?name } ORDER BY ?name",
            {"id": 2},
        )
        assert rows == [("Alice",), ("Carol",)]

    def test_two_hop_with_filter(self, db):
        rows = db.execute(
            "SELECT DISTINCT ?name WHERE { ?p snb:id $id . "
            "?p snb:knows ?f . ?f snb:knows ?fof . ?fof snb:id ?fofid . "
            "?fof snb:firstName ?name . FILTER(?fofid != $id) }",
            {"id": 1},
        )
        assert rows == [("Carol",)]

    def test_count_star(self, db):
        rows = db.execute(
            "SELECT (COUNT(*) AS ?c) WHERE { ?p rdf:type snb:Person }"
        )
        assert rows == [(3,)]

    def test_count_distinct_var(self, db):
        rows = db.execute(
            "SELECT (COUNT(DISTINCT ?f) AS ?c) WHERE { ?p snb:knows ?f }"
        )
        assert rows == [(3,)]

    def test_filter_comparison(self, db):
        rows = db.execute(
            "SELECT ?name WHERE { ?p snb:age ?a . ?p snb:firstName ?name . "
            "FILTER(?a >= 30) } ORDER BY ?name"
        )
        assert rows == [("Alice",), ("Bob",)]

    def test_filter_in(self, db):
        rows = db.execute(
            "SELECT ?name WHERE { ?p snb:id ?i . ?p snb:firstName ?name . "
            "FILTER(?i IN (1, 3)) } ORDER BY ?name"
        )
        assert rows == [("Alice",), ("Carol",)]

    def test_filter_bool_ops(self, db):
        rows = db.execute(
            "SELECT ?name WHERE { ?p snb:age ?a . ?p snb:firstName ?name . "
            "FILTER(?a < 30 || ?a > 34) } ORDER BY ?name"
        )
        assert rows == [("Bob",), ("Carol",)]

    def test_order_desc_limit(self, db):
        rows = db.execute(
            "SELECT ?name WHERE { ?p snb:firstName ?name } "
            "ORDER BY DESC(?name) LIMIT 2"
        )
        assert rows == [("Carol",), ("Bob",)]

    def test_shared_variable_join(self, db):
        # same var appearing twice must unify
        rows = db.execute(
            "SELECT ?a WHERE { ?p snb:knows ?p2 . ?p2 snb:knows ?p . "
            "?p snb:id ?a } ORDER BY ?a"
        )
        assert rows == [(1,), (2,), (2,), (3,)]

    def test_missing_param(self, db):
        with pytest.raises(SparqlRuntimeError):
            db.execute("SELECT ?p WHERE { ?p snb:id $gone }")

    def test_empty_result(self, db):
        assert db.execute(
            "SELECT ?p WHERE { ?p snb:id $id }", {"id": 999}
        ) == []

    def test_statement_cache(self, db):
        q = "SELECT ?p WHERE { ?p snb:id $id }"
        db.execute(q, {"id": 1})
        db.execute(q, {"id": 2})
        assert q in db._stmt_cache

    def test_insert_returns_new_count(self, db):
        added = db.insert_triples(
            [("sn:pers9", "snb:id", 9), ("sn:pers1", "snb:id", 1)]
        )
        assert added == 1  # second already existed
