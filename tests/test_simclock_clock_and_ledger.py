"""Unit tests for the virtual clock, cost model, and ledger stack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simclock import (
    DEFAULT_WEIGHTS,
    CostModel,
    Ledger,
    SimClock,
    charge,
    meter,
    metered,
)
from repro.simclock.ledger import active_ledgers


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_us == 12.5
        assert clock.now_ms == 0.0125

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_reset(self):
        clock = SimClock(5.0)
        clock.advance(1.0)
        clock.reset()
        assert clock.now_us == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=50))
    def test_advance_is_sum(self, deltas):
        clock = SimClock()
        for d in deltas:
            clock.advance(d)
        assert clock.now_us == pytest.approx(sum(deltas))


class TestCostModel:
    def test_default_weights_all_positive(self):
        assert all(w > 0 for w in DEFAULT_WEIGHTS.values())

    def test_cost_is_weighted_sum(self):
        model = CostModel()
        counters = {"page_read": 2, "buffer_hit": 10}
        expected = (
            2 * DEFAULT_WEIGHTS["page_read"] + 10 * DEFAULT_WEIGHTS["buffer_hit"]
        )
        assert model.cost_us(counters) == pytest.approx(expected)

    def test_overrides_apply(self):
        model = CostModel({"page_read": 1.0})
        assert model.weight("page_read") == 1.0
        # untouched weights survive
        assert model.weight("buffer_hit") == DEFAULT_WEIGHTS["buffer_hit"]

    def test_strict_rejects_unknown_override(self):
        with pytest.raises(KeyError):
            CostModel({"not_a_weight": 1.0})

    def test_strict_rejects_unknown_counter(self):
        with pytest.raises(KeyError):
            CostModel().cost_us({"bogus": 1})

    def test_lenient_ignores_unknown(self):
        model = CostModel(strict=False)
        assert model.cost_us({"bogus": 100}) == 0.0

    def test_breakdown_sorted_descending(self):
        model = CostModel()
        parts = model.breakdown_us({"buffer_hit": 1, "page_read": 1})
        values = list(parts.values())
        assert values == sorted(values, reverse=True)
        assert "buffer_hit" in parts and "page_read" in parts

    def test_breakdown_drops_zero_counters(self):
        parts = CostModel().breakdown_us({"page_read": 0})
        assert parts == {}


class TestLedger:
    def test_charge_accumulates(self):
        ledger = Ledger()
        ledger.charge("page_read")
        ledger.charge("page_read", 3)
        assert ledger.counters["page_read"] == 4

    def test_merge(self):
        a, b = Ledger(), Ledger()
        a.charge("tuple_cpu", 5)
        b.charge("tuple_cpu", 2)
        b.charge("page_read", 1)
        a.merge(b)
        assert a.counters["tuple_cpu"] == 7
        assert a.counters["page_read"] == 1

    def test_merge_mapping(self):
        a = Ledger()
        a.merge({"buffer_hit": 2.0})
        assert a.counters["buffer_hit"] == 2.0

    def test_cost_us(self):
        ledger = Ledger()
        ledger.charge("client_rtt", 2)
        assert ledger.cost_us(CostModel()) == pytest.approx(
            2 * DEFAULT_WEIGHTS["client_rtt"]
        )

    def test_snapshot_is_copy(self):
        ledger = Ledger()
        ledger.charge("tuple_cpu")
        snap = ledger.snapshot()
        snap["tuple_cpu"] = 99
        assert ledger.counters["tuple_cpu"] == 1

    def test_clear(self):
        ledger = Ledger()
        ledger.charge("tuple_cpu")
        ledger.clear()
        assert ledger.total_units() == 0


class TestActiveLedgerStack:
    def test_charge_without_active_ledger_is_noop(self):
        charge("page_read")  # must not raise

    def test_meter_captures_charges(self):
        with meter() as ledger:
            charge("page_read", 2)
        assert ledger.counters["page_read"] == 2

    def test_nested_meters_both_charged(self):
        with meter() as outer:
            charge("tuple_cpu")
            with meter() as inner:
                charge("tuple_cpu", 4)
        assert inner.counters["tuple_cpu"] == 4
        assert outer.counters["tuple_cpu"] == 5

    def test_stack_unwinds_on_exception(self):
        depth = active_ledgers()
        with pytest.raises(RuntimeError):
            with meter():
                raise RuntimeError("boom")
        assert active_ledgers() == depth

    def test_metered_existing_ledger(self):
        ledger = Ledger()
        with metered(ledger):
            charge("value_cpu", 7)
        assert ledger.counters["value_cpu"] == 7
