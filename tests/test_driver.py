"""Tests for the workload driver: mix, scheduler, loaders, and the
interactive runner."""

import pytest

from repro.core import make_connector
from repro.core.benchmark import WorkloadParams
from repro.driver import (
    DependencyScheduler,
    InteractiveConfig,
    InteractiveWorkloadRunner,
    QueryMix,
    concurrent_load,
    sequential_load,
)
from repro.driver.workload import FULL_MIX, REDUCED_MIX
from repro.snb import GeneratorConfig, generate

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=8000, seed=13)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


@pytest.fixture(scope="module")
def params(dataset):
    return WorkloadParams.curate(dataset, count=8, seed=3)


class TestQueryMix:
    def test_draw_produces_known_ops(self, params):
        mix = QueryMix(params)
        names = {op for op, _ in REDUCED_MIX}
        for _ in range(100):
            assert mix.draw().name in names

    def test_reduced_mix_has_no_shortest_path(self):
        assert "shortest_path" not in {op for op, _ in REDUCED_MIX}
        assert "shortest_path" in {op for op, _ in FULL_MIX}

    def test_draw_is_deterministic_per_seed(self, params):
        a = [QueryMix(params, seed=5).draw().name for _ in range(20)]
        b = [QueryMix(params, seed=5).draw().name for _ in range(20)]
        assert a == b

    def test_ops_execute_against_connector(self, dataset, params):
        connector = make_connector("postgres-sql")
        connector.load(dataset)
        mix = QueryMix(params)
        for _ in range(20):
            mix.draw().execute(connector)  # must not raise


class TestDependencyScheduler:
    def test_schedule_monotonic(self, dataset):
        scheduler = DependencyScheduler(dataset.updates[:200])
        times = [s.due_ms for s in scheduler.schedule()]
        assert times == sorted(times)

    def test_dependencies_respected(self, dataset):
        scheduler = DependencyScheduler(dataset.updates[:500])
        assert scheduler.verify_dependencies()

    def test_compression_scales_times(self, dataset):
        slow = DependencyScheduler(dataset.updates[:100], compression=1000)
        fast = DependencyScheduler(dataset.updates[:100], compression=100000)
        slow_last = list(slow.schedule())[-1].due_ms
        fast_last = list(fast.schedule())[-1].due_ms
        assert slow_last > fast_last

    def test_empty_stream(self):
        scheduler = DependencyScheduler([])
        assert list(scheduler.schedule()) == []
        assert scheduler.verify_dependencies()

    def test_invalid_compression(self, dataset):
        with pytest.raises(ValueError):
            DependencyScheduler(dataset.updates[:2], compression=0)


class TestSequentialLoad:
    def test_reports_counts_and_rates(self, dataset):
        connector = make_connector("titan-b")
        report = sequential_load(connector.provider, dataset)
        assert report.vertices == dataset.vertex_count()
        assert report.edges > 0
        assert report.vertices_per_second > 0
        assert report.edges_per_second > 0
        assert report.total_minutes > 0

    def test_neo4j_fastest_single_loader(self, dataset):
        """Table 4 shape: Neo4j has the best single-loader rates and Sqlg
        the worst edge rate."""
        rates = {}
        for key in ("neo4j-gremlin", "titan-c", "titan-b", "sqlg"):
            connector = make_connector(key)
            report = sequential_load(connector.provider, dataset)
            rates[key] = (
                report.vertices_per_second, report.edges_per_second
            )
        assert rates["neo4j-gremlin"][1] == max(r[1] for r in rates.values())
        assert rates["sqlg"][1] == min(r[1] for r in rates.values())
        # Titan-C pays Cassandra round trips: slower edges than Titan-B
        assert rates["titan-c"][1] < rates["titan-b"][1]


class TestConcurrentLoad:
    def test_titan_c_scales_with_loaders(self, dataset):
        one = concurrent_load(
            make_connector("titan-c").provider, dataset, loaders=1
        )
        eight = concurrent_load(
            make_connector("titan-c").provider, dataset, loaders=8
        )
        assert eight.edges_per_second > 3 * one.edges_per_second

    def test_titan_b_does_not_scale(self, dataset):
        one = concurrent_load(
            make_connector("titan-b").provider, dataset, loaders=1
        )
        eight = concurrent_load(
            make_connector("titan-b").provider, dataset, loaders=8
        )
        assert eight.edges_per_second < 1.5 * one.edges_per_second

    def test_sqlg_scales_sublinearly(self, dataset):
        one = concurrent_load(
            make_connector("sqlg").provider, dataset, loaders=1
        )
        eight = concurrent_load(
            make_connector("sqlg").provider, dataset, loaders=8
        )
        speedup = eight.edges_per_second / one.edges_per_second
        assert speedup < 4.0

    def test_loader_count_validation(self, dataset):
        with pytest.raises(ValueError):
            concurrent_load(
                make_connector("titan-c").provider, dataset, loaders=0
            )


class TestInteractiveRunner:
    @pytest.fixture(scope="class")
    def small_config(self):
        return InteractiveConfig(
            readers=8, duration_ms=300.0, window_ms=50.0, seed=5
        )

    def _run(self, key, dataset, config):
        connector = make_connector(key)
        connector.load(dataset)
        return InteractiveWorkloadRunner(connector, dataset, config).run()

    def test_postgres_runs_and_reports(self, dataset, small_config):
        result = self._run("postgres-sql", dataset, small_config)
        assert result.read_windows.total() > 0
        assert result.updates_applied > 0
        assert result.read_throughput > 0
        assert result.write_throughput > 0
        assert not result.server_crashed

    def test_read_and_write_series_nonempty(self, dataset, small_config):
        result = self._run("postgres-sql", dataset, small_config)
        assert len(result.read_windows.series()) > 1
        assert result.read_latency.count == result.read_windows.total()

    def test_gremlin_slower_than_sql(self, dataset, small_config):
        sql = self._run("postgres-sql", dataset, small_config)
        gremlin = self._run("neo4j-gremlin", dataset, small_config)
        assert sql.read_throughput > 3 * gremlin.read_throughput

    def test_titan_b_collapses(self, dataset, small_config):
        titan_c = self._run("titan-c", dataset, small_config)
        titan_b = self._run("titan-b", dataset, small_config)
        # serialized store latch: far lower read throughput than Titan-C
        assert titan_b.read_throughput < titan_c.read_throughput

    def test_neo4j_checkpoint_dips(self, dataset):
        config = InteractiveConfig(
            readers=8,
            duration_ms=1_000.0,
            window_ms=50.0,
            checkpoint_interval_ms=200.0,
            checkpoint_stall_us_per_record=3_000.0,
        )
        result = self._run("neo4j-cypher", dataset, config)
        series = [rate for _, rate in result.write_windows.series()]
        assert result.updates_applied > 0
        peak = max(series)
        trough = min(series[1:-1]) if len(series) > 2 else min(series)
        assert trough < peak * 0.5  # visible dips
