"""Additional Cypher engine coverage: writes, functions, aggregation."""

import pytest

from repro.graphdb import GraphDatabase
from repro.graphdb.cypher.executor import CypherRuntimeError


@pytest.fixture()
def db():
    g = GraphDatabase()
    g.create_index("City", "name")
    for name, country in [
        ("waterloo", "ca"), ("toronto", "ca"), ("berlin", "de"),
    ]:
        g.execute(
            "CREATE (c:City {name: $n, country: $co})",
            {"n": name, "co": country},
        )
    g.execute(
        "MATCH (a:City {name: 'waterloo'}), (b:City {name: 'toronto'}) "
        "CREATE (a)-[:ROAD {km: 110}]->(b)"
    )
    return g


class TestFunctions:
    def test_id_function(self, db):
        rows = db.execute("MATCH (c:City {name: 'waterloo'}) RETURN id(c)")
        assert isinstance(rows[0][0], int)

    def test_labels_function(self, db):
        rows = db.execute(
            "MATCH (c:City {name: 'berlin'}) RETURN labels(c)"
        )
        assert tuple(rows[0][0]) == ("City",)

    def test_length_requires_path(self, db):
        with pytest.raises(CypherRuntimeError):
            db.execute("MATCH (c:City {name: 'berlin'}) RETURN length(c)")

    def test_unknown_function(self, db):
        with pytest.raises(CypherRuntimeError):
            db.execute("MATCH (c:City) RETURN sqrt(c.km)")


class TestAggregation:
    def test_count_distinct(self, db):
        rows = db.execute(
            "MATCH (c:City) RETURN count(DISTINCT c.country)"
        )
        assert rows == [(2,)]

    def test_collect(self, db):
        rows = db.execute(
            "MATCH (c:City) WHERE c.country = 'ca' "
            "RETURN collect(c.name)"
        )
        assert sorted(rows[0][0]) == ["toronto", "waterloo"]

    def test_grouped_avg(self, db):
        db.execute(
            "MATCH (a:City {name: 'toronto'}), (b:City {name: 'berlin'}) "
            "CREATE (a)-[:ROAD {km: 6500}]->(b)"
        )
        rows = db.execute(
            "MATCH (:City)-[r:ROAD]->(:City) RETURN avg(r.km)"
        )
        assert rows == [((110 + 6500) / 2,)]

    def test_empty_global_aggregate(self, db):
        rows = db.execute("MATCH (x:Ghost) RETURN count(*)")
        assert rows == [(0,)]


class TestWrites:
    def test_set_then_read(self, db):
        db.execute(
            "MATCH (c:City {name: 'berlin'}) SET c.population = 3600000"
        )
        rows = db.execute(
            "MATCH (c:City {name: 'berlin'}) RETURN c.population"
        )
        assert rows == [(3600000,)]

    def test_set_indexed_property_repoints_index(self, db):
        db.execute("MATCH (c:City {name: 'berlin'}) SET c.name = 'bonn'")
        assert db.execute("MATCH (c:City {name: 'berlin'}) RETURN c.name") == []
        assert db.execute(
            "MATCH (c:City {name: 'bonn'}) RETURN c.country"
        ) == [("de",)]

    def test_create_undirected_rel_rejected(self, db):
        with pytest.raises(CypherRuntimeError):
            db.execute(
                "MATCH (a:City {name: 'waterloo'}), (b:City {name: 'berlin'}) "
                "CREATE (a)-[:ROAD]-(b)"
            )

    def test_create_chain_pattern(self, db):
        db.execute(
            "CREATE (x:City {name: 'ulm'})-[:ROAD {km: 1}]->"
            "(y:City {name: 'augsburg'})"
        )
        rows = db.execute(
            "MATCH (x:City {name: 'ulm'})-[:ROAD]->(y:City) RETURN y.name"
        )
        assert rows == [("augsburg",)]


class TestPatterns:
    def test_var_length_exact_two(self, db):
        db.execute(
            "MATCH (a:City {name: 'toronto'}), (b:City {name: 'berlin'}) "
            "CREATE (a)-[:ROAD {km: 6500}]->(b)"
        )
        rows = db.execute(
            "MATCH (a:City {name: 'waterloo'})-[:ROAD*2]->(c:City) "
            "RETURN c.name"
        )
        assert rows == [("berlin",)]

    def test_incoming_direction(self, db):
        rows = db.execute(
            "MATCH (b:City {name: 'toronto'})<-[:ROAD]-(a:City) "
            "RETURN a.name"
        )
        assert rows == [("waterloo",)]

    def test_where_on_rel_var(self, db):
        rows = db.execute(
            "MATCH (a:City)-[r:ROAD]->(b:City) WHERE r.km < 200 "
            "RETURN a.name, b.name"
        )
        assert rows == [("waterloo", "toronto")]

    def test_node_equality_in_where(self, db):
        rows = db.execute(
            "MATCH (a:City), (b:City) WHERE a = b RETURN count(*)"
        )
        assert rows == [(3,)]

    def test_multiple_label_filter(self, db):
        db.execute("CREATE (m:City:Capital {name: 'ottawa', country: 'ca'})")
        rows = db.execute("MATCH (c:Capital) RETURN c.name")
        assert rows == [("ottawa",)]
