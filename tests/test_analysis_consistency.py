"""Cross-dialect consistency: the four catalogs answer one workload."""

from repro.analysis import check_consistency, check_insert_consistency
from repro.analysis.consistency import (
    DECLARED_INSERT_DELTAS,
    INSERT_OPERATIONS,
    READ_OPERATIONS,
)
from repro.analysis.linter import analyze_catalog, connector_catalogs


def built_in_results():
    return {
        dialect: analyze_catalog(dialect, queries)
        for dialect, queries in connector_catalogs().items()
    }


class TestBuiltinCatalogs:
    def test_catalogs_agree(self):
        diagnostics = check_consistency(built_in_results())
        assert diagnostics == [], [str(d) for d in diagnostics]

    def test_every_read_operation_is_present_everywhere(self):
        per_dialect = built_in_results()
        for dialect, results in per_dialect.items():
            for operation in READ_OPERATIONS:
                assert operation in results, (dialect, operation)


class TestMutations:
    def test_missing_operation(self):
        per_dialect = built_in_results()
        del per_dialect["sql"]["one_hop"]
        diagnostics = check_consistency(per_dialect)
        assert [d.code for d in diagnostics] == ["QA402"]
        assert "sql" in diagnostics[0].message
        assert "one_hop" in str(diagnostics[0].location)

    def test_swapped_edge_type_diverges(self):
        # one_hop rewritten to traverse LIKES instead of KNOWS: still a
        # well-formed query (so the walker stays silent) but it touches
        # a different schema footprint than the other three dialects
        per_dialect = built_in_results()
        mutated = dict(connector_catalogs()["cypher"])
        mutated["one_hop"] = (
            "MATCH (p:Person {id: $id})-[:LIKES]->(m:Message) "
            "RETURN m.id AS id ORDER BY id",
        )
        per_dialect["cypher"] = analyze_catalog("cypher", mutated)
        assert per_dialect["cypher"]["one_hop"].diagnostics == []
        diagnostics = check_consistency(per_dialect)
        assert [d.code for d in diagnostics] == ["QA401"]
        assert "cypher" in diagnostics[0].message
        assert "likes" in diagnostics[0].message


class TestInsertFootprints:
    def test_builtin_deltas_are_exactly_the_declared_ones(self):
        diagnostics = check_insert_consistency(built_in_results())
        assert diagnostics == [], [str(d) for d in diagnostics]

    def test_every_insert_operation_is_present_everywhere(self):
        per_dialect = built_in_results()
        for dialect, results in per_dialect.items():
            for operation in INSERT_OPERATIONS:
                assert operation in results, (dialect, operation)

    def test_missing_insert_operation_is_qa402(self):
        per_dialect = built_in_results()
        del per_dialect["gremlin"]["add_like"]
        diagnostics = check_insert_consistency(per_dialect)
        assert [d.code for d in diagnostics] == ["QA402"]
        assert "gremlin" in diagnostics[0].message
        assert "add_like" in str(diagnostics[0].location)

    def test_undeclared_surplus_is_qa403(self, monkeypatch):
        # forget the sparql add_person delta: the footprint is still
        # what it always was, but now nobody vouches for it
        trimmed = {
            key: value
            for key, value in DECLARED_INSERT_DELTAS.items()
            if key != ("sparql", "add_person")
        }
        monkeypatch.setattr(
            "repro.analysis.consistency.DECLARED_INSERT_DELTAS", trimmed
        )
        diagnostics = check_insert_consistency(built_in_results())
        assert [d.code for d in diagnostics] == ["QA403"]
        assert "undeclared surplus" in diagnostics[0].message
        assert "studyAt" in diagnostics[0].message

    def test_unmaterialised_declaration_is_qa403(self, monkeypatch):
        # declare a delta no catalog produces
        padded = dict(DECLARED_INSERT_DELTAS)
        padded[("cypher", "add_forum")] = frozenset({"tag"})
        monkeypatch.setattr(
            "repro.analysis.consistency.DECLARED_INSERT_DELTAS", padded
        )
        diagnostics = check_insert_consistency(built_in_results())
        assert [d.code for d in diagnostics] == ["QA403"]
        assert "declared delta not present" in diagnostics[0].message
        assert "tag" in diagnostics[0].message
