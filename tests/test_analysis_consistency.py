"""Cross-dialect consistency: the four catalogs answer one workload."""

from repro.analysis import check_consistency
from repro.analysis.consistency import READ_OPERATIONS
from repro.analysis.linter import analyze_catalog, connector_catalogs


def built_in_results():
    return {
        dialect: analyze_catalog(dialect, queries)
        for dialect, queries in connector_catalogs().items()
    }


class TestBuiltinCatalogs:
    def test_catalogs_agree(self):
        diagnostics = check_consistency(built_in_results())
        assert diagnostics == [], [str(d) for d in diagnostics]

    def test_every_read_operation_is_present_everywhere(self):
        per_dialect = built_in_results()
        for dialect, results in per_dialect.items():
            for operation in READ_OPERATIONS:
                assert operation in results, (dialect, operation)


class TestMutations:
    def test_missing_operation(self):
        per_dialect = built_in_results()
        del per_dialect["sql"]["one_hop"]
        diagnostics = check_consistency(per_dialect)
        assert [d.code for d in diagnostics] == ["QA402"]
        assert "sql" in diagnostics[0].message
        assert "one_hop" in str(diagnostics[0].location)

    def test_swapped_edge_type_diverges(self):
        # one_hop rewritten to traverse LIKES instead of KNOWS: still a
        # well-formed query (so the walker stays silent) but it touches
        # a different schema footprint than the other three dialects
        per_dialect = built_in_results()
        mutated = dict(connector_catalogs()["cypher"])
        mutated["one_hop"] = (
            "MATCH (p:Person {id: $id})-[:LIKES]->(m:Message) "
            "RETURN m.id AS id ORDER BY id",
        )
        per_dialect["cypher"] = analyze_catalog("cypher", mutated)
        assert per_dialect["cypher"]["one_hop"].diagnostics == []
        diagnostics = check_consistency(per_dialect)
        assert [d.code for d in diagnostics] == ["QA401"]
        assert "cypher" in diagnostics[0].message
        assert "likes" in diagnostics[0].message
