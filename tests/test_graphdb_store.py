"""Tests for the graph record store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import Direction, GraphStore
from repro.simclock import meter


@pytest.fixture()
def store():
    s = GraphStore()
    s.create_index("Person", "id")
    return s


class TestNodes:
    def test_create_and_read(self, store):
        nid = store.create_node(["Person"], {"id": 1, "name": "alice"})
        assert store.node_labels(nid) == ("Person",)
        assert store.node_props(nid) == {"id": 1, "name": "alice"}
        assert store.node_prop(nid, "name") == "alice"
        assert store.node_prop(nid, "missing") is None

    def test_index_lookup(self, store):
        nid = store.create_node(["Person"], {"id": 42})
        assert store.lookup("Person", "id", 42) == [nid]
        assert store.lookup("Person", "id", 99) == []

    def test_lookup_requires_index(self, store):
        with pytest.raises(KeyError):
            store.lookup("Forum", "id", 1)

    def test_index_built_retroactively(self):
        store = GraphStore()
        nid = store.create_node(["Forum"], {"id": 7})
        store.create_index("Forum", "id")
        assert store.lookup("Forum", "id", 7) == [nid]

    def test_index_ignores_other_labels(self, store):
        store.create_node(["Forum"], {"id": 1})
        assert store.lookup("Person", "id", 1) == []

    def test_set_prop_maintains_index(self, store):
        nid = store.create_node(["Person"], {"id": 1})
        store.set_node_prop(nid, "id", 2)
        assert store.lookup("Person", "id", 1) == []
        assert store.lookup("Person", "id", 2) == [nid]

    def test_delete_node(self, store):
        nid = store.create_node(["Person"], {"id": 1})
        store.delete_node(nid)
        assert store.lookup("Person", "id", 1) == []
        with pytest.raises(KeyError):
            store.node_props(nid)

    def test_delete_with_rels_rejected(self, store):
        a = store.create_node(["Person"], {"id": 1})
        b = store.create_node(["Person"], {"id": 2})
        store.create_rel("KNOWS", a, b)
        with pytest.raises(ValueError):
            store.delete_node(a)

    def test_label_scan(self, store):
        ids = {store.create_node(["Person"], {"id": i}) for i in range(5)}
        store.create_node(["Forum"], {"id": 100})
        assert set(store.nodes_with_label("Person")) == ids


class TestRelationships:
    def test_chain_traversal(self, store):
        a = store.create_node(["Person"], {"id": 1})
        friends = []
        for i in range(2, 7):
            b = store.create_node(["Person"], {"id": i})
            store.create_rel("KNOWS", a, b, {"since": 2000 + i})
            friends.append(b)
        others = {o for _, o in store.relationships(a, "KNOWS")}
        assert others == set(friends)

    def test_direction_filtering(self, store):
        a = store.create_node(["Person"], {"id": 1})
        b = store.create_node(["Person"], {"id": 2})
        c = store.create_node(["Person"], {"id": 3})
        store.create_rel("KNOWS", a, b)  # a -> b
        store.create_rel("KNOWS", c, a)  # c -> a
        assert {o for _, o in store.relationships(a, "KNOWS", Direction.OUT)} == {b}
        assert {o for _, o in store.relationships(a, "KNOWS", Direction.IN)} == {c}
        assert {
            o for _, o in store.relationships(a, "KNOWS", Direction.BOTH)
        } == {b, c}

    def test_type_filtering(self, store):
        a = store.create_node(["Person"], {"id": 1})
        b = store.create_node(["Post"], {"id": 2})
        c = store.create_node(["Person"], {"id": 3})
        store.create_rel("LIKES", a, b)
        store.create_rel("KNOWS", a, c)
        assert {o for _, o in store.relationships(a, "LIKES")} == {b}
        assert store.degree(a) == 2
        assert store.degree(a, "KNOWS") == 1

    def test_rel_props_and_endpoints(self, store):
        a = store.create_node(["Person"], {"id": 1})
        b = store.create_node(["Person"], {"id": 2})
        rid = store.create_rel("KNOWS", a, b, {"since": 2010})
        assert store.rel_props(rid) == {"since": 2010}
        assert store.rel_endpoints(rid) == ("KNOWS", a, b)

    def test_self_loop(self, store):
        a = store.create_node(["Person"], {"id": 1})
        store.create_rel("KNOWS", a, a)
        neighbours = [o for _, o in store.relationships(a, "KNOWS")]
        assert a in neighbours

    def test_traversal_cost_independent_of_graph_size(self, store):
        """Index-free adjacency: per-neighbour cost is flat."""
        hub = store.create_node(["Person"], {"id": 0})
        for i in range(1, 11):
            n = store.create_node(["Person"], {"id": i})
            store.create_rel("KNOWS", hub, n)
        with meter() as small:
            list(store.relationships(hub, "KNOWS"))
        # add 5000 unrelated nodes/edges
        prev = None
        for i in range(1000, 3500):
            n = store.create_node(["Person"], {"id": i})
            if prev is not None:
                store.create_rel("KNOWS", prev, n)
            prev = n
        with meter() as big:
            list(store.relationships(hub, "KNOWS"))
        assert big.counters["record_read"] == small.counters["record_read"]


class TestStats:
    def test_counts(self, store):
        a = store.create_node(["Person"], {"id": 1})
        b = store.create_node(["Person"], {"id": 2})
        store.create_rel("KNOWS", a, b)
        assert store.node_count == 2
        assert store.rel_count == 1

    def test_size_bytes_grows(self, store):
        before = store.size_bytes()
        store.create_node(["Person"], {"id": 1, "name": "x" * 100})
        assert store.size_bytes() > before


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)),
        min_size=1,
        max_size=60,
    )
)
def test_adjacency_matches_model(edges):
    """The linked-chain adjacency equals a plain adjacency-set model."""
    store = GraphStore()
    nodes = [store.create_node(["V"], {"id": i}) for i in range(15)]
    model_out: dict[int, list[int]] = {n: [] for n in nodes}
    model_in: dict[int, list[int]] = {n: [] for n in nodes}
    for a, b in edges:
        store.create_rel("E", nodes[a], nodes[b])
        model_out[nodes[a]].append(nodes[b])
        model_in[nodes[b]].append(nodes[a])
    for n in nodes:
        out = sorted(o for _, o in store.relationships(n, "E", Direction.OUT))
        into = sorted(o for _, o in store.relationships(n, "E", Direction.IN))
        assert out == sorted(model_out[n])
        assert into == sorted(model_in[n])
