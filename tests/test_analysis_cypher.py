"""The Cypher walker: clean built-in catalog, seeded-defect detection."""

from repro.analysis import analyze_cypher
from repro.core.connectors.cypher import CYPHER_QUERIES


def codes(queries, operation="test"):
    return [d.code for d in analyze_cypher(operation, queries).diagnostics]


class TestBuiltinCatalog:
    def test_every_operation_is_clean(self):
        for operation, queries in CYPHER_QUERIES.items():
            result = analyze_cypher(operation, queries)
            assert result.diagnostics == [], (
                operation,
                [str(d) for d in result.diagnostics],
            )

    def test_point_lookup_footprint(self):
        result = analyze_cypher(
            "point_lookup", CYPHER_QUERIES["point_lookup"]
        )
        assert result.footprint == {"person"}

    def test_one_hop_footprint(self):
        result = analyze_cypher("one_hop", CYPHER_QUERIES["one_hop"])
        assert result.footprint == {"person", "knows"}


class TestMutations:
    def test_misspelled_label(self):
        assert codes(
            ("MATCH (p:Persn {id: $id}) RETURN p.id",)
        ) == ["QA101"]

    def test_unknown_relationship_type(self):
        assert "QA102" in codes(
            ("MATCH (p:Person {id: $id})-[:KNOWZ]-(f:Person) "
             "RETURN f.id",)
        )

    def test_unknown_property(self):
        assert codes(
            ("MATCH (p:Person {id: $id}) RETURN p.nickname",)
        ) == ["QA103"]

    def test_parse_error(self):
        assert codes(("MATCH (p:Person RETURN",)) == ["QA105"]

    def test_unbound_variable(self):
        assert codes(
            ("MATCH (p:Person {id: $id}) RETURN q.id",)
        ) == ["QA107"]

    def test_wrong_typed_predicate(self):
        assert codes(
            ("MATCH (p:Person) WHERE p.firstName = 42 RETURN p.id",)
        ) == ["QA201"]

    def test_wrong_typed_property_map(self):
        assert codes(
            ("MATCH (p:Person {firstName: 42}) RETURN p.id",)
        ) == ["QA201"]

    def test_swapped_edge_type(self):
        # CONTAINER_OF runs forum -> post; it cannot join two persons
        assert codes(
            ("MATCH (p:Person {id: $id})-[:CONTAINER_OF]->(f:Forum) "
             "RETURN f.id",)
        ) == ["QA202"]

    def test_cartesian_product(self):
        assert codes(
            ("MATCH (a:Person {id: $a}), (b:Person) RETURN a.id, b.id",)
        ) == ["QA301"]

    def test_anchored_disconnected_patterns_are_fine(self):
        assert codes(
            ("MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
             "RETURN a.id, b.id",)
        ) == []

    def test_non_sargable_filter(self):
        assert codes(
            ("MATCH (p:Person) WHERE length(p.firstName) = 5 "
             "RETURN p.id",)
        ) == ["QA302"]
