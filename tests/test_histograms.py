"""Equi-width histograms: construction, range selectivity, EXPLAIN."""

import re

import pytest

from repro.relational import Database
from repro.stats import (
    ColumnStats,
    EquiWidthHistogram,
    Selectivity,
    collect_sql_statistics,
)
from repro.stats.selectivity import RANGE_SELECTIVITY


class TestHistogramArithmetic:
    def test_uniform_fraction_below(self):
        hist = EquiWidthHistogram(low=0.0, high=100.0, counts=[10] * 10)
        assert hist.fraction_below(0.0) == 0.0
        assert hist.fraction_below(50.0) == pytest.approx(0.5)
        assert hist.fraction_below(1000.0) == 1.0

    def test_skew_is_visible(self):
        # 90% of the mass in the first bucket
        hist = EquiWidthHistogram(low=0.0, high=10.0, counts=[90] + [10])
        assert hist.fraction_below(5.0) == pytest.approx(0.9)

    def test_selectivity_ops(self):
        hist = EquiWidthHistogram(low=0.0, high=100.0, counts=[10] * 10)
        assert hist.selectivity("<", 25.0) == pytest.approx(0.25)
        assert hist.selectivity(">", 25.0) == pytest.approx(0.75)

    def test_selectivity_never_zero(self):
        hist = EquiWidthHistogram(low=0.0, high=100.0, counts=[10] * 10)
        assert hist.selectivity("<", -5.0) > 0.0
        assert hist.selectivity(">", 500.0) > 0.0


class TestSelectivityRange:
    def _column(self):
        hist = EquiWidthHistogram(low=0.0, high=100.0, counts=[10] * 10)
        return ColumnStats(distinct=100, histogram=hist)

    def test_prefers_histogram(self):
        assert Selectivity.range(self._column(), ">", 90.0) == pytest.approx(
            0.1
        )

    def test_falls_back_without_histogram(self):
        assert Selectivity.range(ColumnStats(), ">", 90.0) == (
            RANGE_SELECTIVITY
        )
        assert Selectivity.range() == RANGE_SELECTIVITY

    def test_falls_back_for_parameter_markers(self):
        # a Param's value is unknown at plan time -> the caller passes None
        assert Selectivity.range(self._column(), ">", None) == (
            RANGE_SELECTIVITY
        )

    def test_falls_back_for_non_numeric_and_bools(self):
        assert Selectivity.range(self._column(), ">", "2012") == (
            RANGE_SELECTIVITY
        )
        assert Selectivity.range(self._column(), ">", True) == (
            RANGE_SELECTIVITY
        )


@pytest.fixture()
def analyzed_db():
    """A post table whose creationdate is heavily skewed toward 0."""
    db = Database("row")
    db.execute(
        "CREATE TABLE post (id BIGINT PRIMARY KEY, creationdate BIGINT)"
    )
    for pid in range(200):
        # 190 early posts, 10 recent ones
        date = pid if pid < 190 else 10_000 + pid
        db.execute("INSERT INTO post VALUES (?, ?)", (pid, date))
    db.analyze()
    return db


class TestCollection:
    def test_analyze_builds_histograms_for_numeric_columns(
        self, analyzed_db
    ):
        stats = analyzed_db.stats.table("post")
        hist = stats.columns["creationdate"].histogram
        assert hist is not None
        assert hist.total == 200
        assert hist.low == 0.0 and hist.high == 10_199.0

    def test_non_numeric_columns_get_no_histogram(self):
        db = Database("row")
        db.execute(
            "CREATE TABLE person (id BIGINT PRIMARY KEY, city TEXT)"
        )
        db.execute("INSERT INTO person VALUES (?, ?)", (1, "x"))
        db.execute("INSERT INTO person VALUES (?, ?)", (2, "y"))
        db.analyze()
        assert db.stats.table("person").columns["city"].histogram is None

    def test_constant_column_gets_no_histogram(self):
        db = Database("row")
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, k BIGINT)")
        db.execute("INSERT INTO t VALUES (?, ?)", (1, 7))
        db.execute("INSERT INTO t VALUES (?, ?)", (2, 7))
        db.analyze()
        assert db.stats.table("t").columns["k"].histogram is None

    def test_direct_collect_api(self, analyzed_db):
        stats = collect_sql_statistics(analyzed_db.catalog)
        assert stats.table("post").columns["creationdate"].histogram


def _filter_est_rows(plan_text: str) -> float:
    match = re.search(r"Filter\s+\[est_rows=(\d+)\]", plan_text)
    assert match, plan_text
    return float(match.group(1))


class TestExplainEstimates:
    QUERY = "SELECT id FROM post WHERE creationdate > 10000"

    def test_est_rows_reflects_the_skew(self, analyzed_db):
        est = _filter_est_rows(analyzed_db.explain(self.QUERY))
        # 10/200 rows qualify; System R's default would claim 66
        assert est <= 15
        assert abs(est - 10) < abs(est - 200 * RANGE_SELECTIVITY)

    def test_est_rows_matches_default_without_statistics(self):
        db = Database("row")
        db.execute(
            "CREATE TABLE post (id BIGINT PRIMARY KEY, creationdate BIGINT)"
        )
        for pid in range(200):
            date = pid if pid < 190 else 10_000 + pid
            db.execute("INSERT INTO post VALUES (?, ?)", (pid, date))
        est = _filter_est_rows(db.explain(self.QUERY))
        assert est == pytest.approx(200 * RANGE_SELECTIVITY, abs=1.0)

    def test_parameterized_range_keeps_default(self, analyzed_db):
        est = _filter_est_rows(
            analyzed_db.explain(
                "SELECT id FROM post WHERE creationdate > ?"
            )
        )
        assert est == pytest.approx(200 * RANGE_SELECTIVITY, abs=1.0)

    def test_answers_unchanged(self, analyzed_db):
        rows = analyzed_db.query(self.QUERY, ())
        assert sorted(rows) == [(pid,) for pid in range(190, 200)]
