"""Prepare-time validation: connectors reject invalid catalogs at
construction, before any benchmark runs."""

import pytest

from repro.analysis import QueryValidationError
from repro.cli import main
from repro.core import SUT_KEYS, make_connector
from repro.core.connectors.cypher import CYPHER_QUERIES, CypherConnector
from repro.core.connectors.sql import SQL_QUERIES, PostgresConnector


class TestValidCatalogs:
    def test_every_connector_constructs(self):
        for key in SUT_KEYS:
            make_connector(key)


class TestInvalidCatalogs:
    def test_misspelled_label_is_rejected(self):
        class BadCypherConnector(CypherConnector):
            query_catalog = {
                "point_lookup": (
                    "MATCH (p:Persn {id: $id}) RETURN p.id",
                ),
            }

        with pytest.raises(QueryValidationError) as excinfo:
            BadCypherConnector()
        diagnostics = excinfo.value.diagnostics
        assert [d.code for d in diagnostics] == ["QA101"]
        assert "QA101" in str(excinfo.value)

    def test_unknown_table_is_rejected(self):
        class BadSqlConnector(PostgresConnector):
            query_catalog = {
                "point_lookup": ("SELECT id FROM persons WHERE id = ?",),
            }

        with pytest.raises(QueryValidationError) as excinfo:
            BadSqlConnector()
        assert excinfo.value.diagnostics[0].code == "QA104"

    def test_mutated_builtin_catalog_is_rejected(self):
        mutated = dict(CYPHER_QUERIES)
        mutated["one_hop"] = (
            "MATCH (p:Person {id: $id})-[:KNOWZ]-(f:Person) "
            "RETURN f.id AS id ORDER BY id",
        )

        class MutatedConnector(CypherConnector):
            query_catalog = mutated

        with pytest.raises(QueryValidationError):
            MutatedConnector()

    def test_warnings_do_not_block_construction(self):
        # an unanchored scan is a WARNING: flagged by lint --strict but
        # not a construction-time rejection
        class SlowSqlConnector(PostgresConnector):
            query_catalog = dict(SQL_QUERIES)

        SlowSqlConnector()


class TestLintCli:
    def test_lint_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_strict_is_clean(self, capsys):
        assert main(["lint", "--strict"]) == 0
