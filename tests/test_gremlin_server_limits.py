"""Tests for the Gremlin Server's protection mechanisms: step budgets,
evaluation (cost) timeouts, and crash/restart behaviour."""

import pytest

from repro.simclock import CostModel, Ledger, metered
from repro.tinkerpop import (
    Graph,
    GremlinServer,
    GremlinServerError,
    TinkerGraphProvider,
    anon,
    P,
)
from repro.tinkerpop.traversal import (
    StepBudgetExceeded,
    cost_guard,
    step_budget,
)


def ring_graph(n=40):
    provider = TinkerGraphProvider()
    provider.create_index("v", "id")
    g = Graph(provider).traversal()
    vertices = [
        g.addV("v").property("id", i).next() for i in range(n)
    ]
    for i in range(n):
        g.V(vertices[i].id).addE("e").to(vertices[(i + 1) % n]).iterate()
    return provider


def dense_graph(n=10):
    """Complete graph: simple-path enumeration explodes factorially."""
    provider = TinkerGraphProvider()
    provider.create_index("v", "id")
    g = Graph(provider).traversal()
    vertices = [
        g.addV("v").property("id", i).next() for i in range(n)
    ]
    for i in range(n):
        for j in range(i + 1, n):
            g.V(vertices[i].id).addE("e").to(vertices[j]).iterate()
    return provider


class TestStepBudget:
    def test_budget_aborts_runaway_traversal(self):
        provider = dense_graph()
        g = Graph(provider).traversal()
        with pytest.raises(StepBudgetExceeded):
            with step_budget(500):
                # unreachable target: exhaustive simple-path enumeration
                g.V().has("v", "id", 0).repeat(
                    anon().both("e").simplePath()
                ).until(anon().has("id", P.eq(99999))).toList()

    def test_budget_allows_cheap_traversal(self):
        provider = ring_graph()
        g = Graph(provider).traversal()
        with step_budget(10_000):
            assert g.V().has("v", "id", 3).values("id").toList() == [3]

    def test_budget_scope_ends_with_block(self):
        provider = ring_graph()
        g = Graph(provider).traversal()
        with step_budget(10_000):
            pass
        # outside the block: unlimited again
        assert g.V().hasLabel("v").count().next() == 40


class TestCostGuard:
    def test_guard_aborts_on_simulated_time(self):
        provider = dense_graph()
        g = Graph(provider).traversal()
        ledger = Ledger()
        with pytest.raises(StepBudgetExceeded):
            with metered(ledger), cost_guard(
                ledger, CostModel(), limit_us=10.0, check_every=64
            ):
                g.V().has("v", "id", 0).repeat(
                    anon().both("e").simplePath()
                ).until(anon().has("id", P.eq(99999))).toList()

    def test_guard_allows_within_budget(self):
        provider = ring_graph()
        g = Graph(provider).traversal()
        ledger = Ledger()
        with metered(ledger), cost_guard(
            ledger, CostModel(), limit_us=1e9, check_every=64
        ):
            g.V().has("v", "id", 1).both("e").toList()


class TestServerTimeout:
    def test_request_timeout_raises_server_error(self):
        provider = dense_graph()
        server = GremlinServer(provider, request_timeout_us=50.0)
        with pytest.raises(GremlinServerError, match="timeout"):
            server.submit(
                lambda g: g.V().has("v", "id", 0)
                .repeat(anon().both("e").simplePath())
                .until(anon().has("id", P.eq(99999)))
            )
        assert server.requests_timed_out == 1

    def test_timeout_disabled(self):
        provider = ring_graph(10)
        server = GremlinServer(provider, request_timeout_us=None)
        results = server.submit(lambda g: g.V().hasLabel("v").count())
        assert results == [10]

    def test_server_survives_timeouts(self):
        provider = dense_graph()
        server = GremlinServer(provider, request_timeout_us=50.0)
        with pytest.raises(GremlinServerError):
            server.submit(
                lambda g: g.V().has("v", "id", 0)
                .repeat(anon().both("e").simplePath())
                .until(anon().has("id", P.eq(99999)))
            )
        # a timeout is not a crash: the next cheap request succeeds
        assert not server.crashed
        assert server.submit(
            lambda g: g.V().has("v", "id", 1).values("id")
        ) == [1]
