"""The whole-program analyzer: seeded violations, clean run, schema.

Three layers, per the analyzer's contract:

* each QA801-QA805 pass catches its seeded-violation fixture and stays
  silent on the repaired twin of the same code;
* the real engine tree is clean under the committed baseline, and the
  baseline carries no stale entries;
* the ``--format json`` schema and the CLI gate (exit 1 on any
  non-baselined finding) are pinned.
"""

import json

import pytest

from repro.analysis.lockorder import analyze_lock_order_sources
from repro.analysis.program import (
    DEFAULT_BASELINE_PATH,
    analyze_program,
    analyze_program_sources,
    apply_baseline,
    load_baseline,
)
from repro.cli import main


def codes(diagnostics):
    return [d.code for d in diagnostics]


# -- QA801: composed lock-order inversion --------------------------------

QA801_BAD = '''
class Service:
    def path_one(self, locks, txn_id):
        locks.acquire(txn_id, "res_a", "X")
        self.helper_b(locks, txn_id)

    def helper_b(self, locks, txn_id):
        locks.acquire(txn_id, "res_b", "X")

    def path_two(self, locks, txn_id):
        locks.acquire(txn_id, "res_b", "X")
        self.helper_a(locks, txn_id)

    def helper_a(self, locks, txn_id):
        locks.acquire(txn_id, "res_a", "X")
'''

QA801_OK = QA801_BAD.replace(
    'def path_two(self, locks, txn_id):\n        '
    'locks.acquire(txn_id, "res_b", "X")\n        '
    'self.helper_a(locks, txn_id)',
    'def path_two(self, locks, txn_id):\n        '
    'locks.acquire(txn_id, "res_a", "X")\n        '
    'self.helper_b(locks, txn_id)',
)


class TestLockOrderPass:
    def test_seeded_inversion_across_calls(self):
        diags = analyze_program_sources(
            {"fixture.py": QA801_BAD}, passes={"QA801"}
        )
        assert codes(diags) == ["QA801"]
        assert "res_a" in diags[0].message
        assert "res_b" in diags[0].message

    def test_consistent_order_is_silent(self):
        assert (
            analyze_program_sources(
                {"fixture.py": QA801_OK}, passes={"QA801"}
            )
            == []
        )

    def test_intra_function_pass_cannot_see_it(self):
        # the seeded inversion spans a call: each function acquires one
        # lock, so the per-function QA501 pass has nothing to order —
        # only the composed summaries close the cycle
        assert analyze_lock_order_sources({"fixture.py": QA801_BAD}) == []


# -- QA802: release discipline -------------------------------------------

QA802_BAD = '''
def risky(manager, table, key, values):
    txn = manager.begin()
    manager.locks.acquire(txn.txn_id, (table, key), "X")
    table.insert(values)
    txn.commit()
'''

QA802_OK = '''
def careful(manager, table, key, values):
    txn = manager.begin()
    manager.locks.acquire(txn.txn_id, (table, key), "X")
    try:
        table.insert(values)
    except BaseException:
        txn.abort()
        raise
    txn.commit()
'''

QA802_WITH = '''
class Engine:
    def managed(self, values):
        with self.transaction() as txn:
            self.locks.acquire(txn.txn_id, "row", "X")
            self.apply(values)
'''

QA802_TRANSFER = '''
class Engine:
    def boundary(self, key):
        txn = self.txns.begin()
        self.txns.locks.acquire(txn.txn_id, key, "X")
        return txn

    def caller_without_discipline(self, key, values):
        txn = self.boundary(key)
        self.apply(values)
        txn.commit()
'''


class TestReleaseDisciplinePass:
    def test_exception_path_leaks_the_lock(self):
        diags = analyze_program_sources(
            {"fixture.py": QA802_BAD}, passes={"QA802"}
        )
        assert codes(diags) == ["QA802"]

    def test_abort_in_handler_is_enough(self):
        assert (
            analyze_program_sources(
                {"fixture.py": QA802_OK}, passes={"QA802"}
            )
            == []
        )

    def test_releasing_context_manager_is_enough(self):
        assert (
            analyze_program_sources(
                {"fixture.py": QA802_WITH}, passes={"QA802"}
            )
            == []
        )

    def test_ownership_transfer_moves_the_obligation(self):
        # boundary() returns the txn it began: the *caller* must hold
        # the release discipline, and this caller does not
        diags = analyze_program_sources(
            {"fixture.py": QA802_TRANSFER}, passes={"QA802"}
        )
        assert codes(diags) == ["QA802"]
        assert "caller_without_discipline" in diags[0].location.operation


# -- QA803: blocking I/O under a lock ------------------------------------

QA803_BAD = '''
class Engine:
    def flush_with_lock(self, txn_id):
        self.locks.acquire(txn_id, "row", "X")
        self.wal.commit()
        self.locks.release_all(txn_id)
'''

QA803_INDIRECT = '''
class Remote:
    def locked_submit(self, txn_id, script):
        self.locks.acquire(txn_id, "row", "X")
        self.forward(script)
        self.locks.release_all(txn_id)

    def forward(self, script):
        return self.server.submit(script)
'''

QA803_OK = '''
class Engine:
    def flush_after_release(self, txn_id):
        self.locks.acquire(txn_id, "row", "X")
        self.locks.release_all(txn_id)
        self.wal.commit()
'''


class TestBlockingIoPass:
    def test_direct_fsync_under_lock(self):
        diags = analyze_program_sources(
            {"fixture.py": QA803_BAD}, passes={"QA803"}
        )
        assert codes(diags) == ["QA803"]
        assert "wal-fsync" in diags[0].message

    def test_submit_reached_through_a_helper(self):
        diags = analyze_program_sources(
            {"fixture.py": QA803_INDIRECT}, passes={"QA803"}
        )
        assert codes(diags) == ["QA803"]
        assert "gremlin-submit" in diags[0].message
        assert "forward" in diags[0].message  # the witness path

    def test_io_after_release_is_fine(self):
        assert (
            analyze_program_sources(
                {"fixture.py": QA803_OK}, passes={"QA803"}
            )
            == []
        )


# -- QA804: sanitizer trace coverage -------------------------------------

QA804_BAD = '''
class Store:
    def create(self, key, value):
        charge("record_write")
        self._rows[key] = value
        if runtime.TRACE is not None:
            runtime.TRACE.write(("row", key))

    def wipe(self, key):
        self._rows.pop(key)
'''

QA804_FREE = '''
def flush_page(buffer):
    charge("page_write")
    buffer.sync()
'''

QA804_OK = '''
class Store:
    def create(self, key, value):
        charge("record_write")
        self._rows[key] = value
        if runtime.TRACE is not None:
            runtime.TRACE.write(("row", key))

    def wipe(self, key):
        self._rows.pop(key)
        if runtime.TRACE is not None:
            runtime.TRACE.write(("row", key))
'''


class TestTraceCoveragePass:
    def test_untraced_sibling_mutation(self):
        diags = analyze_program_sources(
            {"fixture.py": QA804_BAD}, passes={"QA804"}
        )
        assert codes(diags) == ["QA804"]
        assert "wipe" in diags[0].location.operation

    def test_mutation_charge_without_trace(self):
        diags = analyze_program_sources(
            {"fixture.py": QA804_FREE}, passes={"QA804"}
        )
        assert codes(diags) == ["QA804"]

    def test_traced_twin_is_silent(self):
        assert (
            analyze_program_sources(
                {"fixture.py": QA804_OK}, passes={"QA804"}
            )
            == []
        )


# -- QA805: cache invalidation coverage ----------------------------------

QA805_BAD = '''
class Engine:
    def __init__(self):
        self._plans = EpochKeyedCache(64, name="plans")

    def plan(self, query):
        cached = self._plans.lookup(query)
        if cached is None:
            cached = compile_plan(query)
            self._plans.store(query, cached)
        return cached
'''

QA805_OK = QA805_BAD + '''
    def invalidate(self):
        self._plans.bump_epoch()
'''

QA805_ALIAS = '''
class Engine:
    def __init__(self):
        self._memo = LRUCache(16, name="memo")

    def get(self, key):
        cache = self._memo
        value = cache.get(key)
        if value is None:
            value = expensive(key)
            cache.put(key, value)
        return value
'''


class TestCacheInvalidationPass:
    def test_store_without_epoch_bump(self):
        diags = analyze_program_sources(
            {"fixture.py": QA805_BAD}, passes={"QA805"}
        )
        assert codes(diags) == ["QA805"]
        assert "_plans" in diags[0].location.operation

    def test_bump_anywhere_in_class_is_enough(self):
        assert (
            analyze_program_sources(
                {"fixture.py": QA805_OK}, passes={"QA805"}
            )
            == []
        )

    def test_write_through_local_alias_is_still_seen(self):
        diags = analyze_program_sources(
            {"fixture.py": QA805_ALIAS}, passes={"QA805"}
        )
        assert codes(diags) == ["QA805"]


# -- the real tree -------------------------------------------------------


class TestRealTree:
    def test_clean_under_committed_baseline(self):
        assert analyze_program() == []

    def test_baseline_entries_all_used_and_justified(self):
        entries = load_baseline(DEFAULT_BASELINE_PATH)
        assert entries, "the committed baseline documents the tree"
        raw = analyze_program(baseline=None)
        kept, suppressed, stale = apply_baseline(raw, entries)
        assert kept == []
        assert stale == [], "stale baseline entries must be deleted"
        assert suppressed == len(raw)

    def test_every_pass_runs_on_the_real_tree(self):
        # the no-baseline run must stay confined to the QA8xx family
        raw = analyze_program(baseline=None)
        assert raw, "justified findings exist (they are baselined)"
        assert all(d.code.startswith("QA8") for d in raw)

    def test_qa805_sees_the_compiled_closure_caches(self):
        """Every dialect engine owns an epoch-keyed compiled-closure
        cache, written on compile and invalidated in lockstep with the
        plan cache — QA805 must observe all three facts (a dropped
        ``bump_epoch`` would otherwise serve stale closures after DDL
        or ANALYZE without any diagnostic)."""
        from repro.analysis.program import build_program
        from repro.analysis.program.callgraph import default_sources

        program = build_program(default_sources())
        owners = {
            ("repro.graphdb.engine", "GraphDatabase"),
            ("repro.relational.engine", "Database"),
            ("repro.rdf.engine", "RdfDatabase"),
            ("repro.tinkerpop.server", "GremlinServer"),
        }
        for module, cls in sorted(owners):
            defined = written = invalidated = False
            for summary in program.summaries.values():
                info = summary.info
                if (info.module, info.class_name) != (module, cls):
                    continue
                if (
                    summary.cache_defs.get("_closure_cache")
                    == "EpochKeyedCache"
                ):
                    defined = True
                if "_closure_cache" in summary.cache_writes:
                    written = True
                if "_closure_cache" in summary.cache_invalidations:
                    invalidated = True
            assert defined, f"{module}:{cls} closure cache not tracked"
            assert written, f"{module}:{cls} closure-cache write unseen"
            assert invalidated, (
                f"{module}:{cls} has no closure-cache invalidation path"
            )


# -- CLI: gate + JSON schema ---------------------------------------------


@pytest.fixture
def empty_baseline(tmp_path):
    path = tmp_path / "empty_baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": []}))
    return str(path)


class TestCli:
    def test_program_lint_is_green(self, capsys):
        assert main(["lint", "--program"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_program_json_mode_emits_nothing_when_clean(self, capsys):
        assert main(["lint", "--program", "--format", "json"]) == 0
        assert capsys.readouterr().out == ""

    def test_gate_fails_on_seeded_inversion(
        self, tmp_path, empty_baseline, capsys
    ):
        bad = tmp_path / "inversion.py"
        bad.write_text(QA801_BAD)
        exit_code = main([
            "lint", "--program",
            "--paths", str(bad),
            "--baseline", empty_baseline,
        ])
        assert exit_code == 1
        assert "QA801" in capsys.readouterr().out

    def test_json_schema_is_pinned(
        self, tmp_path, empty_baseline, capsys
    ):
        bad = tmp_path / "fixture.py"
        bad.write_text(QA805_BAD)
        exit_code = main([
            "lint", "--program", "--format", "json",
            "--paths", str(bad),
            "--baseline", empty_baseline,
        ])
        assert exit_code == 1
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            row = json.loads(line)
            assert set(row) == {
                "code",
                "name",
                "severity",
                "dialect",
                "operation",
                "query_index",
                "message",
            }
            assert row["dialect"] == "python"
            assert row["severity"] == "error"
            assert row["code"].startswith("QA8")

    def test_custom_baseline_suppresses(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "fixture.py"
        bad.write_text(QA805_BAD)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "code": "QA805",
                "location": "*Engine._plans",
                "justification": "fixture: exercised by the tests",
            }],
        }))
        exit_code = main([
            "lint", "--program",
            "--paths", str(bad),
            "--baseline", str(baseline),
        ])
        capsys.readouterr()
        assert exit_code == 0

    def test_baseline_requires_justification(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "code": "QA805",
                "location": "*",
                "justification": "  ",
            }],
        }))
        with pytest.raises(ValueError, match="justification"):
            load_baseline(baseline)
