"""DeadlockError cycle reporting: the wait-for graph names the exact
transactions in the cycle, so the victim picker can act on it."""

import pytest

from repro.txn.locks import DeadlockError, LockConflict, LockManager, LockMode

X = LockMode.EXCLUSIVE


def blocked(manager, txn_id, resource):
    """Acquire-or-wait: the harness's conflict path, condensed."""
    with pytest.raises(LockConflict) as excinfo:
        manager.acquire(txn_id, resource, X)
    manager.register_wait(txn_id, excinfo.value.holders)


class TestTwoWayCycle:
    def test_cycle_names_both_transactions(self):
        manager = LockManager()
        manager.acquire(1, "A", X)
        manager.acquire(2, "B", X)
        blocked(manager, 1, "B")  # 1 waits on 2
        with pytest.raises(DeadlockError) as excinfo:
            blocked(manager, 2, "A")  # 2 waits on 1: closes the cycle
        cycle = excinfo.value.cycle
        assert cycle[0] == cycle[-1] == 2
        assert set(cycle) == {1, 2}
        assert len(cycle) == 3

    def test_cycle_is_in_the_message(self):
        manager = LockManager()
        manager.acquire(1, "A", X)
        manager.acquire(2, "B", X)
        blocked(manager, 1, "B")
        with pytest.raises(DeadlockError, match="deadlock among"):
            blocked(manager, 2, "A")

    def test_victim_release_breaks_the_cycle(self):
        manager = LockManager()
        manager.acquire(1, "A", X)
        manager.acquire(2, "B", X)
        blocked(manager, 1, "B")
        with pytest.raises(DeadlockError):
            blocked(manager, 2, "A")
        # the failed wait left the graph unchanged; aborting txn 1
        # removes its edges, so txn 2 can wait (and then acquire)
        manager.release_all(1)
        manager.register_wait(2, {1})
        manager.acquire(2, "A", X)
        assert manager.holders("A") == {2: X}


class TestThreeWayCycle:
    def test_cycle_names_all_three_transactions(self):
        manager = LockManager()
        manager.acquire(1, "A", X)
        manager.acquire(2, "B", X)
        manager.acquire(3, "C", X)
        blocked(manager, 1, "B")  # 1 -> 2
        blocked(manager, 2, "C")  # 2 -> 3
        with pytest.raises(DeadlockError) as excinfo:
            blocked(manager, 3, "A")  # 3 -> 1: closes the cycle
        cycle = excinfo.value.cycle
        assert cycle[0] == cycle[-1] == 3
        assert set(cycle) == {1, 2, 3}
        assert len(cycle) == 4
        # the path walks the wait-for edges in order: 3 -> 1 -> 2 -> 3
        assert cycle == [3, 1, 2, 3]

    def test_unrelated_waiter_is_not_in_the_cycle(self):
        manager = LockManager()
        manager.acquire(1, "A", X)
        manager.acquire(2, "B", X)
        manager.acquire(4, "D", X)
        blocked(manager, 1, "B")  # 1 -> 2
        blocked(manager, 4, "A")  # 4 -> 1: no cycle through 4
        with pytest.raises(DeadlockError) as excinfo:
            blocked(manager, 2, "A")  # 2 -> 1: the 1/2 cycle closes
        assert 4 not in excinfo.value.cycle
