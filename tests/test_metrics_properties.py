"""Property tests for the metric primitives the paper's tables are
computed from: nearest-rank percentiles and windowed throughput."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import LatencyRecorder, ThroughputWindow

samples = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=100,
)
percentiles = st.floats(min_value=0.0, max_value=100.0)


def recorder(values):
    rec = LatencyRecorder()
    for value in values:
        rec.record(value)
    return rec


class TestPercentile:
    @given(samples)
    def test_p0_is_the_minimum(self, values):
        assert recorder(values).percentile(0) == min(values)

    @given(samples)
    def test_p100_is_the_maximum(self, values):
        assert recorder(values).percentile(100) == max(values)

    @given(samples, percentiles)
    def test_result_is_always_a_sample(self, values, p):
        assert recorder(values).percentile(p) in values

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
           percentiles)
    def test_single_sample_dominates_every_percentile(self, value, p):
        assert recorder([value]).percentile(p) == value

    @given(samples, percentiles, percentiles)
    def test_monotone_in_p(self, values, p1, p2):
        low, high = sorted((p1, p2))
        rec = recorder(values)
        assert rec.percentile(low) <= rec.percentile(high)

    @given(samples, st.one_of(
        st.floats(max_value=-1e-9, min_value=-1e6),
        st.floats(min_value=100.0 + 1e-6, max_value=1e6),
    ))
    def test_out_of_range_raises(self, values, p):
        with pytest.raises(ValueError):
            recorder(values).percentile(p)

    def test_empty_recorder_is_nan(self):
        assert math.isnan(LatencyRecorder().percentile(50))


class TestMeanRate:
    def test_zero_duration_is_zero(self):
        window = ThroughputWindow()
        window.record(1.0)
        assert window.mean_rate(0.0) == 0.0

    def test_negative_duration_is_zero(self):
        assert ThroughputWindow().mean_rate(-5.0) == 0.0

    @given(st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        max_size=50,
    ), st.floats(min_value=1e-3, max_value=1e6))
    def test_rate_is_total_over_seconds(self, at_times, duration_ms):
        window = ThroughputWindow()
        for at in at_times:
            window.record(at)
        expected = len(at_times) / (duration_ms / 1000.0)
        assert window.mean_rate(duration_ms) == pytest.approx(expected)
