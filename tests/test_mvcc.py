"""MVCC: the timestamp oracle, version stores, and snapshot reads.

Three layers of the tentpole:

* oracle units — timestamps, the active-snapshot set, per-statement
  read views and their nesting/fallback behaviour;
* :class:`VersionStore` units — sparse metadata, chain walks, deferred
  deletes, re-creates, and the GC watermark assertion that refuses to
  collect past a live reader (the long-running-reader regression);
* end-to-end — engine facades and connectors serve stable reads from a
  held snapshot while writers land, and expose ``isolation_level``
  switching down the whole stack.
"""

import pytest

from repro.core import make_connector
from repro.relational.engine import Database
from repro.snb import GeneratorConfig, generate
from repro.storage.mvcc import VersionStore
from repro.txn import oracle

CONFIG = GeneratorConfig(scale_factor=3, scale_divisor=10000, seed=3)


@pytest.fixture(scope="module")
def dataset():
    return generate(CONFIG)


@pytest.fixture(autouse=True)
def no_leaked_snapshots():
    """Every test must release what it holds (and none may inherit)."""
    assert oracle.ORACLE.active_count() == 0
    assert oracle.CURRENT is None
    yield
    assert oracle.ORACLE.active_count() == 0
    assert oracle.CURRENT is None


class TestOracle:
    def test_advance_is_monotonic(self):
        first = oracle.ORACLE.advance()
        second = oracle.ORACLE.advance()
        assert second == first + 1
        assert oracle.ORACLE.last() == second

    def test_begin_release_track_the_active_set(self):
        assert oracle.ORACLE.oldest_active() is None
        snap = oracle.ORACLE.begin()
        assert oracle.ORACLE.active_count() == 1
        assert oracle.ORACLE.oldest_active() == snap.read_ts
        assert oracle.ORACLE.watermark() == snap.read_ts
        oracle.ORACLE.release(snap)
        assert oracle.ORACLE.oldest_active() is None
        assert oracle.ORACLE.watermark() == oracle.ORACLE.last()

    def test_watermark_is_the_oldest_active(self):
        old = oracle.ORACLE.begin()
        oracle.ORACLE.advance()
        young = oracle.ORACLE.begin()
        assert young.read_ts > old.read_ts
        assert oracle.ORACLE.watermark() == old.read_ts
        oracle.ORACLE.release(old)
        assert oracle.ORACLE.watermark() == young.read_ts
        oracle.ORACLE.release(young)

    def test_isolation_levels_are_validated(self):
        assert oracle.check_isolation_level("snapshot") == "snapshot"
        assert (
            oracle.check_isolation_level("read-committed")
            == "read-committed"
        )
        with pytest.raises(ValueError, match="unknown isolation level"):
            oracle.check_isolation_level("serializable")

    def test_read_view_opens_and_releases_a_snapshot(self):
        with oracle.read_view("snapshot") as snap:
            assert snap is not None
            assert oracle.CURRENT is snap
            assert oracle.ORACLE.active_count() == 1

    def test_read_view_nests_inside_a_held_snapshot(self):
        with oracle.held_snapshot() as outer:
            with oracle.read_view("snapshot") as inner:
                assert inner is outer  # no second snapshot is opened
            assert oracle.ORACLE.active_count() == 1

    def test_read_committed_view_takes_no_snapshot(self):
        with oracle.read_view("read-committed") as snap:
            assert snap is None
            assert oracle.ORACLE.active_count() == 0
            assert oracle.read_mode() == ""

    def test_stale_reads_only_under_an_outdated_snapshot(self):
        assert not oracle.stale_reads()
        with oracle.held_snapshot():
            assert not oracle.stale_reads()
            oracle.ORACLE.advance()  # a write lands after the snapshot
            assert oracle.stale_reads()
        assert not oracle.stale_reads()


class TestVersionStore:
    def test_no_metadata_without_snapshots(self):
        store = VersionStore("t")
        store.stamp("k")
        store.record_update("k", "old")
        assert store.record_delete("k") is False  # physical delete
        assert store.metadata_counts() == {
            "stamps": 0,
            "chain_versions": 0,
            "tombstones": 0,
        }

    def test_snapshot_reads_walk_the_chain(self):
        store = VersionStore("t")
        with oracle.held_snapshot():
            store.stamp("k")
        snap = oracle.ORACLE.begin()
        store.record_update("k", "old")
        try:
            with oracle.reading(snap):
                assert store.stale("k")
                assert store.read("k", "new") == "old"
            assert store.read("k", "new") == "new"  # current view
        finally:
            oracle.ORACLE.release(snap)

    def test_deferred_delete_stays_visible_to_old_snapshots(self):
        store = VersionStore("t")
        snap = oracle.ORACLE.begin()
        try:
            assert store.record_delete("k") is True  # deferred
            with oracle.reading(snap):
                assert store.visible("k")
            assert not store.visible("k")  # current view: deleted
        finally:
            oracle.ORACLE.release(snap)

    def test_undelete_restores_as_if_never_deleted(self):
        store = VersionStore("t")
        snap = oracle.ORACLE.begin()
        try:
            store.record_delete("k")
            assert store.undelete("k") is True
            assert store.visible("k")
            assert store.undelete("k") is False
        finally:
            oracle.ORACLE.release(snap)

    def test_recreate_timeline(self):
        """Pre-delete views keep the old value, the delete->re-add gap
        sees nothing, and post-re-add views see the key again."""
        store = VersionStore("t")
        before_delete = oracle.ORACLE.begin()
        try:
            store.record_delete("k")
            in_gap = oracle.ORACLE.begin()
            try:
                assert store.record_recreate("k", "old") is True
                with oracle.reading(before_delete):
                    assert store.visible("k")
                    assert store.read("k", "new") == "old"
                with oracle.reading(in_gap):
                    assert not store.visible("k")
                assert store.visible("k")  # current view: re-created
            finally:
                oracle.ORACLE.release(in_gap)
        finally:
            oracle.ORACLE.release(before_delete)
        assert store.record_recreate("k") is False  # no tombstone left

    def test_move_rekeys_all_metadata(self):
        store = VersionStore("t")
        with oracle.held_snapshot():
            store.stamp("a")
        snap = oracle.ORACLE.begin()  # read_ts covers the stamped value
        try:
            store.record_update("a", "old")
            store.move("a", "b")
            with oracle.reading(snap):
                assert store.read("b", "new") == "old"
        finally:
            oracle.ORACLE.release(snap)

    def test_gc_refuses_to_pass_a_live_reader(self):
        """Satellite regression: collecting past the oldest active
        snapshot would corrupt a live reader, so gc() raises instead."""
        store = VersionStore("t")
        snap = oracle.ORACLE.begin()
        try:
            store.record_update("k", "old")
            with pytest.raises(ValueError, match="exceeds the oldest"):
                store.gc(snap.read_ts + 1, oldest_active=snap.read_ts)
        finally:
            oracle.ORACLE.release(snap)

    def test_long_running_reader_survives_heavy_write_traffic(self):
        """The automatic collector runs while a snapshot stays open;
        the reader's version must never be reclaimed from under it."""
        store = VersionStore("t", gc_threshold=8)
        with oracle.held_snapshot():
            store.stamp("hot")
        reader = oracle.ORACLE.begin()
        try:
            for i in range(50):  # way past gc_threshold
                store.record_update("hot", f"v{i}")
            assert store.gc_runs > 0  # maybe_gc really fired
            with oracle.reading(reader):
                # the covering version is the value before the storm
                assert store.read("hot", "current") == "v0"
        finally:
            oracle.ORACLE.release(reader)
        reclaimed = store.gc()
        assert reclaimed > 0
        assert store.metadata_counts() == {
            "stamps": 0,
            "chain_versions": 0,
            "tombstones": 0,
        }

    def test_gc_reclaims_tombstones_via_on_reclaim(self):
        removed = []
        store = VersionStore("t", on_reclaim=removed.append)
        snap = oracle.ORACLE.begin()
        try:
            store.record_delete("k")
        finally:
            oracle.ORACLE.release(snap)
        store.gc()
        assert removed == ["k"]
        assert store.metadata_counts()["tombstones"] == 0


class TestRelationalSnapshots:
    def _table(self):
        db = Database(name="mvcc-test")
        db.execute("CREATE TABLE kv (id INT PRIMARY KEY, v TEXT)")
        db.execute("INSERT INTO kv VALUES (1, 'one')")
        return db.catalog.table("kv")

    def test_held_snapshot_ignores_updates_and_deletes(self):
        table = self._table()
        handle = table.lookup("id", 1)[0]
        with oracle.held_snapshot():
            assert table.fetch(handle)[1] == "one"
            table.update(handle, {"v": "two"})
            table.delete(handle)
            # the held view still sees the original committed row
            assert [row for _, row in table.scan()] == [(1, "one")]
            assert table.fetch(handle)[1] == "one"
        assert list(table.scan()) == []  # current view: deleted

    def test_undo_delete_restores_a_tombstoned_row(self):
        table = self._table()
        handle = table.lookup("id", 1)[0]
        with oracle.held_snapshot():
            row = table.fetch(handle)
            table.delete(handle)
            assert table.undo_delete(handle, row) == handle
        assert table.lookup("id", 1) == [handle]


class TestIsolationLevelPlumbing:
    LEVELS = ("snapshot", "read-committed")

    @pytest.mark.parametrize(
        "system", ["postgres-sql", "neo4j-cypher", "virtuoso-sparql"]
    )
    def test_engine_connectors_forward_to_their_database(
        self, dataset, system
    ):
        connector = make_connector(system)
        connector.load(dataset)
        for level in self.LEVELS:
            connector.set_isolation_level(level)
            assert connector.db.isolation_level == level
        with pytest.raises(ValueError, match="unknown isolation level"):
            connector.set_isolation_level("chaos")

    def test_gremlin_connector_forwards_to_the_server(self, dataset):
        connector = make_connector("neo4j-gremlin")
        connector.load(dataset)
        connector.set_isolation_level("read-committed")
        assert connector.server.isolation_level == "read-committed"

    def test_sqlg_connector_reaches_server_and_database(self, dataset):
        connector = make_connector("sqlg")
        connector.load(dataset)
        connector.set_isolation_level("read-committed")
        assert connector.server.isolation_level == "read-committed"
        assert connector.provider.db.isolation_level == "read-committed"

    def test_cluster_connector_fans_out_to_every_pod(self, dataset):
        from repro.cluster import ClusterConnector

        cluster = ClusterConnector("postgres-sql", shards=2, replicas=1)
        cluster.load(dataset)
        cluster.set_isolation_level("read-committed")
        for shard in cluster.primaries:
            assert shard.engine.db.isolation_level == "read-committed"
        for pods in cluster.replicas:
            for replica in pods:
                assert (
                    replica.engine.db.isolation_level == "read-committed"
                )


class TestConnectorSnapshotStability:
    """A held snapshot is immune to the update stream, per system."""

    @pytest.mark.parametrize(
        "system",
        [
            "postgres-sql",
            "neo4j-cypher",
            "virtuoso-sparql",
            "neo4j-gremlin",
            "titan-c",
        ],
    )
    def test_held_reads_are_stable_under_updates(self, dataset, system):
        from repro.core.benchmark import WorkloadParams

        connector = make_connector(system)
        connector.load(dataset)
        pid = WorkloadParams.curate(dataset, count=1, seed=3).person_ids[0]
        snap = oracle.ORACLE.begin()
        try:
            with oracle.reading(snap):
                before = (
                    connector.person_profile(pid),
                    connector.one_hop(pid),
                    connector.person_recent_posts(pid, 10),
                )
            for event in dataset.updates[:40]:
                connector.apply_update(event)
            with oracle.reading(snap):
                after = (
                    connector.person_profile(pid),
                    connector.one_hop(pid),
                    connector.person_recent_posts(pid, 10),
                )
            assert after == before
        finally:
            oracle.ORACLE.release(snap)


class TestDriverIsolation:
    def test_snapshot_readers_never_wait_on_the_latch(self, dataset):
        from repro.driver import InteractiveConfig, InteractiveWorkloadRunner

        def run(level):
            connector = make_connector("postgres-sql")
            connector.load(dataset)
            config = InteractiveConfig(
                readers=4,
                duration_ms=60.0,
                window_ms=15.0,
                isolation_level=level,
            )
            return InteractiveWorkloadRunner(connector, dataset, config).run()

        snapshot = run("snapshot")
        locked = run("read-committed")
        assert snapshot.updates_applied > 0
        assert snapshot.reader_lock_waits == 0
        assert snapshot.reader_lock_wait_us == 0.0
        assert locked.reader_lock_waits > 0
        assert locked.reader_lock_wait_us > 0.0
