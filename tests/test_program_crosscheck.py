"""Runtime/static cross-checks: QA8xx vs the PR 5 fault matrix.

The dynamic sanitizer and the whole-program analyzer claim to police
the same disciplines from opposite sides.  These tests pin that down:
each lock-discipline fault the runtime detector catches from an
injected trace is *also* caught statically when the same behaviour is
written down as source code — and the trace itself is the generator,
so the two views can never drift apart silently.
"""

import pytest

from repro.analysis.lockorder import analyze_lock_order_sources
from repro.analysis.program import analyze_program_sources
from repro.relational.engine import Database
from repro.sanitizer import runtime
from repro.sanitizer.faults import FAULTS, _INJECTORS
from repro.sanitizer.race import analyze_trace


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE person (id BIGINT PRIMARY KEY, name TEXT)"
    )
    database.execute(
        "CREATE TABLE person_email (personid BIGINT, email TEXT)"
    )
    database.execute("INSERT INTO person VALUES (?, ?)", (1, "alice"))
    return database


def _traced(db, mode):
    with runtime.tracing() as collector:
        _INJECTORS[(mode, "sql")](db)
    return collector.events


def _acquire_lines(events, indent="    "):
    """Each injected acquire, replayed verbatim as a source line.

    ``Event.resource`` stores ``repr(resource)``, which for the
    injectors' tuple keys is itself a valid Python expression — the
    trace double-checks the twin.
    """
    by_txn = {}
    for ev in events:
        if ev.kind == "acquire" and "sanitize" in ev.resource:
            by_txn.setdefault(ev.txn_id, []).append(
                f"{indent}locks.acquire(txn_id, {ev.resource}, 'S')"
            )
    return by_txn


class TestUnsortedLocks:
    """unsorted-locks -> runtime QA501/QA502, static QA801."""

    def test_runtime_detector_sees_the_injected_cycle(self, db):
        events = _traced(db, "unsorted-locks")
        codes = {d.code for d in analyze_trace(events)}
        assert codes == FAULTS["unsorted-locks"].expected
        assert codes == {"QA501", "QA502"}

    def test_static_twin_is_flagged_by_qa801(self, db):
        events = _traced(db, "unsorted-locks")
        by_txn = _acquire_lines(events)
        assert len(by_txn) == 2, "the injector overlaps two txns"
        functions = []
        for txn_id, lines in sorted(by_txn.items()):
            functions.append(
                f"def replay_txn_{txn_id}(locks, txn_id):\n"
                + "\n".join(lines)
            )
        source = "\n\n".join(functions) + "\n"
        diags = analyze_program_sources(
            {"twin.py": source}, passes={"QA801"}
        )
        assert [d.code for d in diags] == ["QA801"]
        for resource in ("('sanitize', 'a')", "('sanitize', 'b')"):
            assert resource in diags[0].message

    def test_call_split_twin_needs_the_interprocedural_pass(self, db):
        # same trace, but each second acquire hidden behind a helper:
        # the per-function QA501/QA502 pass sees one acquire per
        # function and goes silent; only summary composition closes
        # the AB/BA cycle
        events = _traced(db, "unsorted-locks")
        by_txn = _acquire_lines(events, indent="")
        functions = []
        for txn_id, lines in sorted(by_txn.items()):
            first, second = lines
            functions.append(
                f"def replay_txn_{txn_id}(locks, txn_id):\n"
                f"    {first}\n"
                f"    helper_{txn_id}(locks, txn_id)\n\n"
                f"def helper_{txn_id}(locks, txn_id):\n"
                f"    {second}"
            )
        source = "\n\n".join(functions) + "\n"
        assert analyze_lock_order_sources({"twin.py": source}) == []
        diags = analyze_program_sources(
            {"twin.py": source}, passes={"QA801"}
        )
        assert [d.code for d in diags] == ["QA801"]


class TestLockAcrossCommit:
    """lock-across-commit -> runtime QA602, static QA802."""

    def test_runtime_detector_sees_the_leak(self, db):
        events = _traced(db, "lock-across-commit")
        codes = {d.code for d in analyze_trace(events)}
        assert codes == FAULTS["lock-across-commit"].expected
        assert codes == {"QA602"}

    def test_static_twin_is_flagged_by_qa802(self, db):
        events = _traced(db, "lock-across-commit")
        lines = ["def replay(manager):", "    txn = manager.begin()"]
        for ev in events:
            if ev.kind == "commit":
                lines.append("    txn.commit()")
            elif ev.kind == "acquire" and "sanitize" in ev.resource:
                lines.append(
                    f"    manager.locks.acquire("
                    f"txn.txn_id, {ev.resource}, 'X')"
                )
        source = "\n".join(lines) + "\n"
        diags = analyze_program_sources(
            {"twin.py": source}, passes={"QA802"}
        )
        assert [d.code for d in diags] == ["QA802"]


class TestUnlockedWriteCoverage:
    """unlocked-write -> runtime QA601 presupposes the write is
    *traced*; QA804 is the static guarantee that it stays traced."""

    def test_runtime_detector_needs_the_trace_hook(self, db):
        # QA601 only fires because the engine's write path emits a
        # trace event; two concurrent untraced writes are invisible
        events = _traced(db, "unlocked-write")
        codes = {d.code for d in analyze_trace(events)}
        assert codes == FAULTS["unlocked-write"].expected
        assert "QA601" in codes
        assert any(e.kind == "write" for e in events)

    def test_traced_write_path_passes_qa804(self):
        import repro.rdf.triples as triples_mod

        source = _module_source(triples_mod)
        diags = analyze_program_sources(
            {"triples.py": source}, passes={"QA804"}
        )
        # the one survivor is the MVCC physical-reclaim primitive: its
        # logical delete was traced at the remove() site, so it stays
        # in the committed baseline rather than double-counting
        assert [d.location.operation for d in diags] == [
            "triples:TripleStore._delete_physical"
        ]

    def test_stripping_the_hook_is_caught_statically(self):
        # delete the runtime.TRACE blocks from the real module: the
        # exact regression QA804 exists to catch before runtime
        import repro.rdf.triples as triples_mod

        source = _module_source(triples_mod)
        hook = (
            "        if runtime.TRACE is not None:\n"
            '            runtime.TRACE.write(("rdf-subject", s))\n'
        )
        recreate_hook = (
            "            if runtime.TRACE is not None:\n"
            '                runtime.TRACE.write(("rdf-subject", s))\n'
        )
        assert source.count(hook) == 2
        assert source.count(recreate_hook) == 1
        stripped = source.replace(hook, "").replace(recreate_hook, "")
        diags = analyze_program_sources(
            {"triples.py": stripped}, passes={"QA804"}
        )
        assert sorted(d.location.operation for d in diags) == [
            "triples:TripleStore.add",
            "triples:TripleStore.remove",
        ]
        assert all(d.code == "QA804" for d in diags)


def _module_source(module):
    from pathlib import Path

    return Path(module.__file__).read_text()
