"""Public benchmarking API.

* :mod:`repro.core.connectors` — one :class:`Connector` per system/
  language combination from the paper (8 total).
* :mod:`repro.core.benchmark`  — latency suites (Tables 2–3), dataset
  statistics (Table 1), and helpers shared by the benches.
* :mod:`repro.core.metrics`    — latency/throughput collection.
* :mod:`repro.core.report`     — paper-style text tables.

Quickstart::

    from repro.core import make_connector, SUT_KEYS
    from repro.snb import GeneratorConfig, generate

    dataset = generate(GeneratorConfig(scale_factor=3))
    connector = make_connector("postgres-sql")
    connector.load(dataset)
    print(connector.point_lookup(dataset.persons[0].id))
"""

from repro.core.connectors import SUT_KEYS, Connector, make_connector
from repro.core.benchmark import LatencyBenchmark, dataset_statistics
from repro.core.metrics import LatencyRecorder, ThroughputWindow
from repro.core.report import render_table

__all__ = [
    "Connector",
    "make_connector",
    "SUT_KEYS",
    "LatencyBenchmark",
    "dataset_statistics",
    "LatencyRecorder",
    "ThroughputWindow",
    "render_table",
]
