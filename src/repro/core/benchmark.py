"""Benchmark harnesses shared by the benches: parameters, latency suites,
and dataset statistics.

Latencies are *simulated*: every operation runs inside a cost ledger and
is priced by the :class:`CostModel` (see ``repro.simclock.costmodel``).
Queries are executed on the static snapshot with no concurrency, 100
repetitions per query type, exactly as in Section 4.2.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field

from repro.core.connectors.base import Connector, OperationFailed
from repro.core.metrics import LatencyRecorder
from repro.simclock import CostModel, meter
from repro.snb.datagen import SnbDataset
from repro.snb.serializer import raw_size_bytes

#: the four micro-benchmark query types of Tables 2-3
MICRO_QUERIES = ["point_lookup", "one_hop", "two_hop", "shortest_path"]


@dataclass
class WorkloadParams:
    """Curated query parameters (LDBC 'parameter curation' analogue).

    Persons are sampled among those with at least one friend; shortest
    path pairs are guaranteed reachable within a few hops, as the LDBC
    driver's correlated parameter selection produces.
    """

    person_ids: list[int] = field(default_factory=list)
    message_ids: list[int] = field(default_factory=list)
    path_pairs: list[tuple[int, int]] = field(default_factory=list)

    @staticmethod
    def curate(
        dataset: SnbDataset, count: int = 25, seed: int = 1
    ) -> "WorkloadParams":
        rng = random.Random(seed)
        adjacency: dict[int, list[int]] = {}
        for knows in dataset.knows:
            adjacency.setdefault(knows.person1, []).append(knows.person2)
            adjacency.setdefault(knows.person2, []).append(knows.person1)
        connected = sorted(adjacency)
        if not connected:
            raise ValueError("dataset has no friendships to benchmark")
        person_ids = [
            connected[rng.randrange(len(connected))] for _ in range(count)
        ]
        message_ids = [
            m.id
            for m in rng.sample(
                dataset.posts, min(count, len(dataset.posts))
            )
        ]
        path_pairs = []
        for source in person_ids:
            # distance 2-3: LDBC's parameter curation picks correlated
            # persons; longer pairs also make Gremlin's simple-path
            # enumeration combinatorially explode in *real* time
            target = _bfs_pick(adjacency, source, min_d=2, max_d=3, rng=rng)
            if target is not None:
                path_pairs.append((source, target))
        if not path_pairs:  # extremely sparse graph: fall back to friends
            source = connected[0]
            path_pairs.append((source, adjacency[source][0]))
        return WorkloadParams(person_ids, message_ids, path_pairs)


def _bfs_pick(
    adjacency: dict[int, list[int]],
    source: int,
    *,
    min_d: int,
    max_d: int,
    rng: random.Random,
) -> int | None:
    """A random node whose distance from ``source`` is in [min_d, max_d]."""
    dist = {source: 0}
    queue = deque([source])
    candidates = []
    while queue:
        node = queue.popleft()
        if dist[node] >= max_d:
            continue
        for neighbour in adjacency.get(node, ()):
            if neighbour not in dist:
                dist[neighbour] = dist[node] + 1
                if dist[neighbour] >= min_d:
                    candidates.append(neighbour)
                queue.append(neighbour)
    if not candidates:
        return None
    return candidates[rng.randrange(len(candidates))]


class LatencyBenchmark:
    """Runs the Section 4.2 read-only micro benchmark on one connector."""

    def __init__(
        self,
        dataset: SnbDataset,
        *,
        repetitions: int = 100,
        cost_model: CostModel | None = None,
        seed: int = 1,
    ) -> None:
        self.dataset = dataset
        self.repetitions = repetitions
        self.model = cost_model or CostModel()
        self.params = WorkloadParams.curate(dataset, seed=seed)

    def measure(self, connector: Connector, op_name: str) -> LatencyRecorder:
        """Run one query type ``repetitions`` times; DNF aborts the type."""
        recorder = LatencyRecorder(op_name)
        for i in range(self.repetitions):
            args = self._args_for(op_name, i)
            try:
                with meter() as ledger:
                    getattr(connector, op_name)(*args)
            except OperationFailed:
                # the paper's '-': unable to complete in reasonable time
                recorder.samples_ms.clear()
                return recorder
            recorder.record(ledger.cost_us(self.model) / 1000.0)
        return recorder

    def run(self, connector: Connector) -> dict[str, float]:
        """Mean latency (ms) per micro query; NaN marks DNF."""
        results = {}
        for op_name in MICRO_QUERIES:
            recorder = self.measure(connector, op_name)
            results[op_name] = recorder.mean() if recorder.count else math.nan
        return results

    def _args_for(self, op_name: str, i: int) -> tuple:
        persons = self.params.person_ids
        if op_name == "shortest_path":
            pair = self.params.path_pairs[i % len(self.params.path_pairs)]
            return pair
        if op_name in ("message_content", "message_creator",
                       "message_forum", "message_replies"):
            return (self.params.message_ids[i % len(self.params.message_ids)],)
        return (persons[i % len(persons)],)


def dataset_statistics(dataset: SnbDataset) -> dict[str, float]:
    """Table 1's dataset columns: vertex/edge counts and raw file size."""
    return {
        "vertices": dataset.vertex_count(),
        "edges": dataset.edge_count(),
        "raw_bytes": raw_size_bytes(dataset),
    }
