"""Connector registry: the eight system/language combinations.

+------------------+-----------+----------+--------------------------------+
| key              | system    | language | backend                        |
+==================+===========+==========+================================+
| neo4j-cypher     | Neo4j     | Cypher   | native graph store             |
| neo4j-gremlin    | Neo4j     | Gremlin  | native graph store + server    |
| titan-c          | Titan-C   | Gremlin  | LSM KV (Cassandra) + server    |
| titan-b          | Titan-B   | Gremlin  | embedded B-tree KV + server    |
| sqlg             | Sqlg      | Gremlin  | row-store RDBMS + server       |
| postgres-sql     | Postgres  | SQL      | row-store RDBMS                |
| virtuoso-sql     | Virtuoso  | SQL      | column-store RDBMS             |
| virtuoso-sparql  | Virtuoso  | SPARQL   | indexed triple table           |
+------------------+-----------+----------+--------------------------------+
"""

from repro.core.connectors.base import Connector, OperationFailed
from repro.core.connectors.cypher import CypherConnector
from repro.core.connectors.gremlin import (
    GremlinConnector,
    Neo4jGremlinConnector,
    SqlgConnector,
    TitanBerkeleyConnector,
    TitanCassandraConnector,
    load_dataset_into_provider,
)
from repro.core.connectors.sparql import VirtuosoSparqlConnector
from repro.core.connectors.sql import (
    PostgresConnector,
    SqlConnector,
    VirtuosoSqlConnector,
)

_REGISTRY: dict[str, type[Connector]] = {
    cls.key: cls
    for cls in (
        CypherConnector,
        Neo4jGremlinConnector,
        TitanCassandraConnector,
        TitanBerkeleyConnector,
        SqlgConnector,
        PostgresConnector,
        VirtuosoSqlConnector,
        VirtuosoSparqlConnector,
    )
}

#: all registry keys in the paper's table order; the "cluster" key is
#: deliberately absent — the paper's tables compare single-node systems,
#: and the sharded deployment is opted into per harness
SUT_KEYS = [
    "neo4j-cypher",
    "neo4j-gremlin",
    "titan-c",
    "titan-b",
    "sqlg",
    "postgres-sql",
    "virtuoso-sql",
    "virtuoso-sparql",
]


def _register_cluster() -> None:
    # registered lazily: the cluster coordinator composes the single-node
    # classes (its load() instantiates per-shard engines through this
    # registry), so importing it eagerly here would be a cycle whenever
    # repro.cluster itself is imported first
    if "cluster" not in _REGISTRY:
        from repro.cluster.connector import ClusterConnector

        _REGISTRY[ClusterConnector.key] = ClusterConnector


def make_connector(key: str) -> Connector:
    """Instantiate a fresh (empty) connector by registry key."""
    if key == "cluster":
        _register_cluster()
    try:
        cls = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown SUT {key!r}; known: {sorted({*_REGISTRY, 'cluster'})}"
        ) from None
    return cls()


def __getattr__(name: str):  # PEP 562: lazy re-export, avoids the cycle
    if name == "ClusterConnector":
        from repro.cluster.connector import ClusterConnector

        return ClusterConnector
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "ClusterConnector",
    "Connector",
    "OperationFailed",
    "make_connector",
    "SUT_KEYS",
    "CypherConnector",
    "GremlinConnector",
    "Neo4jGremlinConnector",
    "TitanCassandraConnector",
    "TitanBerkeleyConnector",
    "SqlgConnector",
    "SqlConnector",
    "PostgresConnector",
    "VirtuosoSqlConnector",
    "VirtuosoSparqlConnector",
    "load_dataset_into_provider",
]
