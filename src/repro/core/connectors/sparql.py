"""Virtuoso (SPARQL) connector: the RDF single-table configuration.

Entities become IRIs (``sn:pers123``); every attribute and edge becomes a
triple, and edges that carry properties (knows / membership / likes) add a
reified statement node — the triple blow-up whose index maintenance cost
the paper blames for SPARQL's ~3x slower writes.

Shortest path: SPARQL 1.1 property paths do not expose path *length*, so
as in the LDBC reference implementation the client runs an iterative BFS,
one frontier query per level (``FILTER(?s IN (...))``).
"""

from __future__ import annotations

from repro.core.connectors.base import Connector
from repro.rdf import RdfDatabase
from repro.simclock.ledger import charge
from repro.snb.datagen import SnbDataset
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
)


def _pers(pid: int) -> str:
    return f"sn:pers{pid}"


def _forum(fid: int) -> str:
    return f"sn:forum{fid}"


def _msg(mid: int) -> str:
    return f"sn:msg{mid}"


def _tag(tid: int) -> str:
    return f"sn:tag{tid}"


def _place(pid: int) -> str:
    return f"sn:place{pid}"


def _org(oid: int) -> str:
    return f"sn:org{oid}"


#: every read query the connector issues, by operation.  LIMIT-bearing
#: queries are stored without the clause (appended at call time);
#: ``shortest_path`` substitutes the frontier node IRI for ``$node``.
#: Inserts go through :meth:`RdfDatabase.insert_triples` and carry no
#: query text.  Validated against the schema catalog (see
#: :mod:`repro.analysis`) at construction.
SPARQL_QUERIES: dict[str, tuple[str, ...]] = {
    "point_lookup": (
        "SELECT ?fn ?ln ?g WHERE { ?p snb:id $id . "
        "?p rdf:type snb:Person . ?p snb:firstName ?fn . "
        "?p snb:lastName ?ln . ?p snb:gender ?g }",
    ),
    "one_hop": (
        "SELECT ?fid WHERE { ?p snb:id $id . ?p rdf:type snb:Person . "
        "?p snb:knows ?f . ?f snb:id ?fid } ORDER BY ?fid",
    ),
    "two_hop": (
        "SELECT DISTINCT ?fofid WHERE { ?p snb:id $id . "
        "?p rdf:type snb:Person . ?p snb:knows ?f . "
        "?f snb:knows ?fof . ?fof snb:id ?fofid . "
        "FILTER(?fofid != $id) } ORDER BY ?fofid",
    ),
    "shortest_path": (
        "SELECT ?n WHERE { $node snb:knows ?n }",
    ),
    "person_profile": (
        "SELECT ?fn ?ln ?g ?bd ?b ?cid WHERE { ?p snb:id $id . "
        "?p rdf:type snb:Person . ?p snb:firstName ?fn . "
        "?p snb:lastName ?ln . ?p snb:gender ?g . "
        "?p snb:birthday ?bd . ?p snb:browserUsed ?b . "
        "?p snb:isLocatedIn ?c . ?c snb:id ?cid }",
    ),
    "person_recent_posts": (
        "SELECT ?mid ?content ?d WHERE { ?p snb:id $id . "
        "?p rdf:type snb:Person . ?m snb:hasCreator ?p . "
        "?m snb:id ?mid . ?m snb:content ?content . "
        "?m snb:creationDate ?d } ORDER BY DESC(?d) DESC(?mid)",
    ),
    "person_friends": (
        "SELECT ?fid ?fn ?ln WHERE { ?p snb:id $id . "
        "?p rdf:type snb:Person . ?p snb:knows ?f . ?f snb:id ?fid . "
        "?f snb:firstName ?fn . ?f snb:lastName ?ln } ORDER BY ?fid",
    ),
    "message_content": (
        "SELECT ?content ?d WHERE { ?m snb:id $id . "
        "?m snb:content ?content . ?m snb:creationDate ?d }",
    ),
    "message_creator": (
        "SELECT ?pid ?fn ?ln WHERE { ?m snb:id $id . "
        "?m snb:content ?c . ?m snb:hasCreator ?p . ?p snb:id ?pid . "
        "?p snb:firstName ?fn . ?p snb:lastName ?ln }",
    ),
    "message_forum": (
        "SELECT ?fid ?title ?modid WHERE { ?m snb:id $id . "
        "?m rdf:type snb:Post . ?f snb:containerOf ?m . "
        "?f snb:id ?fid . ?f snb:title ?title . "
        "?f snb:hasModerator ?mod . ?mod snb:id ?modid }",
        "SELECT ?fid ?title ?modid WHERE { ?m snb:id $id . "
        "?m rdf:type snb:Comment . ?m snb:rootPost ?root . "
        "?f snb:containerOf ?root . ?f snb:id ?fid . "
        "?f snb:title ?title . ?f snb:hasModerator ?mod . "
        "?mod snb:id ?modid }",
    ),
    "message_replies": (
        "SELECT ?cid ?pid ?d WHERE { ?m snb:id $id . "
        "?m snb:content ?x . ?c snb:replyOf ?m . ?c snb:id ?cid . "
        "?c snb:hasCreator ?p . ?p snb:id ?pid . "
        "?c snb:creationDate ?d } ORDER BY ?cid",
    ),
    "complex_two_hop": (
        "SELECT DISTINCT ?fofid ?fn ?ln WHERE { ?p snb:id $id . "
        "?p rdf:type snb:Person . ?p snb:knows ?f . "
        "?f snb:knows ?fof . ?fof snb:id ?fofid . "
        "?fof snb:firstName ?fn . ?fof snb:lastName ?ln . "
        "FILTER(?fofid != $id) } ORDER BY ?fofid",
    ),
    "friends_recent_posts": (
        "SELECT ?mid ?fid ?content ?d WHERE { ?p snb:id $id . "
        "?p rdf:type snb:Person . ?p snb:knows ?f . ?f snb:id ?fid . "
        "?m snb:hasCreator ?f . ?m snb:id ?mid . "
        "?m snb:content ?content . ?m snb:creationDate ?d } "
        "ORDER BY DESC(?d) DESC(?mid)",
    ),
    # -- insert templates -----------------------------------------------------
    # Anchored SELECT patterns mirroring the ``_*_triples`` builders
    # below, pattern for pattern: the linter derives each insert's
    # schema footprint from these, and the cross-dialect QA403 pass
    # compares it against the other dialects' insert footprints.
    # Reified-statement subjects (``sn:knows{n}`` …) carry only their
    # statement predicates here — their ``creationDate`` literal is an
    # annotation of the statement, not of a schema entity.
    "add_person": (
        "SELECT ?p WHERE { ?p snb:id $id . ?p rdf:type snb:Person . "
        "?p snb:firstName ?fn . ?p snb:lastName ?ln . "
        "?p snb:gender ?g . ?p snb:birthday ?bd . "
        "?p snb:creationDate ?cd . ?p snb:browserUsed ?b . "
        "?p snb:locationIP ?ip . ?p snb:isLocatedIn ?city . "
        "?city rdf:type snb:Place . ?p snb:speaks ?lang . "
        "?p snb:email ?em . ?p snb:hasInterest ?t . "
        "?t rdf:type snb:Tag . ?p snb:studyAt ?u . "
        "?p snb:workAt ?co }",
    ),
    "add_friendship": (
        "SELECT ?f WHERE { ?p snb:id $id1 . ?f snb:id $id2 . "
        "?p rdf:type snb:Person . ?f rdf:type snb:Person . "
        "?p snb:knows ?f . ?f snb:knows ?p . "
        "?s snb:knowsFrom ?p . ?s snb:knowsTo ?f }",
    ),
    "add_forum": (
        "SELECT ?f WHERE { ?f snb:id $id . ?f rdf:type snb:Forum . "
        "?f snb:title ?t . ?f snb:creationDate ?cd . "
        "?f snb:hasModerator ?mod . ?f snb:hasTag ?tag . "
        "?tag rdf:type snb:Tag }",
    ),
    "add_forum_membership": (
        "SELECT ?f WHERE { ?f snb:id $fid . ?p snb:id $pid . "
        "?f rdf:type snb:Forum . ?p rdf:type snb:Person . "
        "?f snb:hasMember ?p . ?s snb:memberForum ?f . "
        "?s snb:memberPerson ?p . ?s snb:joinDate ?jd }",
    ),
    "add_post": (
        "SELECT ?m WHERE { ?m snb:id $id . ?m rdf:type snb:Post . "
        "?m snb:creationDate ?cd . ?m snb:content ?c . "
        "?m snb:length ?len . ?m snb:browserUsed ?b . "
        "?m snb:locationIP ?ip . ?m snb:language ?lang . "
        "?m snb:hasCreator ?p . ?f snb:containerOf ?m . "
        "?m snb:isLocatedIn ?ctry . ?m snb:hasTag ?t . "
        "?t rdf:type snb:Tag }",
    ),
    "add_comment": (
        "SELECT ?m WHERE { ?m snb:id $id . ?m rdf:type snb:Comment . "
        "?m snb:creationDate ?cd . ?m snb:content ?c . "
        "?m snb:length ?len . ?m snb:browserUsed ?b . "
        "?m snb:locationIP ?ip . ?m snb:hasCreator ?p . "
        "?m snb:replyOf ?r . ?m snb:rootPost ?rp . "
        "?m snb:isLocatedIn ?ctry . ?m snb:hasTag ?t . "
        "?t rdf:type snb:Tag }",
    ),
    "add_like": (
        "SELECT ?p WHERE { ?p snb:id $pid . ?m snb:id $mid . "
        "?p rdf:type snb:Person . ?p snb:likes ?m . "
        "?s snb:likePerson ?p . ?s snb:likeMessage ?m }",
    ),
}


class VirtuosoSparqlConnector(Connector):
    key = "virtuoso-sparql"
    system = "Virtuoso"
    language = "SPARQL"

    dialect = "sparql"
    query_catalog = SPARQL_QUERIES

    def __init__(self) -> None:
        self._validate_queries()
        self.db = RdfDatabase("virtuoso-rdf")
        self._statement_seq = 0

    def sanitize_targets(self) -> dict[str, object]:
        return {"rdf": self.db.store, "wal": self.db.wal}

    # -- loading --------------------------------------------------------------------

    def load(self, dataset: SnbDataset) -> None:
        triples: list[tuple] = []
        for place in dataset.places:
            iri = _place(place.id)
            triples += [
                (iri, "rdf:type", "snb:Place"),
                (iri, "snb:id", place.id),
                (iri, "snb:name", place.name),
            ]
            if place.part_of is not None:
                triples.append((iri, "snb:isPartOf", _place(place.part_of)))
        for tc in dataset.tag_classes:
            iri = f"sn:tagclass{tc.id}"
            triples += [
                (iri, "rdf:type", "snb:TagClass"),
                (iri, "snb:id", tc.id),
                (iri, "snb:name", tc.name),
            ]
        for tag in dataset.tags:
            iri = _tag(tag.id)
            triples += [
                (iri, "rdf:type", "snb:Tag"),
                (iri, "snb:id", tag.id),
                (iri, "snb:name", tag.name),
                (iri, "snb:hasType", f"sn:tagclass{tag.tag_class}"),
            ]
        for org in dataset.organisations:
            iri = _org(org.id)
            triples += [
                (iri, "rdf:type", "snb:Organisation"),
                (iri, "snb:id", org.id),
                (iri, "snb:name", org.name),
                (iri, "snb:isLocatedIn", _place(org.place)),
            ]
        for person in dataset.persons:
            triples += self._person_triples(person)
        for knows in dataset.knows:
            triples += self._knows_triples(knows)
        for forum in dataset.forums:
            triples += self._forum_triples(forum)
        for m in dataset.memberships:
            triples += self._membership_triples(m)
        for post in dataset.posts:
            triples += self._post_triples(post)
        for comment in dataset.comments:
            triples += self._comment_triples(comment)
        for like in dataset.likes:
            triples += self._like_triples(like)
        self.db.insert_triples(triples)
        self.db.analyze()

    def _person_triples(self, person: Person) -> list[tuple]:
        iri = _pers(person.id)
        triples = [
            (iri, "rdf:type", "snb:Person"),
            (iri, "snb:id", person.id),
            (iri, "snb:firstName", person.first_name),
            (iri, "snb:lastName", person.last_name),
            (iri, "snb:gender", person.gender),
            (iri, "snb:birthday", person.birthday),
            (iri, "snb:creationDate", person.creation_date),
            (iri, "snb:browserUsed", person.browser_used),
            (iri, "snb:locationIP", person.location_ip),
            (iri, "snb:isLocatedIn", _place(person.city)),
        ]
        for language in person.speaks:
            triples.append((iri, "snb:speaks", language))
        for email in person.emails:
            triples.append((iri, "snb:email", email))
        for tag_id in person.interests:
            triples.append((iri, "snb:hasInterest", _tag(tag_id)))
        if person.university is not None:
            triples.append((iri, "snb:studyAt", _org(person.university)))
        if person.company is not None:
            triples.append((iri, "snb:workAt", _org(person.company)))
        return triples

    def _knows_triples(self, knows: Knows) -> list[tuple]:
        self._statement_seq += 1
        stmt = f"sn:knows{self._statement_seq}"
        return [
            (_pers(knows.person1), "snb:knows", _pers(knows.person2)),
            (_pers(knows.person2), "snb:knows", _pers(knows.person1)),
            (stmt, "snb:knowsFrom", _pers(knows.person1)),
            (stmt, "snb:knowsTo", _pers(knows.person2)),
            (stmt, "snb:creationDate", knows.creation_date),
        ]

    def _forum_triples(self, forum: Forum) -> list[tuple]:
        iri = _forum(forum.id)
        triples = [
            (iri, "rdf:type", "snb:Forum"),
            (iri, "snb:id", forum.id),
            (iri, "snb:title", forum.title),
            (iri, "snb:creationDate", forum.creation_date),
            (iri, "snb:hasModerator", _pers(forum.moderator)),
        ]
        for tag_id in forum.tags:
            triples.append((iri, "snb:hasTag", _tag(tag_id)))
        return triples

    def _membership_triples(self, m: ForumMembership) -> list[tuple]:
        self._statement_seq += 1
        stmt = f"sn:memb{self._statement_seq}"
        return [
            (_forum(m.forum), "snb:hasMember", _pers(m.person)),
            (stmt, "snb:memberForum", _forum(m.forum)),
            (stmt, "snb:memberPerson", _pers(m.person)),
            (stmt, "snb:joinDate", m.join_date),
        ]

    def _post_triples(self, post: Post) -> list[tuple]:
        iri = _msg(post.id)
        triples = [
            (iri, "rdf:type", "snb:Post"),
            (iri, "snb:id", post.id),
            (iri, "snb:creationDate", post.creation_date),
            (iri, "snb:content", post.content),
            (iri, "snb:length", post.length),
            (iri, "snb:browserUsed", post.browser_used),
            (iri, "snb:locationIP", post.location_ip),
            (iri, "snb:language", post.language),
            (iri, "snb:hasCreator", _pers(post.creator)),
            (_forum(post.forum), "snb:containerOf", iri),
            (iri, "snb:isLocatedIn", _place(post.country)),
        ]
        for tag_id in post.tags:
            triples.append((iri, "snb:hasTag", _tag(tag_id)))
        return triples

    def _comment_triples(self, comment: Comment) -> list[tuple]:
        iri = _msg(comment.id)
        triples = [
            (iri, "rdf:type", "snb:Comment"),
            (iri, "snb:id", comment.id),
            (iri, "snb:creationDate", comment.creation_date),
            (iri, "snb:content", comment.content),
            (iri, "snb:length", comment.length),
            (iri, "snb:browserUsed", comment.browser_used),
            (iri, "snb:locationIP", comment.location_ip),
            (iri, "snb:hasCreator", _pers(comment.creator)),
            (iri, "snb:replyOf", _msg(comment.reply_of)),
            (iri, "snb:rootPost", _msg(comment.root_post)),
            (iri, "snb:isLocatedIn", _place(comment.country)),
        ]
        for tag_id in comment.tags:
            triples.append((iri, "snb:hasTag", _tag(tag_id)))
        return triples

    def _like_triples(self, like: Like) -> list[tuple]:
        self._statement_seq += 1
        stmt = f"sn:like{self._statement_seq}"
        return [
            (_pers(like.person), "snb:likes", _msg(like.message)),
            (stmt, "snb:likePerson", _pers(like.person)),
            (stmt, "snb:likeMessage", _msg(like.message)),
            (stmt, "snb:creationDate", like.creation_date),
        ]

    def size_bytes(self) -> int:
        return self.db.size_bytes()

    # -- reads ------------------------------------------------------------------------

    def _query(self, sparql: str, params: dict | None = None) -> list[tuple]:
        charge("client_rtt")
        return self.db.execute(sparql, params)

    def point_lookup(self, person_id: int) -> tuple:
        rows = self._query(
            SPARQL_QUERIES["point_lookup"][0], {"id": person_id}
        )
        return rows[0] if rows else ()

    def one_hop(self, person_id: int) -> list[int]:
        rows = self._query(SPARQL_QUERIES["one_hop"][0], {"id": person_id})
        return [r[0] for r in rows]

    def two_hop(self, person_id: int) -> list[int]:
        rows = self._query(SPARQL_QUERIES["two_hop"][0], {"id": person_id})
        return [r[0] for r in rows]

    def shortest_path(self, person1: int, person2: int) -> int | None:
        if person1 == person2:
            return 0
        target = _pers(person2)
        frontier = [_pers(person1)]
        seen = set(frontier)
        for depth in range(1, 13):
            next_frontier = []
            found = False
            for node in frontier:
                # one SPARQL query per frontier node (the LDBC reference
                # SPARQL implementation's expansion style); the node IRI
                # is inlined, so every query re-parses and re-translates.
                # The whole level is expanded before the target check —
                # the client batches per level.
                rows = self._query(
                    SPARQL_QUERIES["shortest_path"][0].replace(
                        "$node", node
                    )
                )
                for (neighbour,) in rows:
                    if neighbour == target:
                        found = True
                    elif neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            if found:
                return depth
            if not next_frontier:
                return None
            frontier = next_frontier
        return None

    def person_profile(self, person_id: int) -> tuple:
        rows = self._query(
            SPARQL_QUERIES["person_profile"][0], {"id": person_id}
        )
        return rows[0] if rows else ()

    def person_recent_posts(self, person_id: int, limit: int = 10) -> list:
        rows = self._query(
            SPARQL_QUERIES["person_recent_posts"][0]
            + f" LIMIT {int(limit)}",
            {"id": person_id},
        )
        return rows

    def person_friends(self, person_id: int) -> list[tuple]:
        return self._query(
            SPARQL_QUERIES["person_friends"][0], {"id": person_id}
        )

    def message_content(self, message_id: int) -> tuple:
        rows = self._query(
            SPARQL_QUERIES["message_content"][0], {"id": message_id}
        )
        return rows[0] if rows else ()

    def message_creator(self, message_id: int) -> tuple:
        rows = self._query(
            SPARQL_QUERIES["message_creator"][0], {"id": message_id}
        )
        return rows[0] if rows else ()

    def message_forum(self, message_id: int) -> tuple:
        rows = self._query(
            SPARQL_QUERIES["message_forum"][0], {"id": message_id}
        )
        if not rows:
            rows = self._query(
                SPARQL_QUERIES["message_forum"][1], {"id": message_id}
            )
        return rows[0] if rows else ()

    def message_replies(self, message_id: int) -> list[tuple]:
        return self._query(
            SPARQL_QUERIES["message_replies"][0], {"id": message_id}
        )

    def complex_two_hop(self, person_id: int, limit: int = 20) -> list[tuple]:
        return self._query(
            SPARQL_QUERIES["complex_two_hop"][0] + f" LIMIT {int(limit)}",
            {"id": person_id},
        )

    def friends_recent_posts(
        self, person_id: int, limit: int = 10
    ) -> list[tuple]:
        return self._query(
            SPARQL_QUERIES["friends_recent_posts"][0]
            + f" LIMIT {int(limit)}",
            {"id": person_id},
        )

    # -- inserts ----------------------------------------------------------------------------

    def add_person(self, person: Person) -> None:
        charge("client_rtt")
        self.db.insert_triples(self._person_triples(person))

    def add_friendship(self, knows: Knows) -> None:
        charge("client_rtt")
        self.db.insert_triples(self._knows_triples(knows))

    def add_forum(self, forum: Forum) -> None:
        charge("client_rtt")
        self.db.insert_triples(self._forum_triples(forum))

    def add_forum_membership(self, membership: ForumMembership) -> None:
        charge("client_rtt")
        self.db.insert_triples(self._membership_triples(membership))

    def add_post(self, post: Post) -> None:
        charge("client_rtt")
        self.db.insert_triples(self._post_triples(post))

    def add_comment(self, comment: Comment) -> None:
        charge("client_rtt")
        self.db.insert_triples(self._comment_triples(comment))

    def add_like(self, like: Like) -> None:
        charge("client_rtt")
        self.db.insert_triples(self._like_triples(like))

    # -- batching / caching hooks -----------------------------------------------------------

    def apply_update_batch(self, events: list) -> None:
        """Group commit: one WAL fsync for the whole poll of events."""
        with self.db.wal.group():
            for event in events:
                self.apply_update(event)

    def set_execution_mode(self, mode: str) -> None:
        self.db.set_execution_mode(mode)

    def set_isolation_level(self, level: str) -> None:
        self.db.set_isolation_level(level)

    def cache_stats(self) -> list:
        return self.db.cache_stats()
