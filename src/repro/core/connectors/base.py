"""The connector interface: what every system under test must implement.

The operation set mirrors the paper's workloads:

* Section 4.2 micro-benchmarks: :meth:`point_lookup`, :meth:`one_hop`,
  :meth:`two_hop`, :meth:`shortest_path`.
* Section 4.3 interactive mix: the LDBC short reads (IS1–IS7 analogues),
  the two-hop complex query, and the eight insert operations (INS1–INS8)
  fed from the Kafka update stream.

Contracts are defined so results are comparable across systems (the
integration suite asserts all eight connectors return identical answers):

* ``one_hop`` / ``two_hop`` return *sorted person ids*; ``two_hop``
  excludes the start person but keeps direct friends reachable over a
  2-path (triangle closure), matching the join/traversal semantics every
  backend naturally produces.
* ``shortest_path`` returns the hop count over undirected KNOWS, or
  ``None`` when unreachable / DNF.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.snb.datagen import SnbDataset
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
    UpdateEvent,
    UpdateKind,
)


class OperationFailed(Exception):
    """The SUT could not complete the operation (timeout / crash / DNF)."""


class Connector(ABC):
    #: registry key, e.g. "postgres-sql"
    key: str = "abstract"
    #: query language shown in the paper's tables
    language: str = "?"
    #: paper's system name
    system: str = "?"
    #: named exclusive resources a write must hold in the concurrency
    #: harness (e.g. Titan-B's serialized writer latch)
    write_resources: tuple[str, ...] = ()
    #: analysis dialect ("cypher" | "sql" | "sparql" | "gremlin");
    #: None disables prepare-time validation
    dialect: str | None = None
    #: the module-level query catalog validated at construction
    query_catalog: object = None

    # -- prepare-time validation ---------------------------------------------

    def _validate_queries(self) -> None:
        """Statically check :attr:`query_catalog` against the schema.

        Called from subclass ``__init__``: a query referencing unknown
        schema elements raises
        :class:`repro.analysis.diagnostics.QueryValidationError` here,
        before any benchmark runs, instead of failing mid-run.  Results
        are cached per catalog, so repeated construction stays cheap.
        """
        if self.dialect is None or self.query_catalog is None:
            return
        from repro.analysis.linter import ensure_catalog_valid

        ensure_catalog_valid(self.dialect, self.query_catalog)

    # -- lifecycle ----------------------------------------------------------

    @abstractmethod
    def load(self, dataset: SnbDataset) -> None:
        """Bulk-load the static snapshot using the system's fast path."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Loaded database footprint (Table 1's per-system size column)."""

    # -- Section 4.2 micro reads ------------------------------------------------

    @abstractmethod
    def point_lookup(self, person_id: int) -> tuple:
        """(firstName, lastName, gender) of one person."""

    @abstractmethod
    def one_hop(self, person_id: int) -> list[int]:
        """Sorted ids of direct friends."""

    @abstractmethod
    def two_hop(self, person_id: int) -> list[int]:
        """Sorted ids of the 2-hop neighbourhood (excluding the person)."""

    @abstractmethod
    def shortest_path(self, person1: int, person2: int) -> int | None:
        """Hops on the shortest undirected KNOWS path, or None."""

    # -- LDBC short reads (IS1-IS7 analogues) ---------------------------------------

    @abstractmethod
    def person_profile(self, person_id: int) -> tuple:
        """IS1: (firstName, lastName, gender, birthday, browser, city)."""

    @abstractmethod
    def person_recent_posts(self, person_id: int, limit: int = 10) -> list:
        """IS2: the person's most recent messages:
        (message_id, content, creation_date), newest first."""

    @abstractmethod
    def person_friends(self, person_id: int) -> list[tuple]:
        """IS3: (friend_id, firstName, lastName) sorted by id."""

    @abstractmethod
    def message_content(self, message_id: int) -> tuple:
        """IS4: (content, creation_date)."""

    @abstractmethod
    def message_creator(self, message_id: int) -> tuple:
        """IS5: (person_id, firstName, lastName)."""

    @abstractmethod
    def message_forum(self, message_id: int) -> tuple:
        """IS6: (forum_id, title, moderator_id) of the containing forum
        (via the root post for comments)."""

    @abstractmethod
    def message_replies(self, message_id: int) -> list[tuple]:
        """IS7: (comment_id, creator_id, creation_date) sorted by id."""

    # -- the Section 4.3 complex query -----------------------------------------------

    @abstractmethod
    def complex_two_hop(self, person_id: int, limit: int = 20) -> list[tuple]:
        """Two-hop neighbourhood complex query: distinct friends-of-
        friends (excluding the person) with names, ordered by id, first
        ``limit`` rows: (person_id, firstName, lastName)."""

    @abstractmethod
    def friends_recent_posts(
        self, person_id: int, limit: int = 10
    ) -> list[tuple]:
        """LDBC IC2 analogue: the newest messages created by direct
        friends — (message_id, friend_id, content, creation_date), newest
        first (ties broken by descending message id)."""

    # -- LDBC inserts (INS1-INS8) -------------------------------------------------------

    @abstractmethod
    def add_person(self, person: Person) -> None:
        ...

    @abstractmethod
    def add_friendship(self, knows: Knows) -> None:
        ...

    @abstractmethod
    def add_forum(self, forum: Forum) -> None:
        ...

    @abstractmethod
    def add_forum_membership(self, membership: ForumMembership) -> None:
        ...

    @abstractmethod
    def add_post(self, post: Post) -> None:
        ...

    @abstractmethod
    def add_comment(self, comment: Comment) -> None:
        ...

    @abstractmethod
    def add_like(self, like: Like) -> None:
        """INS2/INS3 (post and comment likes share one implementation)."""

    # -- update dispatch ------------------------------------------------------------------

    def apply_update(self, event: UpdateEvent) -> None:
        """Execute one update-stream event."""
        kind, payload = event.kind, event.payload
        if kind is UpdateKind.ADD_PERSON:
            self.add_person(payload)
        elif kind is UpdateKind.ADD_FRIENDSHIP:
            self.add_friendship(payload)
        elif kind is UpdateKind.ADD_FORUM:
            self.add_forum(payload)
        elif kind is UpdateKind.ADD_FORUM_MEMBERSHIP:
            self.add_forum_membership(payload)
        elif kind is UpdateKind.ADD_POST:
            self.add_post(payload)
        elif kind is UpdateKind.ADD_COMMENT:
            self.add_comment(payload)
        elif kind in (UpdateKind.ADD_POST_LIKE, UpdateKind.ADD_COMMENT_LIKE):
            self.add_like(payload)
        else:  # pragma: no cover - exhaustive over UpdateKind
            raise ValueError(f"unknown update kind {kind}")

    def apply_update_batch(self, events: list[UpdateEvent]) -> None:
        """Execute a poll's worth of events as one group-committed unit.

        The base implementation applies them one by one; systems with a
        cheaper batch path (single transaction, one WAL flush) override
        this — the interactive writer routes through it whenever
        ``InteractiveConfig.write_batch_size > 1``.
        """
        for event in events:
            self.apply_update(event)

    # -- execution-mode hook (overridden by every engine-backed connector) -------------------

    def set_execution_mode(self, mode: str) -> None:
        """Switch the underlying engine between ``interpreted`` and
        ``compiled`` execution.

        Engines default to ``compiled``; the paper-figure harnesses pin
        ``interpreted`` because the 2015-era systems under test ran
        classic tuple-at-a-time interpreters.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose an execution mode"
        )

    def set_isolation_level(self, level: str) -> None:
        """Switch the underlying engine between ``snapshot`` (readers run
        against an immutable MVCC view and never take or wait on locks)
        and ``read-committed`` (reads see the latest committed state; the
        concurrency harness serializes them against writers).

        Engines default to ``snapshot``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose an isolation level"
        )

    # -- caching hooks (overridden where relevant) -----------------------------------------

    def enable_caching(self) -> None:
        """Opt into the system's hot-path caches (off by default).

        The paper's benchmarks run with the caches the real deployments
        shipped with; this hook turns on the additional read-path caches
        (neighborhood / script) for the cache experiments.
        """

    def cache_stats(self) -> list:
        """Uniform :class:`repro.cache.CacheStats` rows, all engine caches."""
        return []

    # -- sanitizer hooks (overridden where relevant) ---------------------------------------

    def sanitize_targets(self) -> dict[str, object]:
        """Engine objects the data-integrity sanitizer may audit.

        Maps a target kind understood by
        :func:`repro.sanitizer.integrity.audit_connector` (``"sql"``,
        ``"sqlg"``, ``"graph"``, ``"rdf"``, ``"titan"``, ``"wal"``) to
        the live engine object.  Empty means the connector opts out of
        post-run auditing.
        """
        return {}

    # -- concurrency hooks (overridden where relevant) -------------------------------------

    def checkpoint_pages(self) -> int:
        """Flush dirty state; returns flushed volume (Neo4j overrides)."""
        return 0

    def supports_concurrent_loading(self) -> bool:
        return True
