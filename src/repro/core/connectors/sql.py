"""SQL connectors: Postgres (row store) and Virtuoso (column store).

Both run the *same* SQL over the same schema ("both systems use SQL
queries over the same database schema" — Section 4.3); they differ in

* storage layout (``row`` vs ``column``),
* shortest path: Postgres evaluates a recursive BFS CTE, Virtuoso calls
  its engine-internal ``shortest_path_len`` transitivity operator.

Every statement pays one native-protocol ``client_rtt``; indexes exist on
entity ids and edge endpoint columns only (the paper's fairness rule).
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.core.connectors.base import Connector
from repro.relational.engine import Database
from repro.simclock.ledger import charge
from repro.snb.datagen import SnbDataset
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
    UpdateEvent,
    UpdateKind,
)
from repro.txn.locks import LockMode

_SCHEMA = [
    "CREATE TABLE person (id BIGINT PRIMARY KEY, firstname TEXT, "
    "lastname TEXT, gender TEXT, birthday BIGINT, creationdate BIGINT, "
    "locationip TEXT, browserused TEXT, cityid BIGINT)",
    "CREATE TABLE person_speaks (personid BIGINT, language TEXT)",
    "CREATE TABLE person_email (personid BIGINT, email TEXT)",
    "CREATE TABLE person_interest (personid BIGINT, tagid BIGINT)",
    "CREATE TABLE person_studyat (personid BIGINT, orgid BIGINT, "
    "classyear INT)",
    "CREATE TABLE person_workat (personid BIGINT, orgid BIGINT, "
    "workfrom INT)",
    "CREATE TABLE knows (p1 BIGINT, p2 BIGINT, creationdate BIGINT)",
    "CREATE TABLE forum (id BIGINT PRIMARY KEY, title TEXT, "
    "creationdate BIGINT, moderatorid BIGINT)",
    "CREATE TABLE forum_tag (forumid BIGINT, tagid BIGINT)",
    "CREATE TABLE forum_member (forumid BIGINT, personid BIGINT, "
    "joindate BIGINT)",
    "CREATE TABLE post (id BIGINT PRIMARY KEY, creationdate BIGINT, "
    "creatorid BIGINT, forumid BIGINT, content TEXT, length INT, "
    "browserused TEXT, locationip TEXT, language TEXT, countryid BIGINT)",
    "CREATE TABLE post_tag (postid BIGINT, tagid BIGINT)",
    "CREATE TABLE comment (id BIGINT PRIMARY KEY, creationdate BIGINT, "
    "creatorid BIGINT, replyof BIGINT, rootpost BIGINT, content TEXT, "
    "length INT, browserused TEXT, locationip TEXT, countryid BIGINT)",
    "CREATE TABLE comment_tag (commentid BIGINT, tagid BIGINT)",
    "CREATE TABLE likes (personid BIGINT, messageid BIGINT, "
    "creationdate BIGINT)",
    "CREATE TABLE tag (id BIGINT PRIMARY KEY, name TEXT, classid BIGINT)",
    "CREATE TABLE tagclass (id BIGINT PRIMARY KEY, name TEXT, "
    "subclassof BIGINT)",
    "CREATE TABLE place (id BIGINT PRIMARY KEY, name TEXT, type TEXT, "
    "partof BIGINT)",
    "CREATE TABLE organisation (id BIGINT PRIMARY KEY, name TEXT, "
    "type TEXT, placeid BIGINT)",
]

_INDEXES = [
    "CREATE INDEX ON knows (p1) USING HASH",
    "CREATE INDEX ON knows (p2) USING HASH",
    "CREATE INDEX ON forum_member (forumid) USING HASH",
    "CREATE INDEX ON forum_member (personid) USING HASH",
    "CREATE INDEX ON post (creatorid) USING HASH",
    "CREATE INDEX ON post (forumid) USING HASH",
    "CREATE INDEX ON comment (creatorid) USING HASH",
    "CREATE INDEX ON comment (replyof) USING HASH",
    "CREATE INDEX ON likes (personid) USING HASH",
    "CREATE INDEX ON likes (messageid) USING HASH",
]

_BFS_SQL = (
    "WITH RECURSIVE bfs (node, depth) AS ("
    "  SELECT k.p2, 1 FROM knows k WHERE k.p1 = ?"
    "  UNION"
    "  SELECT k.p2, b.depth + 1 FROM bfs b"
    "    JOIN knows k ON k.p1 = b.node WHERE b.depth < 12"
    ") SELECT MIN(depth) FROM bfs WHERE node = ?"
)


#: every DML/query statement the connector issues, by operation; DDL is
#: carried as ``schema`` / ``indexes``.  Statements with a
#: caller-supplied LIMIT are stored without the clause; the methods
#: append ``LIMIT <n>`` at call time.  Validated against the schema
#: catalog (see :mod:`repro.analysis`) at construction.
SQL_QUERIES: dict[str, tuple[str, ...]] = {
    "schema": tuple(_SCHEMA),
    "indexes": tuple(_INDEXES),
    "point_lookup": (
        "SELECT firstname, lastname, gender FROM person WHERE id = ?",
    ),
    "one_hop": ("SELECT p2 FROM knows WHERE p1 = ? ORDER BY p2",),
    "two_hop": (
        "SELECT DISTINCT k2.p2 FROM knows k1 "
        "JOIN knows k2 ON k2.p1 = k1.p2 "
        "WHERE k1.p1 = ? AND k2.p2 <> ? ORDER BY k2.p2",
    ),
    "shortest_path": (
        _BFS_SQL,
        "SELECT shortest_path_len('knows', 'p1', 'p2', ?, ?)",
    ),
    "person_profile": (
        "SELECT firstname, lastname, gender, birthday, browserused, "
        "cityid FROM person WHERE id = ?",
    ),
    "person_recent_posts": (
        "SELECT id, content, creationdate FROM post "
        "WHERE creatorid = ? ORDER BY creationdate DESC, id DESC",
        "SELECT id, content, creationdate FROM comment "
        "WHERE creatorid = ? ORDER BY creationdate DESC, id DESC",
    ),
    "person_friends": (
        "SELECT p.id, p.firstname, p.lastname FROM knows k "
        "JOIN person p ON p.id = k.p2 WHERE k.p1 = ? ORDER BY p.id",
    ),
    "message_content": (
        "SELECT content, creationdate FROM post WHERE id = ?",
        "SELECT content, creationdate FROM comment WHERE id = ?",
    ),
    "message_creator": (
        "SELECT p.id, p.firstname, p.lastname FROM post m "
        "JOIN person p ON p.id = m.creatorid WHERE m.id = ?",
        "SELECT p.id, p.firstname, p.lastname FROM comment m "
        "JOIN person p ON p.id = m.creatorid WHERE m.id = ?",
    ),
    "message_forum": (
        "SELECT f.id, f.title, f.moderatorid FROM post m "
        "JOIN forum f ON f.id = m.forumid WHERE m.id = ?",
        "SELECT f.id, f.title, f.moderatorid FROM comment c "
        "JOIN post m ON m.id = c.rootpost "
        "JOIN forum f ON f.id = m.forumid WHERE c.id = ?",
    ),
    "message_replies": (
        "SELECT id, creatorid, creationdate FROM comment "
        "WHERE replyof = ? ORDER BY id",
    ),
    "complex_two_hop": (
        "SELECT DISTINCT p.id, p.firstname, p.lastname FROM knows k1 "
        "JOIN knows k2 ON k2.p1 = k1.p2 "
        "JOIN person p ON p.id = k2.p2 "
        "WHERE k1.p1 = ? AND k2.p2 <> ? ORDER BY p.id",
    ),
    "friends_recent_posts": (
        "SELECT m.id, m.creatorid, m.content, m.creationdate "
        "FROM knows k JOIN post m ON m.creatorid = k.p2 "
        "WHERE k.p1 = ? ORDER BY m.creationdate DESC, m.id DESC",
        "SELECT m.id, m.creatorid, m.content, m.creationdate "
        "FROM knows k JOIN comment m ON m.creatorid = k.p2 "
        "WHERE k.p1 = ? ORDER BY m.creationdate DESC, m.id DESC",
    ),
    "add_person": (
        "INSERT INTO person VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
        "INSERT INTO person_speaks VALUES (?, ?)",
        "INSERT INTO person_interest VALUES (?, ?)",
    ),
    "add_friendship": ("INSERT INTO knows VALUES (?, ?, ?)",),
    "add_forum": (
        "INSERT INTO forum VALUES (?, ?, ?, ?)",
        "INSERT INTO forum_tag VALUES (?, ?)",
    ),
    "add_forum_membership": (
        "INSERT INTO forum_member VALUES (?, ?, ?)",
    ),
    "add_post": (
        "INSERT INTO post VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        "INSERT INTO post_tag VALUES (?, ?)",
    ),
    "add_comment": (
        "INSERT INTO comment VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        "INSERT INTO comment_tag VALUES (?, ?)",
    ),
    "add_like": ("INSERT INTO likes VALUES (?, ?, ?)",),
}


class SqlConnector(Connector):
    """Shared implementation; see :class:`PostgresConnector` and
    :class:`VirtuosoSqlConnector` for the two configurations."""

    storage = "row"
    transitive_support = False

    dialect = "sql"
    query_catalog = SQL_QUERIES

    def __init__(self) -> None:
        self._validate_queries()
        self.db = Database(
            self.storage,
            name=self.key,
            transitive_support=self.transitive_support,
        )
        for ddl in _SCHEMA:
            self.db.execute(ddl)
        for ddl in _INDEXES:
            self.db.execute(ddl)
        self._batch_depth = 0

    def sanitize_targets(self) -> dict[str, object]:
        return {"sql": self.db}

    # -- loading -----------------------------------------------------------------

    def load(self, dataset: SnbDataset) -> None:
        """Bulk path: straight into the storage layer (COPY-style), one
        transaction, one fsync."""
        catalog = self.db.catalog
        t = catalog.table
        with self.db.transaction():
            for p in dataset.places:
                t("place").insert((p.id, p.name, p.kind, p.part_of))
            for tc in dataset.tag_classes:
                t("tagclass").insert((tc.id, tc.name, tc.subclass_of))
            for tag in dataset.tags:
                t("tag").insert((tag.id, tag.name, tag.tag_class))
            for org in dataset.organisations:
                t("organisation").insert(
                    (org.id, org.name, org.kind, org.place)
                )
            for person in dataset.persons:
                self._load_person(person)
            for knows in dataset.knows:
                t("knows").insert(
                    (knows.person1, knows.person2, knows.creation_date)
                )
                t("knows").insert(
                    (knows.person2, knows.person1, knows.creation_date)
                )
            for forum in dataset.forums:
                t("forum").insert(
                    (forum.id, forum.title, forum.creation_date,
                     forum.moderator)
                )
                for tag_id in forum.tags:
                    t("forum_tag").insert((forum.id, tag_id))
            for m in dataset.memberships:
                t("forum_member").insert((m.forum, m.person, m.join_date))
            for post in dataset.posts:
                t("post").insert(
                    (post.id, post.creation_date, post.creator, post.forum,
                     post.content, post.length, post.browser_used,
                     post.location_ip, post.language, post.country)
                )
                for tag_id in post.tags:
                    t("post_tag").insert((post.id, tag_id))
            for c in dataset.comments:
                t("comment").insert(
                    (c.id, c.creation_date, c.creator, c.reply_of,
                     c.root_post, c.content, c.length, c.browser_used,
                     c.location_ip, c.country)
                )
                for tag_id in c.tags:
                    t("comment_tag").insert((c.id, tag_id))
            for like in dataset.likes:
                t("likes").insert(
                    (like.person, like.message, like.creation_date)
                )
        self.db.analyze()

    def _load_person(self, person: Person) -> None:
        t = self.db.catalog.table
        t("person").insert(
            (person.id, person.first_name, person.last_name, person.gender,
             person.birthday, person.creation_date, person.location_ip,
             person.browser_used, person.city)
        )
        for language in person.speaks:
            t("person_speaks").insert((person.id, language))
        for email in person.emails:
            t("person_email").insert((person.id, email))
        for tag_id in person.interests:
            t("person_interest").insert((person.id, tag_id))
        if person.university is not None:
            t("person_studyat").insert(
                (person.id, person.university, person.class_year)
            )
        if person.company is not None:
            t("person_workat").insert(
                (person.id, person.company, person.work_from)
            )

    def size_bytes(self) -> int:
        return self.db.size_bytes()

    # -- micro reads ---------------------------------------------------------------

    def _query(self, sql: str, params=()) -> list[tuple]:
        charge("client_rtt")
        return self.db.query(sql, params)

    def _execute(self, sql: str, params=()) -> None:
        self._write_rtt()
        self.db.execute(sql, params)

    # -- write plumbing ----------------------------------------------------------

    def _write_rtt(self) -> None:
        """Per-statement round trip, absorbed into one per batch when the
        writer pipelines a whole poll of events as a single request."""
        if not self._batch_depth:
            charge("client_rtt")

    @contextmanager
    def _write_txn(self) -> Iterator[None]:
        """The insert's transaction — or the enclosing batch's, if any."""
        if self.db._active_txn is not None:
            yield
        else:
            with self.db.transaction():
                yield

    @staticmethod
    def _event_lock(event: UpdateEvent) -> tuple[str, object]:
        """The (table, key) the event's first INSERT will lock."""
        kind, payload = event.kind, event.payload
        if kind is UpdateKind.ADD_PERSON:
            return ("person", payload.id)
        if kind is UpdateKind.ADD_FRIENDSHIP:
            return ("knows", None)
        if kind is UpdateKind.ADD_FORUM:
            return ("forum", payload.id)
        if kind is UpdateKind.ADD_FORUM_MEMBERSHIP:
            return ("forum_member", None)
        if kind is UpdateKind.ADD_POST:
            return ("post", payload.id)
        if kind is UpdateKind.ADD_COMMENT:
            return ("comment", payload.id)
        return ("likes", None)

    def apply_update_batch(self, events: list[UpdateEvent]) -> None:
        """One transaction for the whole poll: one commit-time fsync.

        Locks for every event are pre-acquired in the lock manager's
        global sort order (``acquire_many``), so a batch can't deadlock
        against row DML; the per-statement boundary acquisitions inside
        are then reentrant no-ops.  The batch travels as one pipelined
        request (a single ``client_rtt``).
        """
        if len(events) <= 1:
            for event in events:
                self.apply_update(event)
            return
        charge("client_rtt")
        self._batch_depth += 1
        try:
            with self.db.transaction() as txn:
                self.db.txns.locks.acquire_many(
                    txn.txn_id,
                    [self._event_lock(e) for e in events],
                    LockMode.EXCLUSIVE,
                )
                for event in events:
                    self.apply_update(event)
        finally:
            self._batch_depth -= 1

    def set_execution_mode(self, mode: str) -> None:
        self.db.set_execution_mode(mode)

    def set_isolation_level(self, level: str) -> None:
        self.db.set_isolation_level(level)

    def cache_stats(self) -> list:
        return self.db.cache_stats()

    def point_lookup(self, person_id: int) -> tuple:
        rows = self._query(
            SQL_QUERIES["point_lookup"][0], (person_id,)
        )
        return rows[0] if rows else ()

    def one_hop(self, person_id: int) -> list[int]:
        rows = self._query(SQL_QUERIES["one_hop"][0], (person_id,))
        return [r[0] for r in rows]

    def two_hop(self, person_id: int) -> list[int]:
        rows = self._query(
            SQL_QUERIES["two_hop"][0], (person_id, person_id)
        )
        return [r[0] for r in rows]

    def shortest_path(self, person1: int, person2: int) -> int | None:
        if person1 == person2:
            return 0
        if self.transitive_support:
            rows = self._query(
                SQL_QUERIES["shortest_path"][1], (person1, person2)
            )
        else:
            rows = self._query(
                SQL_QUERIES["shortest_path"][0], (person1, person2)
            )
        return rows[0][0] if rows else None

    # -- short reads -------------------------------------------------------------------

    def person_profile(self, person_id: int) -> tuple:
        rows = self._query(
            SQL_QUERIES["person_profile"][0], (person_id,)
        )
        return rows[0] if rows else ()

    def person_recent_posts(self, person_id: int, limit: int = 10) -> list:
        limit = int(limit)
        posts = self._query(
            SQL_QUERIES["person_recent_posts"][0] + f" LIMIT {limit}",
            (person_id,),
        )
        comments = self._query(
            SQL_QUERIES["person_recent_posts"][1] + f" LIMIT {limit}",
            (person_id,),
        )
        merged = sorted(
            posts + comments, key=lambda r: (-r[2], -r[0])
        )
        return merged[:limit]

    def person_friends(self, person_id: int) -> list[tuple]:
        return self._query(
            SQL_QUERIES["person_friends"][0], (person_id,)
        )

    def message_content(self, message_id: int) -> tuple:
        rows = self._query(
            SQL_QUERIES["message_content"][0], (message_id,)
        )
        if not rows:
            rows = self._query(
                SQL_QUERIES["message_content"][1], (message_id,)
            )
        return rows[0] if rows else ()

    def message_creator(self, message_id: int) -> tuple:
        rows = self._query(
            SQL_QUERIES["message_creator"][0], (message_id,)
        )
        if not rows:
            rows = self._query(
                SQL_QUERIES["message_creator"][1], (message_id,)
            )
        return rows[0] if rows else ()

    def message_forum(self, message_id: int) -> tuple:
        rows = self._query(
            SQL_QUERIES["message_forum"][0], (message_id,)
        )
        if not rows:
            rows = self._query(
                SQL_QUERIES["message_forum"][1], (message_id,)
            )
        return rows[0] if rows else ()

    def message_replies(self, message_id: int) -> list[tuple]:
        return self._query(
            SQL_QUERIES["message_replies"][0], (message_id,)
        )

    def complex_two_hop(self, person_id: int, limit: int = 20) -> list[tuple]:
        rows = self._query(
            SQL_QUERIES["complex_two_hop"][0], (person_id, person_id)
        )
        return rows[:limit]

    def friends_recent_posts(
        self, person_id: int, limit: int = 10
    ) -> list[tuple]:
        limit = int(limit)
        posts = self._query(
            SQL_QUERIES["friends_recent_posts"][0] + f" LIMIT {limit}",
            (person_id,),
        )
        comments = self._query(
            SQL_QUERIES["friends_recent_posts"][1] + f" LIMIT {limit}",
            (person_id,),
        )
        merged = sorted(posts + comments, key=lambda r: (-r[3], -r[0]))
        return merged[:limit]

    # -- inserts ----------------------------------------------------------------------------

    def add_person(self, person: Person) -> None:
        self._write_rtt()
        with self._write_txn():
            self.db.execute(
                SQL_QUERIES["add_person"][0],
                (person.id, person.first_name, person.last_name,
                 person.gender, person.birthday, person.creation_date,
                 person.location_ip, person.browser_used, person.city),
            )
            for language in person.speaks:
                self.db.execute(
                    SQL_QUERIES["add_person"][1], (person.id, language)
                )
            for tag_id in person.interests:
                self.db.execute(
                    SQL_QUERIES["add_person"][2], (person.id, tag_id)
                )

    def add_friendship(self, knows: Knows) -> None:
        self._write_rtt()
        with self._write_txn():
            self.db.execute(
                SQL_QUERIES["add_friendship"][0],
                (knows.person1, knows.person2, knows.creation_date),
            )
            self.db.execute(
                SQL_QUERIES["add_friendship"][0],
                (knows.person2, knows.person1, knows.creation_date),
            )

    def add_forum(self, forum: Forum) -> None:
        self._write_rtt()
        with self._write_txn():
            self.db.execute(
                SQL_QUERIES["add_forum"][0],
                (forum.id, forum.title, forum.creation_date, forum.moderator),
            )
            for tag_id in forum.tags:
                self.db.execute(
                    SQL_QUERIES["add_forum"][1], (forum.id, tag_id)
                )

    def add_forum_membership(self, membership: ForumMembership) -> None:
        self._execute(
            SQL_QUERIES["add_forum_membership"][0],
            (membership.forum, membership.person, membership.join_date),
        )

    def add_post(self, post: Post) -> None:
        self._write_rtt()
        with self._write_txn():
            self.db.execute(
                SQL_QUERIES["add_post"][0],
                (post.id, post.creation_date, post.creator, post.forum,
                 post.content, post.length, post.browser_used,
                 post.location_ip, post.language, post.country),
            )
            for tag_id in post.tags:
                self.db.execute(
                    SQL_QUERIES["add_post"][1], (post.id, tag_id)
                )

    def add_comment(self, comment: Comment) -> None:
        self._write_rtt()
        with self._write_txn():
            self.db.execute(
                SQL_QUERIES["add_comment"][0],
                (comment.id, comment.creation_date, comment.creator,
                 comment.reply_of, comment.root_post, comment.content,
                 comment.length, comment.browser_used, comment.location_ip,
                 comment.country),
            )
            for tag_id in comment.tags:
                self.db.execute(
                    SQL_QUERIES["add_comment"][1], (comment.id, tag_id)
                )

    def add_like(self, like: Like) -> None:
        self._execute(
            SQL_QUERIES["add_like"][0],
            (like.person, like.message, like.creation_date),
        )


class PostgresConnector(SqlConnector):
    """Postgres 9.5, native SQL, row storage."""

    key = "postgres-sql"
    system = "Postgres"
    language = "SQL"
    storage = "row"
    transitive_support = False


class VirtuosoSqlConnector(SqlConnector):
    """Virtuoso 7.2 in RDBMS mode: columnar storage + graph-aware
    transitivity."""

    key = "virtuoso-sql"
    system = "Virtuoso"
    language = "SQL"
    storage = "column"
    transitive_support = True
