"""Gremlin connectors: one implementation, four TinkerPop backends.

This is the paper's contribution #2 realized: a single Gremlin
implementation of the workload that runs unmodified against any
TinkerPop3-compliant database (Neo4j, Titan-Cassandra, Titan-BerkeleyDB,
Sqlg).  All interactive traffic goes through the Gremlin Server
(Figure 2); only bulk loading uses embedded traversals (the LDBC Gremlin
loading utilities).
"""

from __future__ import annotations

from repro.cache import LRUCache
from repro.core.connectors.base import Connector, OperationFailed
from repro.graphdb.tinkerpop_adapter import Neo4jProvider
from repro.snb.datagen import SnbDataset
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
)
from repro.sqlg import SqlgProvider
from repro.tinkerpop import Graph, GremlinServer, GremlinServerError, P
from repro.tinkerpop.structure import GraphProvider, Vertex
from repro.titan import titan_berkeley, titan_cassandra

#: (label, key) pairs indexed in every TinkerPop backend ("indexes on
#: vertex IDs only" — the paper's fairness rule)
VERTEX_INDEXES = [
    ("person", "id"), ("forum", "id"), ("post", "id"), ("comment", "id"),
    ("tag", "id"), ("place", "id"), ("organisation", "id"),
]


def iter_vertex_specs(dataset: SnbDataset):
    """All vertices as ``(label, props)`` in load order."""
    for place in dataset.places:
        yield "place", {"id": place.id, "name": place.name,
                        "type": place.kind}
    for tc in dataset.tag_classes:
        yield "tagclass", {"id": tc.id, "name": tc.name}
    for tag in dataset.tags:
        yield "tag", {"id": tag.id, "name": tag.name}
    for org in dataset.organisations:
        yield "organisation", {"id": org.id, "name": org.name,
                               "type": org.kind}
    for person in dataset.persons:
        yield "person", {
            "id": person.id, "firstName": person.first_name,
            "lastName": person.last_name, "gender": person.gender,
            "birthday": person.birthday,
            "creationDate": person.creation_date,
            "browserUsed": person.browser_used,
            "locationIP": person.location_ip,
        }
    for forum in dataset.forums:
        yield "forum", {"id": forum.id, "title": forum.title,
                        "creationDate": forum.creation_date}
    for post in dataset.posts:
        yield "post", {
            "id": post.id, "creationDate": post.creation_date,
            "content": post.content, "length": post.length,
            "browserUsed": post.browser_used,
            "locationIP": post.location_ip, "language": post.language,
        }
    for comment in dataset.comments:
        yield "comment", {
            "id": comment.id, "creationDate": comment.creation_date,
            "content": comment.content, "length": comment.length,
            "browserUsed": comment.browser_used,
            "locationIP": comment.location_ip,
        }


def iter_edge_specs(dataset: SnbDataset):
    """All edges as ``(label, out_id, in_id, props)`` in load order.

    Edges only reference vertices yielded by :func:`iter_vertex_specs`.
    """
    for place in dataset.places:
        if place.part_of is not None:
            yield "isPartOf", place.id, place.part_of, {}
    for tc in dataset.tag_classes:
        if tc.subclass_of is not None:
            yield "isSubclassOf", tc.id, tc.subclass_of, {}
    for tag in dataset.tags:
        yield "hasType", tag.id, tag.tag_class, {}
    for org in dataset.organisations:
        yield "isLocatedIn", org.id, org.place, {}
    for person in dataset.persons:
        yield "isLocatedIn", person.id, person.city, {}
        for tag_id in person.interests:
            yield "hasInterest", person.id, tag_id, {}
        if person.university is not None:
            yield "studyAt", person.id, person.university, {
                "classYear": person.class_year}
        if person.company is not None:
            yield "workAt", person.id, person.company, {
                "workFrom": person.work_from}
    for knows in dataset.knows:
        yield "knows", knows.person1, knows.person2, {
            "creationDate": knows.creation_date}
    for forum in dataset.forums:
        yield "hasModerator", forum.id, forum.moderator, {}
        for tag_id in forum.tags:
            yield "hasTag", forum.id, tag_id, {}
    for m in dataset.memberships:
        yield "hasMember", m.forum, m.person, {"joinDate": m.join_date}
    for post in dataset.posts:
        yield "hasCreator", post.id, post.creator, {}
        yield "containerOf", post.forum, post.id, {}
        yield "isLocatedIn", post.id, post.country, {}
        for tag_id in post.tags:
            yield "hasTag", post.id, tag_id, {}
    for comment in dataset.comments:
        yield "hasCreator", comment.id, comment.creator, {}
        yield "replyOf", comment.id, comment.reply_of, {}
        yield "rootPost", comment.id, comment.root_post, {}
        yield "isLocatedIn", comment.id, comment.country, {}
        for tag_id in comment.tags:
            yield "hasTag", comment.id, tag_id, {}
    for like in dataset.likes:
        yield "likes", like.person, like.message, {
            "creationDate": like.creation_date}


def load_dataset_into_provider(
    provider: GraphProvider, dataset: SnbDataset
) -> tuple[int, int]:
    """The LDBC Gremlin loading utility: embedded addV/addE traversals.

    Returns ``(vertices_loaded, edges_loaded)`` - the quantities Table 4
    rates are computed from.
    """
    g = Graph(provider).traversal()
    vertex: dict[int, Vertex] = {}
    vertices = edges = 0
    for label, props in iter_vertex_specs(dataset):
        t = g.addV(label)
        for key, value in props.items():
            t.property(key, value)
        vertex[props["id"]] = t.next()
        vertices += 1
    for label, out_id, in_id, props in iter_edge_specs(dataset):
        t = g.V(vertex[out_id].id).addE(label).to(vertex[in_id])
        for key, value in props.items():
            t.property(key, value)
        t.iterate()
        edges += 1
    return vertices, edges


# -- the query catalog: every traversal shape the connector submits -----------
#
# Gremlin has no query text, so the catalog entries are *builders*: a
# function taking the traversal source plus the operation's parameters.
# The connector methods call these with live arguments; the static
# analyser (see :mod:`repro.analysis.gremlin`) calls them with the
# sample arguments below against a provider-less traversal and walks
# the resulting step chain.


def _q_vertex_by_id(g, label, vid):
    return g.V().has(label, "id", vid).limit(1)


def _q_point_lookup(g, person_id):
    return g.V().has("person", "id", person_id).valueMap()


def _q_one_hop(g, person_id):
    return g.V().has("person", "id", person_id).both("knows").values("id")


def _q_two_hop(g, person_id):
    return (
        g.V().has("person", "id", person_id)
        .both("knows").both("knows")
        .has("id", P.neq(person_id)).dedup().values("id")
    )


def _q_shortest_path(g, person1, person2):
    return (
        g.V().has("person", "id", person1)
        .repeat(_anon_both_knows())
        .until(_anon_has_id(person2))
        .path().limit(1)
    )


def _q_person_city(g, person_id):
    return (
        g.V().has("person", "id", person_id)
        .out("isLocatedIn").values("id")
    )


def _q_person_recent_posts(g, person_id, limit):
    return (
        g.V().has("person", "id", person_id)
        .in_("hasCreator")
        .order().by("creationDate", descending=True)
        .limit(limit).valueMap()
    )


def _q_person_friends(g, person_id):
    return (
        g.V().has("person", "id", person_id)
        .both("knows").order().by("id").valueMap()
    )


def _q_message_value_map(g, label, message_id):
    return g.V().has(label, "id", message_id).valueMap()


def _q_message_creator(g, label, message_id):
    return (
        g.V().has(label, "id", message_id)
        .out("hasCreator").valueMap()
    )


def _q_post_forum(g, message_id):
    return (
        g.V().has("post", "id", message_id)
        .in_("containerOf").valueMap()
    )


def _q_comment_forum(g, message_id):
    return (
        g.V().has("comment", "id", message_id)
        .out("rootPost").in_("containerOf").valueMap()
    )


def _q_forum_moderator(g, forum_id):
    return (
        g.V().has("forum", "id", forum_id)
        .out("hasModerator").values("id")
    )


def _q_message_replies(g, label, message_id):
    return (
        g.V().has(label, "id", message_id)
        .in_("replyOf").valueMap()
    )


def _q_reply_creator(g, label, message_id):
    return (
        g.V().has(label, "id", message_id)
        .out("hasCreator").values("id")
    )


def _q_complex_two_hop(g, person_id, limit):
    return (
        g.V().has("person", "id", person_id)
        .both("knows").both("knows")
        .has("id", P.neq(person_id)).dedup()
        .order().by("id").limit(limit).valueMap()
    )


def _q_friends_recent_posts(g, person_id):
    return (
        g.V().has("person", "id", person_id)
        .both("knows").in_("hasCreator").valueMap()
    )


def _q_add_vertex(g, label, props):
    t = g.addV(label)
    for key, value in props.items():
        t.property(key, value)
    return t


def _q_add_edge(g, label, out_label, out_id, target, props):
    t = g.V().has(out_label, "id", out_id).addE(label).to(target)
    for key, value in props.items():
        t.property(key, value)
    return t


#: sample vertex property maps the insert builders are validated with
_SAMPLE_PROPS = {
    "person": {
        "id": 0, "firstName": "x", "lastName": "x", "gender": "x",
        "birthday": 0, "creationDate": 0, "browserUsed": "x",
        "locationIP": "x",
    },
    "forum": {"id": 0, "title": "x", "creationDate": 0},
    "post": {
        "id": 0, "creationDate": 0, "content": "x", "length": 0,
        "browserUsed": "x", "locationIP": "x", "language": "x",
    },
    "comment": {
        "id": 0, "creationDate": 0, "content": "x", "length": 0,
        "browserUsed": "x", "locationIP": "x",
    },
}


def _edge_entry(label, out_label, props=None):
    return (_q_add_edge, {
        "label": label, "out_label": out_label, "out_id": 0,
        "target": None, "props": props or {},
    })


#: operation -> ((builder, sample kwargs), ...); validated against the
#: schema catalog (see :mod:`repro.analysis`) at construction
GREMLIN_TRAVERSALS: dict[str, tuple] = {
    "vertex_by_id": (
        (_q_vertex_by_id, {"label": "person", "vid": 0}),
        (_q_vertex_by_id, {"label": "post", "vid": 0}),
        (_q_vertex_by_id, {"label": "comment", "vid": 0}),
    ),
    "point_lookup": ((_q_point_lookup, {"person_id": 0}),),
    "one_hop": ((_q_one_hop, {"person_id": 0}),),
    "two_hop": ((_q_two_hop, {"person_id": 0}),),
    "shortest_path": ((_q_shortest_path, {"person1": 0, "person2": 1}),),
    "person_profile": (
        (_q_point_lookup, {"person_id": 0}),
        (_q_person_city, {"person_id": 0}),
    ),
    "person_recent_posts": (
        (_q_person_recent_posts, {"person_id": 0, "limit": 10}),
    ),
    "person_friends": ((_q_person_friends, {"person_id": 0}),),
    "message_content": (
        (_q_message_value_map, {"label": "post", "message_id": 0}),
        (_q_message_value_map, {"label": "comment", "message_id": 0}),
    ),
    "message_creator": (
        (_q_message_creator, {"label": "post", "message_id": 0}),
        (_q_message_creator, {"label": "comment", "message_id": 0}),
    ),
    "message_forum": (
        (_q_post_forum, {"message_id": 0}),
        (_q_comment_forum, {"message_id": 0}),
        (_q_forum_moderator, {"forum_id": 0}),
    ),
    "message_replies": (
        (_q_message_replies, {"label": "post", "message_id": 0}),
        (_q_message_replies, {"label": "comment", "message_id": 0}),
        (_q_reply_creator, {"label": "comment", "message_id": 0}),
    ),
    "complex_two_hop": (
        (_q_complex_two_hop, {"person_id": 0, "limit": 20}),
    ),
    "friends_recent_posts": (
        (_q_friends_recent_posts, {"person_id": 0}),
        (_q_reply_creator, {"label": "post", "message_id": 0}),
        (_q_reply_creator, {"label": "comment", "message_id": 0}),
    ),
    "add_person": (
        (_q_add_vertex, {"label": "person",
                         "props": _SAMPLE_PROPS["person"]}),
        _edge_entry("isLocatedIn", "person"),
        _edge_entry("hasInterest", "person"),
    ),
    "add_friendship": (
        _edge_entry("knows", "person", {"creationDate": 0}),
    ),
    "add_forum": (
        (_q_add_vertex, {"label": "forum",
                         "props": _SAMPLE_PROPS["forum"]}),
        _edge_entry("hasModerator", "forum"),
        _edge_entry("hasTag", "forum"),
    ),
    "add_forum_membership": (
        _edge_entry("hasMember", "forum", {"joinDate": 0}),
    ),
    "add_post": (
        (_q_add_vertex, {"label": "post", "props": _SAMPLE_PROPS["post"]}),
        _edge_entry("hasCreator", "post"),
        _edge_entry("containerOf", "forum"),
        _edge_entry("isLocatedIn", "post"),
        _edge_entry("hasTag", "post"),
    ),
    "add_comment": (
        (_q_add_vertex, {"label": "comment",
                         "props": _SAMPLE_PROPS["comment"]}),
        _edge_entry("hasCreator", "comment"),
        _edge_entry("replyOf", "comment"),
        _edge_entry("rootPost", "comment"),
        _edge_entry("isLocatedIn", "comment"),
    ),
    "add_like": (
        _edge_entry("likes", "person", {"creationDate": 0}),
    ),
}


class GremlinConnector(Connector):
    """Shared Gremlin implementation; subclasses choose the backend."""

    language = "Gremlin"

    dialect = "gremlin"
    query_catalog = GREMLIN_TRAVERSALS

    def __init__(self) -> None:
        self._validate_queries()
        self.provider = self._make_provider()
        self.server = GremlinServer(self.provider)
        # vertex references are immutable once created, so no
        # invalidation is needed; the LRU only bounds memory
        self._vertex_cache = LRUCache(8192, name="gremlin-vertices")

    def _make_provider(self) -> GraphProvider:
        raise NotImplementedError

    # -- loading -----------------------------------------------------------------

    def load(self, dataset: SnbDataset) -> None:
        load_dataset_into_provider(self.provider, dataset)
        self._flush_backend()

    def _flush_backend(self) -> None:
        backend = getattr(self.provider, "backend", None)
        if backend is not None and hasattr(backend, "flush"):
            backend.flush()

    def size_bytes(self) -> int:
        return self.provider.size_bytes()

    # -- helpers -------------------------------------------------------------------

    def _submit(self, build, key: str | None = None) -> list:
        """Submit a traversal; ``key`` names the parameterized script so
        the server's script cache (when enabled) can skip compilation."""
        try:
            return self.server.submit(build, cache_key=key)
        except GremlinServerError as exc:
            raise OperationFailed(str(exc)) from exc

    def _person_vertex(self, person_id: int) -> Vertex:
        cached = self._vertex_cache.get(person_id)
        if cached is not None:
            return cached
        results = self._submit(
            lambda g: _q_vertex_by_id(g, "person", person_id),
            key="vertex_by_id:person",
        )
        if not results:
            raise OperationFailed(f"no person {person_id}")
        self._vertex_cache.put(person_id, results[0])
        return results[0]

    def _message_vertex(self, message_id: int) -> Vertex | None:
        for label in ("post", "comment"):
            results = self._submit(
                lambda g, label=label: _q_vertex_by_id(
                    g, label, message_id
                ),
                key=f"vertex_by_id:{label}",
            )
            if results:
                return results[0]
        return None

    # -- micro reads ------------------------------------------------------------------

    def point_lookup(self, person_id: int) -> tuple:
        maps = self._submit(
            lambda g: _q_point_lookup(g, person_id), key="point_lookup"
        )
        if not maps:
            return ()
        m = maps[0]
        return (m.get("firstName"), m.get("lastName"), m.get("gender"))

    def one_hop(self, person_id: int) -> list[int]:
        ids = self._submit(lambda g: _q_one_hop(g, person_id), key="one_hop")
        return sorted(ids)

    def two_hop(self, person_id: int) -> list[int]:
        ids = self._submit(lambda g: _q_two_hop(g, person_id), key="two_hop")
        return sorted(ids)

    def shortest_path(self, person1: int, person2: int) -> int | None:
        if person1 == person2:
            return 0
        paths = self._submit(
            lambda g: _q_shortest_path(g, person1, person2),
            key="shortest_path",
        )
        if not paths:
            return None
        return len(paths[0]) - 1

    # -- short reads ----------------------------------------------------------------------

    def person_profile(self, person_id: int) -> tuple:
        maps = self._submit(
            lambda g: _q_point_lookup(g, person_id), key="point_lookup"
        )
        if not maps:
            return ()
        m = maps[0]
        cities = self._submit(
            lambda g: _q_person_city(g, person_id), key="person_city"
        )
        return (
            m.get("firstName"), m.get("lastName"), m.get("gender"),
            m.get("birthday"), m.get("browserUsed"),
            cities[0] if cities else None,
        )

    def person_recent_posts(self, person_id: int, limit: int = 10) -> list:
        maps = self._submit(
            lambda g: _q_person_recent_posts(g, person_id, limit),
            key="person_recent_posts",
        )
        rows = [(m["id"], m.get("content"), m["creationDate"]) for m in maps]
        rows.sort(key=lambda r: (-r[2], -r[0]))
        return rows

    def person_friends(self, person_id: int) -> list[tuple]:
        maps = self._submit(
            lambda g: _q_person_friends(g, person_id), key="person_friends"
        )
        return [(m["id"], m.get("firstName"), m.get("lastName")) for m in maps]

    def message_content(self, message_id: int) -> tuple:
        for label in ("post", "comment"):
            maps = self._submit(
                lambda g, label=label: _q_message_value_map(
                    g, label, message_id
                ),
                key=f"message_value_map:{label}",
            )
            if maps:
                return (maps[0].get("content"), maps[0]["creationDate"])
        return ()

    def message_creator(self, message_id: int) -> tuple:
        for label in ("post", "comment"):
            maps = self._submit(
                lambda g, label=label: _q_message_creator(
                    g, label, message_id
                ),
                key=f"message_creator:{label}",
            )
            if maps:
                m = maps[0]
                return (m["id"], m.get("firstName"), m.get("lastName"))
        return ()

    def message_forum(self, message_id: int) -> tuple:
        maps = self._submit(
            lambda g: _q_post_forum(g, message_id), key="post_forum"
        )
        if not maps:
            maps = self._submit(
                lambda g: _q_comment_forum(g, message_id),
                key="comment_forum",
            )
        if not maps:
            return ()
        forum = maps[0]
        moderators = self._submit(
            lambda g: _q_forum_moderator(g, forum["id"]),
            key="forum_moderator",
        )
        return (forum["id"], forum.get("title"),
                moderators[0] if moderators else None)

    def message_replies(self, message_id: int) -> list[tuple]:
        replies = []
        for label in ("post", "comment"):
            exists = self._submit(
                lambda g, label=label: _q_vertex_by_id(
                    g, label, message_id
                ),
                key=f"vertex_by_id:{label}",
            )
            if not exists:
                continue
            maps = self._submit(
                lambda g, label=label: _q_message_replies(
                    g, label, message_id
                ),
                key=f"message_replies:{label}",
            )
            for m in maps:
                creators = self._submit(
                    lambda g, mid=m["id"]: _q_reply_creator(
                        g, "comment", mid
                    ),
                    key="reply_creator:comment",
                )
                replies.append(
                    (m["id"], creators[0] if creators else None,
                     m["creationDate"])
                )
            break
        return sorted(replies)

    def complex_two_hop(self, person_id: int, limit: int = 20) -> list[tuple]:
        maps = self._submit(
            lambda g: _q_complex_two_hop(g, person_id, limit),
            key="complex_two_hop",
        )
        return [(m["id"], m.get("firstName"), m.get("lastName")) for m in maps]

    def friends_recent_posts(
        self, person_id: int, limit: int = 10
    ) -> list[tuple]:
        # no server-side (date, id) compound ordering in the traversal
        # API: fetch the whole neighbourhood activity and sort client-side
        # (exactly the kind of work a declarative engine would push down)
        maps = self._submit(
            lambda g: _q_friends_recent_posts(g, person_id),
            key="friends_recent_posts",
        )
        maps.sort(key=lambda m: (-m["creationDate"], -m["id"]))
        maps = maps[:limit]
        rows = []
        for m in maps:
            # the creator is one more request per message: the friend id
            creators = self._submit(
                lambda g, mid=m["id"]: _q_reply_creator(
                    g, "post" if "language" in m else "comment", mid
                ),
                key="reply_creator:message",
            )
            rows.append(
                (m["id"], creators[0] if creators else None,
                 m.get("content"), m["creationDate"])
            )
        rows.sort(key=lambda r: (-r[3], -r[0]))
        return rows[:limit]

    # -- inserts -----------------------------------------------------------------------------

    def _add_vertex(self, label: str, props: dict) -> None:
        results = self._submit(
            lambda g: _q_add_vertex(g, label, props),
            key=f"add_vertex:{label}",
        )
        self._vertex_cache.put(props["id"], results[0])

    def _add_edge(
        self,
        label: str,
        out_label: str,
        out_id: int,
        in_label: str,
        in_id: int,
        props: dict | None = None,
    ) -> None:
        in_results = self._submit(
            lambda g: _q_vertex_by_id(g, in_label, in_id),
            key=f"vertex_by_id:{in_label}",
        )
        if not in_results:
            raise OperationFailed(f"no {in_label} {in_id}")
        target = in_results[0]
        self._submit(
            lambda g: _q_add_edge(
                g, label, out_label, out_id, target, props or {}
            ),
            key=f"add_edge:{label}:{out_label}",
        )

    # -- execution-mode / caching hooks --------------------------------------------------------

    def set_execution_mode(self, mode: str) -> None:
        self.server.set_execution_mode(mode)

    def set_isolation_level(self, level: str) -> None:
        self.server.set_isolation_level(level)

    def enable_caching(self) -> None:
        """Turn on the Gremlin Server's script/bytecode cache."""
        self.server.enable_script_cache()

    def cache_stats(self) -> list:
        rows = list(self.server.cache_stats())
        rows.append(self._vertex_cache.stats())
        return rows

    def add_person(self, person: Person) -> None:
        self._add_vertex("person", {
            "id": person.id, "firstName": person.first_name,
            "lastName": person.last_name, "gender": person.gender,
            "birthday": person.birthday,
            "creationDate": person.creation_date,
            "browserUsed": person.browser_used,
            "locationIP": person.location_ip,
        })
        self._add_edge("isLocatedIn", "person", person.id,
                       "place", person.city)
        for tag_id in person.interests:
            self._add_edge("hasInterest", "person", person.id,
                           "tag", tag_id)

    def add_friendship(self, knows: Knows) -> None:
        self._add_edge("knows", "person", knows.person1,
                       "person", knows.person2,
                       {"creationDate": knows.creation_date})

    def add_forum(self, forum: Forum) -> None:
        self._add_vertex("forum", {
            "id": forum.id, "title": forum.title,
            "creationDate": forum.creation_date,
        })
        self._add_edge("hasModerator", "forum", forum.id,
                       "person", forum.moderator)
        for tag_id in forum.tags:
            self._add_edge("hasTag", "forum", forum.id, "tag", tag_id)

    def add_forum_membership(self, membership: ForumMembership) -> None:
        self._add_edge("hasMember", "forum", membership.forum,
                       "person", membership.person,
                       {"joinDate": membership.join_date})

    def add_post(self, post: Post) -> None:
        self._add_vertex("post", {
            "id": post.id, "creationDate": post.creation_date,
            "content": post.content, "length": post.length,
            "browserUsed": post.browser_used,
            "locationIP": post.location_ip, "language": post.language,
        })
        self._add_edge("hasCreator", "post", post.id,
                       "person", post.creator)
        self._add_edge("containerOf", "forum", post.forum, "post", post.id)
        self._add_edge("isLocatedIn", "post", post.id,
                       "place", post.country)
        for tag_id in post.tags:
            self._add_edge("hasTag", "post", post.id, "tag", tag_id)

    def add_comment(self, comment: Comment) -> None:
        self._add_vertex("comment", {
            "id": comment.id, "creationDate": comment.creation_date,
            "content": comment.content, "length": comment.length,
            "browserUsed": comment.browser_used,
            "locationIP": comment.location_ip,
        })
        self._add_edge("hasCreator", "comment", comment.id,
                       "person", comment.creator)
        # replyOf target may be a post or a comment: resolve by probe
        for label in ("post", "comment"):
            try:
                self._add_edge("replyOf", "comment", comment.id,
                               label, comment.reply_of)
                break
            except OperationFailed:
                continue
        self._add_edge("rootPost", "comment", comment.id,
                       "post", comment.root_post)
        self._add_edge("isLocatedIn", "comment", comment.id,
                       "place", comment.country)

    def add_like(self, like: Like) -> None:
        for label in ("post", "comment"):
            try:
                self._add_edge("likes", "person", like.person,
                               label, like.message,
                               {"creationDate": like.creation_date})
                return
            except OperationFailed:
                continue
        raise OperationFailed(f"no message {like.message}")


def _anon_both_knows():
    from repro.tinkerpop import anon

    return anon().both("knows").simplePath()


def _anon_has_id(person_id: int):
    from repro.tinkerpop import anon

    return anon().has("id", P.eq(person_id))


class Neo4jGremlinConnector(GremlinConnector):
    """Neo4j reached through the Gremlin Server (same store as Cypher)."""

    key = "neo4j-gremlin"
    system = "Neo4j"

    def _make_provider(self) -> GraphProvider:
        provider = Neo4jProvider()
        for label, key in VERTEX_INDEXES:
            provider.store.create_index(label, key)
        return provider

    def sanitize_targets(self) -> dict[str, object]:
        return {"graph": self.provider.store}

    def supports_concurrent_loading(self) -> bool:
        """Neo4j (Gremlin) does not support concurrent loading (App. A)."""
        return False


class TitanCassandraConnector(GremlinConnector):
    key = "titan-c"
    system = "Titan-C"

    def _make_provider(self) -> GraphProvider:
        provider = titan_cassandra()
        for label, key in VERTEX_INDEXES:
            provider.create_index(label, key)
        return provider

    def sanitize_targets(self) -> dict[str, object]:
        return {"titan": self.provider}


class TitanBerkeleyConnector(GremlinConnector):
    key = "titan-b"
    system = "Titan-B"
    write_resources = ("titan-b-writer",)

    def _make_provider(self) -> GraphProvider:
        provider = titan_berkeley()
        for label, key in VERTEX_INDEXES:
            provider.create_index(label, key)
        return provider

    def sanitize_targets(self) -> dict[str, object]:
        return {"titan": self.provider}


class SqlgConnector(GremlinConnector):
    key = "sqlg"
    system = "Sqlg"

    def _make_provider(self) -> GraphProvider:
        provider = SqlgProvider()
        provider.define_vertex_label("person", {
            "id": int, "firstName": str, "lastName": str, "gender": str,
            "birthday": int, "creationDate": int, "browserUsed": str,
            "locationIP": str,
        })
        provider.define_vertex_label("forum", {
            "id": int, "title": str, "creationDate": int,
        })
        provider.define_vertex_label("post", {
            "id": int, "creationDate": int, "content": str, "length": int,
            "browserUsed": str, "locationIP": str, "language": str,
        })
        provider.define_vertex_label("comment", {
            "id": int, "creationDate": int, "content": str, "length": int,
            "browserUsed": str, "locationIP": str,
        })
        provider.define_vertex_label("tag", {"id": int, "name": str})
        provider.define_vertex_label("tagclass", {"id": int, "name": str})
        provider.define_vertex_label(
            "place", {"id": int, "name": str, "type": str}
        )
        provider.define_vertex_label(
            "organisation", {"id": int, "name": str, "type": str}
        )
        for edge_label, props in [
            ("knows", {"creationDate": int}),
            ("hasMember", {"joinDate": int}),
            ("hasModerator", {}),
            ("containerOf", {}),
            ("hasCreator", {}),
            ("replyOf", {}),
            ("rootPost", {}),
            ("likes", {"creationDate": int}),
            ("hasTag", {}),
            ("hasInterest", {}),
            ("isLocatedIn", {}),
            ("isPartOf", {}),
            ("isSubclassOf", {}),
            ("hasType", {}),
            ("studyAt", {"classYear": int}),
            ("workAt", {"workFrom": int}),
        ]:
            provider.define_edge_label(edge_label, props)
        return provider

    def set_isolation_level(self, level: str) -> None:
        # the snapshot is taken at the server, but the backing relational
        # engine keeps its own default for direct SQL entry points
        self.server.set_isolation_level(level)
        self.provider.db.set_isolation_level(level)

    def sanitize_targets(self) -> dict[str, object]:
        return {"sqlg": self.provider.db}
