"""Neo4j (Cypher) connector: native graph storage, declarative queries.

Bulk loading uses the store API directly (the ``neo4j-import`` fast path);
reads and updates go through the Cypher engine.  Posts and comments carry
a second ``Message`` label so a single index serves message lookups, as in
the LDBC Cypher implementation.
"""

from __future__ import annotations

from repro.core.connectors.base import Connector
from repro.graphdb.engine import GraphDatabase
from repro.simclock.ledger import charge
from repro.snb.datagen import SnbDataset
from repro.snb.schema import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
)

#: every Cypher statement the connector issues, by operation.  Queries
#: with a caller-supplied LIMIT are stored without the clause; the
#: methods append ``LIMIT <n>`` at call time.  The catalog is validated
#: against the schema (see :mod:`repro.analysis`) at construction.
CYPHER_QUERIES: dict[str, tuple[str, ...]] = {
    "point_lookup": (
        "MATCH (p:Person {id: $id}) "
        "RETURN p.firstName, p.lastName, p.gender",
    ),
    "one_hop": (
        "MATCH (p:Person {id: $id})-[:KNOWS]-(f:Person) "
        "RETURN f.id AS id ORDER BY id",
    ),
    "two_hop": (
        "MATCH (p:Person {id: $id})-[:KNOWS]-(x:Person)"
        "-[:KNOWS]-(f:Person) WHERE f.id <> $id "
        "RETURN DISTINCT f.id AS id ORDER BY id",
    ),
    "shortest_path": (
        "MATCH p = shortestPath((a:Person {id: $a})-[:KNOWS*]-"
        "(b:Person {id: $b})) RETURN length(p)",
    ),
    "person_profile": (
        "MATCH (p:Person {id: $id})-[:IS_LOCATED_IN]->(c:Place) "
        "RETURN p.firstName, p.lastName, p.gender, p.birthday, "
        "p.browserUsed, c.id",
    ),
    "person_recent_posts": (
        "MATCH (p:Person {id: $id})<-[:HAS_CREATOR]-(m:Message) "
        "RETURN m.id AS id, m.content AS content, "
        "m.creationDate AS d ORDER BY d DESC, id DESC",
    ),
    "person_friends": (
        "MATCH (p:Person {id: $id})-[:KNOWS]-(f:Person) "
        "RETURN f.id AS id, f.firstName AS fn, f.lastName AS ln "
        "ORDER BY id",
    ),
    "message_content": (
        "MATCH (m:Message {id: $id}) RETURN m.content, m.creationDate",
    ),
    "message_creator": (
        "MATCH (m:Message {id: $id})-[:HAS_CREATOR]->(p:Person) "
        "RETURN p.id, p.firstName, p.lastName",
    ),
    "message_forum": (
        "MATCH (m:Post {id: $id})<-[:CONTAINER_OF]-(f:Forum)"
        "-[:HAS_MODERATOR]->(mod:Person) "
        "RETURN f.id, f.title, mod.id",
        "MATCH (c:Comment {id: $id})-[:ROOT_POST]->(:Post)"
        "<-[:CONTAINER_OF]-(f:Forum)-[:HAS_MODERATOR]->(mod:Person) "
        "RETURN f.id, f.title, mod.id",
    ),
    "message_replies": (
        "MATCH (m:Message {id: $id})<-[:REPLY_OF]-(c:Comment)"
        "-[:HAS_CREATOR]->(p:Person) "
        "RETURN c.id AS id, p.id AS pid, c.creationDate AS d "
        "ORDER BY id",
    ),
    "complex_two_hop": (
        "MATCH (p:Person {id: $id})-[:KNOWS]-(x:Person)"
        "-[:KNOWS]-(f:Person) WHERE f.id <> $id "
        "RETURN DISTINCT f.id AS id, f.firstName AS fn, "
        "f.lastName AS ln ORDER BY id",
    ),
    "friends_recent_posts": (
        "MATCH (p:Person {id: $id})-[:KNOWS]-(f:Person)"
        "<-[:HAS_CREATOR]-(m:Message) "
        "RETURN m.id AS id, f.id AS fid, m.content AS content, "
        "m.creationDate AS d ORDER BY d DESC, id DESC",
    ),
    "add_person": (
        "CREATE (p:Person {id: $id, firstName: $fn, lastName: $ln, "
        "gender: $g, birthday: $bd, creationDate: $cd, "
        "locationIP: $ip, browserUsed: $b})",
        "MATCH (p:Person {id: $id}), (c:Place {id: $city}) "
        "CREATE (p)-[:IS_LOCATED_IN]->(c)",
        "MATCH (p:Person {id: $id}), (t:Tag {id: $tag}) "
        "CREATE (p)-[:HAS_INTEREST]->(t)",
    ),
    "add_friendship": (
        "MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
        "CREATE (a)-[:KNOWS {creationDate: $d}]->(b)",
    ),
    "add_forum": (
        "CREATE (f:Forum {id: $id, title: $t, creationDate: $d})",
        "MATCH (f:Forum {id: $id}), (p:Person {id: $mod}) "
        "CREATE (f)-[:HAS_MODERATOR]->(p)",
        "MATCH (f:Forum {id: $id}), (t:Tag {id: $tag}) "
        "CREATE (f)-[:HAS_TAG]->(t)",
    ),
    "add_forum_membership": (
        "MATCH (f:Forum {id: $f}), (p:Person {id: $p}) "
        "CREATE (f)-[:HAS_MEMBER {joinDate: $d}]->(p)",
    ),
    "add_post": (
        "CREATE (m:Post:Message {id: $id, creationDate: $d, "
        "content: $c, length: $l, browserUsed: $b, locationIP: $ip, "
        "language: $lang})",
        "MATCH (m:Post {id: $id}), (p:Person {id: $creator}), "
        "(f:Forum {id: $forum}), (c:Place {id: $country}) "
        "CREATE (m)-[:HAS_CREATOR]->(p), (f)-[:CONTAINER_OF]->(m), "
        "(m)-[:IS_LOCATED_IN]->(c)",
        "MATCH (m:Post {id: $id}), (t:Tag {id: $tag}) "
        "CREATE (m)-[:HAS_TAG]->(t)",
    ),
    "add_comment": (
        "CREATE (m:Comment:Message {id: $id, creationDate: $d, "
        "content: $c, length: $l, browserUsed: $b, locationIP: $ip})",
        "MATCH (m:Comment {id: $id}), (p:Person {id: $creator}), "
        "(parent:Message {id: $parent}), (root:Post {id: $root}), "
        "(c:Place {id: $country}) "
        "CREATE (m)-[:HAS_CREATOR]->(p), (m)-[:REPLY_OF]->(parent), "
        "(m)-[:ROOT_POST]->(root), (m)-[:IS_LOCATED_IN]->(c)",
    ),
    "add_like": (
        "MATCH (p:Person {id: $p}), (m:Message {id: $m}) "
        "CREATE (p)-[:LIKES {creationDate: $d}]->(m)",
    ),
}


class CypherConnector(Connector):
    key = "neo4j-cypher"
    system = "Neo4j"
    language = "Cypher"

    dialect = "cypher"
    query_catalog = CYPHER_QUERIES

    def __init__(self) -> None:
        self._validate_queries()
        self.db = GraphDatabase("neo4j")
        for label in ("Person", "Forum", "Message", "Tag", "Place",
                      "Organisation", "TagClass"):
            self.db.create_index(label, "id")
        self._node_of: dict[int, int] = {}  # snb id -> store node id

    def sanitize_targets(self) -> dict[str, object]:
        return {"graph": self.db.store, "wal": self.db.wal}

    # -- loading ------------------------------------------------------------------

    def load(self, dataset: SnbDataset) -> None:
        store = self.db.store
        node_of = self._node_of
        for place in dataset.places:
            node_of[place.id] = store.create_node(
                ("Place",),
                {"id": place.id, "name": place.name, "type": place.kind},
            )
        for place in dataset.places:
            if place.part_of is not None:
                store.create_rel(
                    "IS_PART_OF", node_of[place.id], node_of[place.part_of]
                )
        for tc in dataset.tag_classes:
            node_of[tc.id] = store.create_node(
                ("TagClass",), {"id": tc.id, "name": tc.name}
            )
        for tc in dataset.tag_classes:
            if tc.subclass_of is not None:
                store.create_rel(
                    "IS_SUBCLASS_OF", node_of[tc.id], node_of[tc.subclass_of]
                )
        for tag in dataset.tags:
            node_of[tag.id] = store.create_node(
                ("Tag",), {"id": tag.id, "name": tag.name}
            )
            store.create_rel(
                "HAS_TYPE", node_of[tag.id], node_of[tag.tag_class]
            )
        for org in dataset.organisations:
            node_of[org.id] = store.create_node(
                ("Organisation",),
                {"id": org.id, "name": org.name, "type": org.kind},
            )
            store.create_rel(
                "IS_LOCATED_IN", node_of[org.id], node_of[org.place]
            )
        for person in dataset.persons:
            self._load_person_direct(person)
        for knows in dataset.knows:
            store.create_rel(
                "KNOWS",
                node_of[knows.person1],
                node_of[knows.person2],
                {"creationDate": knows.creation_date},
            )
        for forum in dataset.forums:
            self._load_forum_direct(forum)
        for m in dataset.memberships:
            store.create_rel(
                "HAS_MEMBER",
                node_of[m.forum],
                node_of[m.person],
                {"joinDate": m.join_date},
            )
        for post in dataset.posts:
            self._load_post_direct(post)
        for comment in dataset.comments:
            self._load_comment_direct(comment)
        for like in dataset.likes:
            store.create_rel(
                "LIKES",
                node_of[like.person],
                node_of[like.message],
                {"creationDate": like.creation_date},
            )
        self.db.analyze()

    def _load_person_direct(self, person: Person) -> None:
        store = self.db.store
        node = store.create_node(
            ("Person",),
            {
                "id": person.id,
                "firstName": person.first_name,
                "lastName": person.last_name,
                "gender": person.gender,
                "birthday": person.birthday,
                "creationDate": person.creation_date,
                "locationIP": person.location_ip,
                "browserUsed": person.browser_used,
                "speaks": list(person.speaks),
                "email": list(person.emails),
            },
        )
        self._node_of[person.id] = node
        store.create_rel("IS_LOCATED_IN", node, self._node_of[person.city])
        for tag_id in person.interests:
            store.create_rel("HAS_INTEREST", node, self._node_of[tag_id])
        if person.university is not None:
            store.create_rel(
                "STUDY_AT",
                node,
                self._node_of[person.university],
                {"classYear": person.class_year},
            )
        if person.company is not None:
            store.create_rel(
                "WORK_AT",
                node,
                self._node_of[person.company],
                {"workFrom": person.work_from},
            )

    def _load_forum_direct(self, forum: Forum) -> None:
        store = self.db.store
        node = store.create_node(
            ("Forum",),
            {
                "id": forum.id,
                "title": forum.title,
                "creationDate": forum.creation_date,
            },
        )
        self._node_of[forum.id] = node
        store.create_rel(
            "HAS_MODERATOR", node, self._node_of[forum.moderator]
        )
        for tag_id in forum.tags:
            store.create_rel("HAS_TAG", node, self._node_of[tag_id])

    def _load_post_direct(self, post: Post) -> None:
        store = self.db.store
        node = store.create_node(
            ("Post", "Message"),
            {
                "id": post.id,
                "creationDate": post.creation_date,
                "content": post.content,
                "length": post.length,
                "browserUsed": post.browser_used,
                "locationIP": post.location_ip,
                "language": post.language,
            },
        )
        self._node_of[post.id] = node
        store.create_rel("HAS_CREATOR", node, self._node_of[post.creator])
        store.create_rel("CONTAINER_OF", self._node_of[post.forum], node)
        store.create_rel("IS_LOCATED_IN", node, self._node_of[post.country])
        for tag_id in post.tags:
            store.create_rel("HAS_TAG", node, self._node_of[tag_id])

    def _load_comment_direct(self, comment: Comment) -> None:
        store = self.db.store
        node = store.create_node(
            ("Comment", "Message"),
            {
                "id": comment.id,
                "creationDate": comment.creation_date,
                "content": comment.content,
                "length": comment.length,
                "browserUsed": comment.browser_used,
                "locationIP": comment.location_ip,
            },
        )
        self._node_of[comment.id] = node
        store.create_rel("HAS_CREATOR", node, self._node_of[comment.creator])
        store.create_rel("REPLY_OF", node, self._node_of[comment.reply_of])
        store.create_rel("ROOT_POST", node, self._node_of[comment.root_post])
        store.create_rel(
            "IS_LOCATED_IN", node, self._node_of[comment.country]
        )
        for tag_id in comment.tags:
            store.create_rel("HAS_TAG", node, self._node_of[tag_id])

    def size_bytes(self) -> int:
        return self.db.size_bytes()

    # -- reads -------------------------------------------------------------------------

    def _query(self, cypher: str, params: dict | None = None) -> list[tuple]:
        charge("client_rtt")
        return self.db.execute(cypher, params)

    def point_lookup(self, person_id: int) -> tuple:
        rows = self._query(
            CYPHER_QUERIES["point_lookup"][0], {"id": person_id}
        )
        return rows[0] if rows else ()

    def one_hop(self, person_id: int) -> list[int]:
        rows = self._query(
            CYPHER_QUERIES["one_hop"][0], {"id": person_id}
        )
        return [r[0] for r in rows]

    def two_hop(self, person_id: int) -> list[int]:
        rows = self._query(
            CYPHER_QUERIES["two_hop"][0], {"id": person_id}
        )
        return [r[0] for r in rows]

    def shortest_path(self, person1: int, person2: int) -> int | None:
        rows = self._query(
            CYPHER_QUERIES["shortest_path"][0],
            {"a": person1, "b": person2},
        )
        return rows[0][0] if rows else None

    def person_profile(self, person_id: int) -> tuple:
        rows = self._query(
            CYPHER_QUERIES["person_profile"][0], {"id": person_id}
        )
        return rows[0] if rows else ()

    def person_recent_posts(self, person_id: int, limit: int = 10) -> list:
        return self._query(
            CYPHER_QUERIES["person_recent_posts"][0]
            + f" LIMIT {int(limit)}",
            {"id": person_id},
        )

    def person_friends(self, person_id: int) -> list[tuple]:
        return self._query(
            CYPHER_QUERIES["person_friends"][0], {"id": person_id}
        )

    def message_content(self, message_id: int) -> tuple:
        rows = self._query(
            CYPHER_QUERIES["message_content"][0], {"id": message_id}
        )
        return rows[0] if rows else ()

    def message_creator(self, message_id: int) -> tuple:
        rows = self._query(
            CYPHER_QUERIES["message_creator"][0], {"id": message_id}
        )
        return rows[0] if rows else ()

    def message_forum(self, message_id: int) -> tuple:
        rows = self._query(
            CYPHER_QUERIES["message_forum"][0], {"id": message_id}
        )
        if not rows:
            rows = self._query(
                CYPHER_QUERIES["message_forum"][1], {"id": message_id}
            )
        return rows[0] if rows else ()

    def message_replies(self, message_id: int) -> list[tuple]:
        return self._query(
            CYPHER_QUERIES["message_replies"][0], {"id": message_id}
        )

    def complex_two_hop(self, person_id: int, limit: int = 20) -> list[tuple]:
        return self._query(
            CYPHER_QUERIES["complex_two_hop"][0]
            + f" LIMIT {int(limit)}",
            {"id": person_id},
        )

    def friends_recent_posts(
        self, person_id: int, limit: int = 10
    ) -> list[tuple]:
        return self._query(
            CYPHER_QUERIES["friends_recent_posts"][0]
            + f" LIMIT {int(limit)}",
            {"id": person_id},
        )

    # -- inserts ------------------------------------------------------------------------------

    def _execute(self, cypher: str, params: dict | None = None) -> None:
        charge("client_rtt")
        self.db.execute(cypher, params)

    def add_person(self, person: Person) -> None:
        self._execute(
            CYPHER_QUERIES["add_person"][0],
            {
                "id": person.id, "fn": person.first_name,
                "ln": person.last_name, "g": person.gender,
                "bd": person.birthday, "cd": person.creation_date,
                "ip": person.location_ip, "b": person.browser_used,
            },
        )
        self._execute(
            CYPHER_QUERIES["add_person"][1],
            {"id": person.id, "city": person.city},
        )
        for tag_id in person.interests:
            self._execute(
                CYPHER_QUERIES["add_person"][2],
                {"id": person.id, "tag": tag_id},
            )

    def add_friendship(self, knows: Knows) -> None:
        self._execute(
            CYPHER_QUERIES["add_friendship"][0],
            {"a": knows.person1, "b": knows.person2,
             "d": knows.creation_date},
        )

    def add_forum(self, forum: Forum) -> None:
        self._execute(
            CYPHER_QUERIES["add_forum"][0],
            {"id": forum.id, "t": forum.title, "d": forum.creation_date},
        )
        self._execute(
            CYPHER_QUERIES["add_forum"][1],
            {"id": forum.id, "mod": forum.moderator},
        )
        for tag_id in forum.tags:
            self._execute(
                CYPHER_QUERIES["add_forum"][2],
                {"id": forum.id, "tag": tag_id},
            )

    def add_forum_membership(self, membership: ForumMembership) -> None:
        self._execute(
            CYPHER_QUERIES["add_forum_membership"][0],
            {"f": membership.forum, "p": membership.person,
             "d": membership.join_date},
        )

    def add_post(self, post: Post) -> None:
        self._execute(
            CYPHER_QUERIES["add_post"][0],
            {"id": post.id, "d": post.creation_date, "c": post.content,
             "l": post.length, "b": post.browser_used,
             "ip": post.location_ip, "lang": post.language},
        )
        self._execute(
            CYPHER_QUERIES["add_post"][1],
            {"id": post.id, "creator": post.creator, "forum": post.forum,
             "country": post.country},
        )
        for tag_id in post.tags:
            self._execute(
                CYPHER_QUERIES["add_post"][2],
                {"id": post.id, "tag": tag_id},
            )

    def add_comment(self, comment: Comment) -> None:
        self._execute(
            CYPHER_QUERIES["add_comment"][0],
            {"id": comment.id, "d": comment.creation_date,
             "c": comment.content, "l": comment.length,
             "b": comment.browser_used, "ip": comment.location_ip},
        )
        self._execute(
            CYPHER_QUERIES["add_comment"][1],
            {"id": comment.id, "creator": comment.creator,
             "parent": comment.reply_of, "root": comment.root_post,
             "country": comment.country},
        )

    def add_like(self, like: Like) -> None:
        self._execute(
            CYPHER_QUERIES["add_like"][0],
            {"p": like.person, "m": like.message, "d": like.creation_date},
        )

    # -- batching / caching hooks ------------------------------------------------------------------

    def apply_update_batch(self, events: list) -> None:
        """Group commit: one WAL fsync for the whole poll of events."""
        with self.db.write_batch():
            for event in events:
                self.apply_update(event)

    def set_execution_mode(self, mode: str) -> None:
        self.db.set_execution_mode(mode)

    def set_isolation_level(self, level: str) -> None:
        self.db.set_isolation_level(level)

    def enable_caching(self) -> None:
        """Turn on the store's adjacency/neighborhood cache."""
        self.db.enable_adjacency_cache()

    def cache_stats(self) -> list:
        return self.db.cache_stats()

    # -- concurrency hooks -------------------------------------------------------------------------

    def checkpoint_pages(self) -> int:
        return self.db.checkpoint()
