"""Paper-style plain-text tables and ASCII chart rendering."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width table like the paper's Tables 1-4."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(values: Sequence[str]) -> str:
        return " | ".join(v.rjust(w) for v, w in zip(values, widths))

    separator = "-+-".join("-" * w for w in widths)
    out = [title, line(list(headers)), separator]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN => DNF, the paper's '-'
            return "-"
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_series(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 12,
) -> str:
    """ASCII multi-line chart for Figure 3's throughput-over-time series."""
    points = [p for s in series.values() for p in s]
    if not points:
        return f"{title}\n(no data)"
    max_y = max(y for _, y in points) or 1.0
    max_x = max(x for x, _ in points) or 1.0
    symbols = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, data) in enumerate(sorted(series.items())):
        symbol = symbols[idx % len(symbols)]
        for x, y in data:
            col = min(width - 1, int(x / max_x * (width - 1)))
            row = min(height - 1, int(y / max_y * (height - 1)))
            grid[height - 1 - row][col] = symbol
    lines = [title]
    lines.append(f"{max_y:>10.0f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{0:>10} +" + "-" * width)
    legend = "   ".join(
        f"{symbols[i % len(symbols)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
