"""Metric collection: latency distributions and throughput windows."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class LatencyRecorder:
    """Collects per-operation latencies (simulated milliseconds)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples_ms: list[float] = []

    def record(self, latency_ms: float) -> None:
        self.samples_ms.append(latency_ms)

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    def mean(self) -> float:
        if not self.samples_ms:
            return math.nan
        return sum(self.samples_ms) / len(self.samples_ms)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not self.samples_ms:
            return math.nan
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self.samples_ms)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    def min(self) -> float:
        return min(self.samples_ms) if self.samples_ms else math.nan

    def max(self) -> float:
        return max(self.samples_ms) if self.samples_ms else math.nan


@dataclass
class ThroughputWindow:
    """Operations per second bucketed into fixed simulated-time windows.

    Produces the time series of Figure 3 (including the dips: a window
    overlapping a write stall simply completes fewer operations).
    """

    window_ms: float = 1000.0
    _counts: dict[int, int] = field(default_factory=dict)

    def record(self, at_ms: float) -> None:
        self._counts[int(at_ms // self.window_ms)] = (
            self._counts.get(int(at_ms // self.window_ms), 0) + 1
        )

    def series(self, until_ms: float | None = None) -> list[tuple[float, float]]:
        """(window start ms, ops/sec) for every window, empty ones included."""
        if not self._counts:
            return []
        last = max(self._counts)
        if until_ms is not None:
            last = max(last, int(until_ms // self.window_ms) - 1)
        scale = 1000.0 / self.window_ms
        return [
            (w * self.window_ms, self._counts.get(w, 0) * scale)
            for w in range(0, last + 1)
        ]

    def total(self) -> int:
        return sum(self._counts.values())

    def mean_rate(self, duration_ms: float) -> float:
        """Average ops/sec over an experiment of ``duration_ms``."""
        if duration_ms <= 0:
            return 0.0
        return self.total() / (duration_ms / 1000.0)
