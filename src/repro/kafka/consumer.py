"""Consumer: offset-tracked polling over all partitions of a topic."""

from __future__ import annotations

from repro.kafka.broker import Broker, Record
from repro.simclock.ledger import charge


class Consumer:
    """One consumer in a named group (one consumer per group here).

    Polls partitions round-robin from the last *committed* offsets;
    :meth:`commit` advances them.  Two consumers in different groups see
    independent offset cursors over the same log.

    ``partitions`` restricts the consumer to an explicit assignment (as
    ``assign()`` does in real Kafka): a cluster read replica consumes
    only its own shard's partition so per-shard ordering is the *only*
    ordering it ever observes.
    """

    def __init__(
        self,
        broker: Broker,
        group: str,
        topic: str,
        *,
        max_poll_records: int = 64,
        partitions: list[int] | None = None,
    ) -> None:
        self.broker = broker
        self.group = group
        self.topic = topic
        self.max_poll_records = max_poll_records
        count = broker.partition_count(topic)
        if partitions is None:
            self._assigned = list(range(count))
        else:
            bad = [p for p in partitions if not 0 <= p < count]
            if bad:
                raise ValueError(
                    f"partitions {bad} out of range for {topic!r} "
                    f"({count} partitions)"
                )
            self._assigned = list(partitions)
        self._committed = [0] * count
        self._position = [0] * count
        self.records_consumed = 0

    def poll(self, max_records: int | None = None) -> list[Record]:
        """Fetch up to ``max_records`` across partitions (one round trip).

        ``max_records`` defaults to the consumer's configured
        ``max_poll_records`` (the Kafka property of the same name).
        """
        if max_records is None:
            max_records = self.max_poll_records
        charge("client_rtt")
        out: list[Record] = []
        for partition in self._assigned:
            if len(out) >= max_records:
                break
            batch = self.broker.fetch(
                self.topic,
                partition,
                self._position[partition],
                max_records - len(out),
            )
            self._position[partition] += len(batch)
            out.extend(batch)
        self.records_consumed += len(out)
        return out

    def commit(self) -> None:
        """Mark everything polled so far as processed."""
        charge("client_rtt")
        self._committed = list(self._position)

    def seek_to_committed(self) -> None:
        """Rewind to the committed offsets (re-deliver uncommitted)."""
        self._position = list(self._committed)

    def lag(self) -> int:
        """Records available but not yet polled (assigned partitions)."""
        return sum(
            self.broker.end_offset(self.topic, p) - self._position[p]
            for p in self._assigned
        )
