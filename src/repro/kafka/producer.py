"""Producer: hash-partitioned, batched sends."""

from __future__ import annotations

import zlib
from typing import Any

from repro.kafka.broker import Broker
from repro.simclock.ledger import charge


class Producer:
    """Buffers records and pays one round trip per flushed batch."""

    def __init__(self, broker: Broker, batch_size: int = 16) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.broker = broker
        self.batch_size = batch_size
        self._buffer: list[tuple[str, int, Any, Any, int]] = []
        self.records_sent = 0

    def send(
        self,
        topic: str,
        key: Any,
        value: Any,
        timestamp_ms: int = 0,
        *,
        partition: int | None = None,
    ) -> None:
        """Queue one record; flushes automatically at the batch size.

        ``partition`` pins the record to an explicit partition (the CDC
        pipeline routes each shard's changes to its own partition so
        per-shard order survives the fan-in); by default the partition
        is derived from ``key`` by hash.
        """
        if partition is None:
            partition = self._partition_for(topic, key)
        elif not 0 <= partition < self.broker.partition_count(topic):
            raise ValueError(
                f"partition {partition} out of range for {topic!r}"
            )
        self._buffer.append((topic, partition, key, value, timestamp_ms))
        if len(self._buffer) >= self.batch_size:
            self.flush()

    def _partition_for(self, topic: str, key: Any) -> int:
        count = self.broker.partition_count(topic)
        if key is None:
            return self.records_sent % count
        return zlib.crc32(str(key).encode()) % count

    def flush(self) -> None:
        if not self._buffer:
            return
        charge("client_rtt")
        for topic, partition, key, value, ts in self._buffer:
            self.broker.append(topic, partition, key, value, ts)
            self.records_sent += 1
        self._buffer.clear()
