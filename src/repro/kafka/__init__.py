"""Kafka analogue: the update-stream transport of the benchmark architecture.

The paper's contribution #1 routes LDBC update operations through a Kafka
queue so a dedicated writer ingests them in real time while readers hit
the SUT concurrently.  This package provides the broker (topics /
partitions / offset logs), producers, and consumer groups that the
workload driver uses.
"""

from repro.kafka.broker import Broker, Record
from repro.kafka.producer import Producer
from repro.kafka.consumer import Consumer

__all__ = ["Broker", "Record", "Producer", "Consumer"]
