"""The broker: named topics of append-only partition logs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.simclock.ledger import charge


@dataclass(frozen=True)
class Record:
    """One committed record."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any
    timestamp_ms: int


class _PartitionLog:
    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[Record] = []

    @property
    def end_offset(self) -> int:
        return len(self.records)


class _Topic:
    def __init__(self, name: str, partitions: int) -> None:
        if partitions < 1:
            raise ValueError("a topic needs at least one partition")
        self.name = name
        self.partitions = [_PartitionLog() for _ in range(partitions)]


class Broker:
    """A single-node broker; durability is charged per appended record."""

    def __init__(self) -> None:
        self._topics: dict[str, _Topic] = {}

    def create_topic(self, name: str, partitions: int = 1) -> None:
        if name in self._topics:
            raise ValueError(f"topic {name!r} already exists")
        self._topics[name] = _Topic(name, partitions)

    def has_topic(self, name: str) -> bool:
        return name in self._topics

    def partition_count(self, topic: str) -> int:
        return len(self._topic(topic).partitions)

    def _topic(self, name: str) -> _Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise KeyError(f"no topic {name!r}") from None

    # -- broker-side operations (called by clients) ----------------------------

    def append(
        self,
        topic: str,
        partition: int,
        key: Any,
        value: Any,
        timestamp_ms: int,
    ) -> int:
        """Append one record; returns its offset."""
        log = self._topic(topic).partitions[partition]
        charge("wal_append")
        record = Record(
            topic, partition, log.end_offset, key, value, timestamp_ms
        )
        log.records.append(record)
        return record.offset

    def fetch(
        self, topic: str, partition: int, offset: int, max_records: int
    ) -> list[Record]:
        log = self._topic(topic).partitions[partition]
        batch = log.records[offset : offset + max_records]
        charge("value_cpu", len(batch))
        return batch

    def end_offset(self, topic: str, partition: int) -> int:
        return self._topic(topic).partitions[partition].end_offset

    def total_records(self, topic: str) -> int:
        return sum(p.end_offset for p in self._topic(topic).partitions)
