"""Disk manager and LRU buffer pool.

The :class:`DiskManager` is the "disk": a map from page id to immutable page
images.  Reading from it charges ``page_read``; writing charges
``page_write``.  The :class:`BufferPool` keeps hot pages in memory (charging
``buffer_hit``) and writes dirty pages back on eviction or flush.

The paper configures every system to hold the whole dataset in RAM, so the
benchmark harness sizes pools generously; the miss path still exists and is
exercised by tests and by the loading experiments.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.simclock.ledger import charge
from repro.storage.pages import PAGE_SIZE, SlottedPage


class DiskManager:
    """Page-granular persistent storage (simulated)."""

    def __init__(self) -> None:
        self._pages: dict[int, bytes] = {}
        self._next_page_id = 0

    def allocate(self) -> int:
        """Allocate a fresh zeroed page; returns its page id."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = bytes(PAGE_SIZE)
        return page_id

    def read(self, page_id: int) -> bytes:
        charge("page_read")
        return self._pages[page_id]

    def write(self, page_id: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise ValueError("page image must be PAGE_SIZE bytes")
        charge("page_write")
        self._pages[page_id] = bytes(data)

    @property
    def page_count(self) -> int:
        return self._next_page_id

    def size_bytes(self) -> int:
        return self.page_count * PAGE_SIZE


class BufferPool:
    """LRU cache of mutable page frames over a :class:`DiskManager`."""

    def __init__(self, disk: DiskManager, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    def get(self, page_id: int) -> bytearray:
        """Return the in-memory frame for ``page_id`` (loading if needed)."""
        frame = self._frames.get(page_id)
        if frame is not None:
            charge("buffer_hit")
            self.hits += 1
            self._frames.move_to_end(page_id)
            return frame
        self.misses += 1
        frame = bytearray(self.disk.read(page_id))
        self._frames[page_id] = frame
        if len(self._frames) > self.capacity:
            self._evict_one()
        return frame

    def get_page(self, page_id: int) -> SlottedPage:
        """Convenience: wrap the frame as a :class:`SlottedPage`."""
        return SlottedPage(self.get(page_id))

    def new_page(self) -> tuple[int, SlottedPage]:
        """Allocate a page on disk and return it as an empty slotted page."""
        page_id = self.disk.allocate()
        frame = bytearray(PAGE_SIZE)
        page = SlottedPage(frame)  # writes empty header
        charge("buffer_hit")
        self._frames[page_id] = frame
        self._dirty.add(page_id)
        if len(self._frames) > self.capacity:
            self._evict_one()
        return page_id, page

    def mark_dirty(self, page_id: int) -> None:
        if page_id not in self._frames:
            raise KeyError(f"page {page_id} is not resident")
        self._dirty.add(page_id)

    def dirty_count(self) -> int:
        return len(self._dirty)

    def flush(self, page_id: int) -> None:
        """Write one dirty page back to disk."""
        if page_id in self._dirty:
            self.disk.write(page_id, bytes(self._frames[page_id]))
            self._dirty.discard(page_id)

    def flush_all(self) -> int:
        """Write all dirty pages back; returns how many were flushed."""
        flushed = 0
        for page_id in sorted(self._dirty):
            self.disk.write(page_id, bytes(self._frames[page_id]))
            flushed += 1
        self._dirty.clear()
        return flushed

    def _evict_one(self) -> None:
        # evict the least recently used frame that is not the newest insert
        victim_id, frame = self._frames.popitem(last=False)
        if victim_id in self._dirty:
            self.disk.write(victim_id, bytes(frame))
            self._dirty.discard(victim_id)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
