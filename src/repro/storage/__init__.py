"""Storage substrates shared by all database engines in the reproduction.

* :mod:`repro.storage.pages`     — byte-level slotted pages
* :mod:`repro.storage.buffer`    — disk manager + LRU buffer pool
* :mod:`repro.storage.codec`     — schema-driven row (de)serialization
* :mod:`repro.storage.heap`      — heap files of variable-length records
* :mod:`repro.storage.btree`     — B+tree index with range scans
* :mod:`repro.storage.hashindex` — equality-only hash index
* :mod:`repro.storage.column`    — append-optimized column store segments
* :mod:`repro.storage.lsm`       — LSM tree (memtable / SSTables / bloom)
* :mod:`repro.storage.bdb`       — embedded ordered KV store (BerkeleyDB-like)
* :mod:`repro.storage.wal`       — write-ahead log + checkpointer
"""

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool, DiskManager
from repro.storage.codec import ColumnType, RowCodec
from repro.storage.column import ColumnTable
from repro.storage.hashindex import HashIndex
from repro.storage.heap import RID, HeapFile
from repro.storage.lsm import LSMTree
from repro.storage.bdb import BDBStore
from repro.storage.pages import PAGE_SIZE, SlottedPage
from repro.storage.wal import Checkpointer, WriteAheadLog

__all__ = [
    "PAGE_SIZE",
    "SlottedPage",
    "DiskManager",
    "BufferPool",
    "ColumnType",
    "RowCodec",
    "RID",
    "HeapFile",
    "BPlusTree",
    "HashIndex",
    "ColumnTable",
    "LSMTree",
    "BDBStore",
    "WriteAheadLog",
    "Checkpointer",
]
