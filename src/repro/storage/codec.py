"""Schema-driven row serialization.

Rows are Python tuples; the codec packs them to bytes for slotted-page
storage and back.  Wire format per column: one null byte followed by the
typed payload (fixed-width for scalars, length-prefixed UTF-8 for text).
"""

from __future__ import annotations

import enum
import struct
from collections.abc import Sequence

from repro.simclock.ledger import charge

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

#: one column value: the four scalar wire types, or SQL NULL
Value = int | float | str | bool | None

#: one stored row: a fixed-width tuple of column values
Row = tuple[Value, ...]


class ColumnType(enum.Enum):
    """Supported column types (a pragmatic subset of SQL types)."""

    INT = "int"        # 64-bit signed integer (also used for timestamps)
    FLOAT = "float"    # IEEE-754 double
    TEXT = "text"      # UTF-8 string
    BOOL = "bool"

    def validate(self, value: object) -> None:
        """Raise ``TypeError`` when ``value`` does not match this type."""
        if value is None:
            return
        if self is ColumnType.INT and not isinstance(value, int):
            raise TypeError(f"expected int, got {type(value).__name__}")
        if self is ColumnType.FLOAT and not isinstance(value, (int, float)):
            raise TypeError(f"expected float, got {type(value).__name__}")
        if self is ColumnType.TEXT and not isinstance(value, str):
            raise TypeError(f"expected str, got {type(value).__name__}")
        if self is ColumnType.BOOL and not isinstance(value, bool):
            raise TypeError(f"expected bool, got {type(value).__name__}")


class RowCodec:
    """Packs and unpacks rows for a fixed column-type signature."""

    def __init__(self, types: Sequence[ColumnType]) -> None:
        if not types:
            raise ValueError("a row needs at least one column")
        self.types = tuple(types)

    def encode(self, row: Sequence[Value]) -> bytes:
        if len(row) != len(self.types):
            raise ValueError(
                f"row has {len(row)} values, schema has {len(self.types)}"
            )
        parts: list[bytes] = []
        for ctype, value in zip(self.types, row):
            ctype.validate(value)
            if value is None:
                parts.append(b"\x00")
                continue
            parts.append(b"\x01")
            if ctype is ColumnType.INT:
                parts.append(_I64.pack(value))
            elif ctype is ColumnType.FLOAT:
                parts.append(_F64.pack(float(value)))
            elif ctype is ColumnType.BOOL:
                parts.append(b"\x01" if value else b"\x00")
            else:  # TEXT
                payload = value.encode("utf-8")
                parts.append(_U32.pack(len(payload)))
                parts.append(payload)
        return b"".join(parts)

    def decode(self, data: bytes) -> Row:
        charge("value_cpu", len(self.types))
        values: list[Value] = []
        pos = 0
        for ctype in self.types:
            present = data[pos]
            pos += 1
            if not present:
                values.append(None)
                continue
            if ctype is ColumnType.INT:
                values.append(_I64.unpack_from(data, pos)[0])
                pos += 8
            elif ctype is ColumnType.FLOAT:
                values.append(_F64.unpack_from(data, pos)[0])
                pos += 8
            elif ctype is ColumnType.BOOL:
                values.append(bool(data[pos]))
                pos += 1
            else:  # TEXT
                (length,) = _U32.unpack_from(data, pos)
                pos += 4
                values.append(data[pos : pos + length].decode("utf-8"))
                pos += length
        if pos != len(data):
            raise ValueError("trailing bytes after row payload")
        return tuple(values)
