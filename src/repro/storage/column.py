"""Append-optimized column store (the Virtuoso-like storage layout).

Each column is a dense vector; TEXT columns are dictionary-encoded.  Reads
of a few columns are cheap (``column_value`` per cell); point access pays a
positional seek per column (``column_seek``).  Updates are where the layout
hurts: every changed column pays ``column_update`` (out-of-place rewrite +
positional bookkeeping), which is the mechanism behind the paper's finding
that "columnar storage ... is known to suffer under transactional workloads
with frequent updates".
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.simclock.ledger import charge
from repro.storage.codec import ColumnType, Row, Value


class _Column:
    """One column vector, dictionary-encoded when TEXT."""

    __slots__ = ("name", "ctype", "data", "dictionary", "codes")

    def __init__(self, name: str, ctype: ColumnType) -> None:
        self.name = name
        self.ctype = ctype
        self.data: list[Value] = []  # raw values, or dict codes for TEXT
        self.dictionary: dict[str, int] = {} if ctype is ColumnType.TEXT else {}
        self.codes: list[str] = []  # code -> string

    def append(self, value: Value) -> None:
        self.ctype.validate(value)
        charge("column_append")
        if self.ctype is ColumnType.TEXT and value is not None:
            code = self.dictionary.get(value)
            if code is None:
                code = len(self.codes)
                self.dictionary[value] = code
                self.codes.append(value)
            self.data.append(code)
        else:
            self.data.append(value)

    def get(self, pos: int) -> Value:
        charge("column_value")
        raw = self.data[pos]
        if self.ctype is ColumnType.TEXT and raw is not None:
            return self.codes[raw]
        return raw

    def set(self, pos: int, value: Value) -> None:
        self.ctype.validate(value)
        charge("column_update")
        if self.ctype is ColumnType.TEXT and value is not None:
            code = self.dictionary.get(value)
            if code is None:
                code = len(self.codes)
                self.dictionary[value] = code
                self.codes.append(value)
            self.data[pos] = code
        else:
            self.data[pos] = value

    def size_bytes(self) -> int:
        if self.ctype is ColumnType.TEXT:
            dict_bytes = sum(len(s.encode()) + 8 for s in self.codes)
            return 4 * len(self.data) + dict_bytes
        if self.ctype is ColumnType.BOOL:
            return len(self.data)
        return 8 * len(self.data)


class ColumnTable:
    """A table stored column-wise with a delete bitmap."""

    def __init__(
        self,
        name: str,
        columns: Sequence[tuple[str, ColumnType]],
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.name = name
        self.column_names = [c for c, _ in columns]
        self._columns = {c: _Column(c, t) for c, t in columns}
        self._col_index = {c: i for i, (c, _) in enumerate(columns)}
        self._deleted: set[int] = set()
        self.row_count = 0

    def __len__(self) -> int:
        return self.row_count

    @property
    def total_positions(self) -> int:
        """Number of row positions including deleted ones."""
        return len(next(iter(self._columns.values())).data)

    # -- write path --------------------------------------------------------------

    def append(self, row: Sequence[Value]) -> int:
        """Append a row; returns its position."""
        if len(row) != len(self.column_names):
            raise ValueError(
                f"row has {len(row)} values, table has "
                f"{len(self.column_names)} columns"
            )
        for name, value in zip(self.column_names, row):
            self._columns[name].append(value)
        pos = self.total_positions - 1
        self.row_count += 1
        return pos

    def update(self, pos: int, changes: Mapping[str, Value]) -> None:
        self._check_live(pos)
        for name, value in changes.items():
            self._columns[name].set(pos, value)

    def delete(self, pos: int) -> None:
        self._check_live(pos)
        charge("column_update")  # delete bitmap maintenance
        self._deleted.add(pos)
        self.row_count -= 1

    # -- read path --------------------------------------------------------------

    def is_live(self, pos: int) -> bool:
        return 0 <= pos < self.total_positions and pos not in self._deleted

    def read_row(self, pos: int) -> Row:
        """Materialize a full row: one positional seek per column."""
        self._check_live(pos)
        values = []
        for name in self.column_names:
            charge("column_seek")
            values.append(self._columns[name].get(pos))
        return tuple(values)

    def read_values(self, pos: int, columns: Sequence[str]) -> Row:
        """Materialize a projection of a row."""
        self._check_live(pos)
        values = []
        for name in columns:
            charge("column_seek")
            values.append(self._column(name).get(pos))
        return tuple(values)

    def read_batch(
        self, positions: Sequence[int], columns: Sequence[str]
    ) -> list[Row]:
        """Vectorized projection fetch: one seek per column for the whole
        batch, then sequential per-value access — the columnar execution
        model that amortizes positional access over many rows."""
        cols = [self._column(n) for n in columns]
        for pos in positions:
            self._check_live(pos)
        out: list[list[Value]] = [[] for _ in positions]
        for col in cols:
            charge("column_seek")
            charge("column_value", len(positions))
            for i, pos in enumerate(positions):
                raw = col.data[pos]
                if col.ctype is ColumnType.TEXT and raw is not None:
                    raw = col.codes[raw]
                out[i].append(raw)
        return [tuple(row) for row in out]

    def scan(
        self, columns: Sequence[str] | None = None
    ) -> Iterator[tuple[int, Row]]:
        """Sequential scan over live positions, projecting ``columns``."""
        names = list(columns) if columns is not None else self.column_names
        cols = [self._column(n) for n in names]
        for col in cols:
            charge("column_seek")
        for pos in range(self.total_positions):
            if pos in self._deleted:
                continue
            yield pos, tuple(col.get(pos) for col in cols)

    def column_values(self, name: str) -> Iterator[tuple[int, Value]]:
        """Scan one column only (the column-store sweet spot)."""
        col = self._column(name)
        charge("column_seek")
        for pos in range(self.total_positions):
            if pos not in self._deleted:
                yield pos, col.get(pos)

    # -- helpers ----------------------------------------------------------------

    def _column(self, name: str) -> _Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def _check_live(self, pos: int) -> None:
        if not 0 <= pos < self.total_positions:
            raise IndexError(f"position {pos} out of range")
        if pos in self._deleted:
            raise KeyError(f"position {pos} is deleted")

    def size_bytes(self) -> int:
        return sum(c.size_bytes() for c in self._columns.values())
