"""Heap files: unordered collections of variable-length records.

A heap file owns a list of slotted pages in a buffer pool and keeps a
simple in-memory free-space map (page id -> bytes free), mirroring
PostgreSQL's FSM.  Records are addressed by :class:`RID` (page id, slot no),
which stays stable across in-place updates.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import NamedTuple

from repro.simclock.ledger import charge
from repro.storage.buffer import BufferPool
from repro.storage.pages import PAGE_SIZE


class RID(NamedTuple):
    """Record identifier: physical position of a record."""

    page_id: int
    slot: int


class HeapFile:
    """A bag of records with insert/fetch/update/delete/scan."""

    def __init__(self, pool: BufferPool, name: str = "heap") -> None:
        self.pool = pool
        self.name = name
        self.page_ids: list[int] = []
        self._free_space: dict[int, int] = {}
        # pages recently seen with free room; checked newest-first so the
        # common insert path is O(1) instead of scanning the whole file
        self._candidates: list[int] = []
        self.record_count = 0

    # -- write path -------------------------------------------------------------

    def insert(self, record: bytes) -> RID:
        if len(record) > PAGE_SIZE - 64:
            raise ValueError(
                f"record of {len(record)} bytes exceeds page capacity"
            )
        page_id = self._find_page_with_space(len(record))
        page = self.pool.get_page(page_id)
        slot = page.insert(record)
        self.pool.mark_dirty(page_id)
        self._free_space[page_id] = page.free_space()
        self.record_count += 1
        charge("tuple_cpu")
        return RID(page_id, slot)

    def update(self, rid: RID, record: bytes) -> RID:
        """Update a record; returns its (possibly new) RID."""
        page = self.pool.get_page(rid.page_id)
        if page.update_in_place(rid.slot, record):
            self.pool.mark_dirty(rid.page_id)
            charge("tuple_cpu")
            return rid
        # record grew: delete + reinsert elsewhere
        page.delete(rid.slot)
        self.pool.mark_dirty(rid.page_id)
        self._free_space[rid.page_id] = page.free_space()
        self.record_count -= 1
        return self.insert(record)

    def delete(self, rid: RID) -> None:
        page = self.pool.get_page(rid.page_id)
        page.delete(rid.slot)
        self.pool.mark_dirty(rid.page_id)
        self._free_space[rid.page_id] = page.free_space()
        self.record_count -= 1
        charge("tuple_cpu")

    # -- read path ---------------------------------------------------------------

    def fetch(self, rid: RID) -> bytes:
        page = self.pool.get_page(rid.page_id)
        charge("tuple_cpu")
        return page.read(rid.slot)

    def scan(self) -> Iterator[tuple[RID, bytes]]:
        """Full scan in physical order."""
        for page_id in self.page_ids:
            page = self.pool.get_page(page_id)
            for slot, record in page.records():
                charge("tuple_cpu")
                yield RID(page_id, slot), record

    # -- bookkeeping -----------------------------------------------------------

    def _find_page_with_space(self, needed: int) -> int:
        for page_id in reversed(self._candidates[-4:]):
            if self._free_space.get(page_id, 0) >= needed:
                return page_id
        page_id, page = self.pool.new_page()
        self.page_ids.append(page_id)
        self._free_space[page_id] = page.free_space()
        self._candidates.append(page_id)
        if len(self._candidates) > 16:
            self._candidates = self._candidates[-8:]
        return page_id

    @property
    def page_count(self) -> int:
        return len(self.page_ids)

    def size_bytes(self) -> int:
        return self.page_count * PAGE_SIZE
