"""Embedded ordered key-value store (the BerkeleyDB-like Titan backend).

A thin transactional shell over a B+tree of byte keys.  Every operation
charges ``bdb_page`` per tree level (BerkeleyDB touches real pages on each
access, unlike the cached in-heap indexes of the server engines).

Concurrency model: BerkeleyDB's page-level locking degrades to near-serial
execution under concurrent writers.  The store exposes
:attr:`serializes_writers` so the discrete-event harness wraps every write
in a single-capacity resource — this is the mechanism behind Titan-B's
collapse under concurrent load in the paper (Section 4.3, Appendix A).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.simclock.ledger import charge
from repro.storage.btree import BPlusTree


class BDBStore:
    """Ordered byte KV store with duplicate-free keys."""

    #: the DES harness must serialize writers through a single latch
    serializes_writers = True

    def __init__(self, name: str = "bdb") -> None:
        self.name = name
        self._tree = BPlusTree(order=64, unique=False, name=name)
        self._size_bytes = 0

    def __len__(self) -> int:
        return len(self._tree)

    def _charge_pages(self) -> None:
        charge("bdb_page", self._tree.height())

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("BDB keys and values must be bytes")
        self._charge_pages()
        charge("wal_append")
        existing = self._tree.search(key)
        if existing:
            self._tree.delete(key)
            self._size_bytes -= len(key) + len(existing[0])
        self._tree.insert(key, value)
        self._size_bytes += len(key) + len(value)

    def get(self, key: bytes) -> bytes | None:
        self._charge_pages()
        values = self._tree.search(key)
        return values[0] if values else None

    def delete(self, key: bytes) -> bool:
        self._charge_pages()
        existing = self._tree.search(key)
        if not existing:
            return False
        self._tree.delete(key)
        self._size_bytes -= len(key) + len(existing[0])
        return True

    def range_scan(
        self, lo: bytes, hi_exclusive: bytes
    ) -> Iterator[tuple[bytes, bytes]]:
        """Keys in ``[lo, hi_exclusive)`` in order.

        Cursor walks touch pages as they go: one ``bdb_page`` charge per
        couple of entries on top of the initial descent.
        """
        self._charge_pages()
        for i, (key, value) in enumerate(
            self._tree.range_scan(lo, hi_exclusive, hi_inclusive=False)
        ):
            if i % 2 == 0:
                charge("bdb_page")
            yield key, value

    def size_bytes(self) -> int:
        return self._size_bytes
