"""Log-structured merge tree (the Cassandra-like storage backend).

Writes go to a memtable and are cheap and lock-free — this is why Titan-C
is the only system whose ingestion *scales* with concurrent loaders in the
paper's Appendix A.  Reads pay for it: a point lookup may probe several
SSTables (bloom filters shortcut most), which is the mechanism behind
Titan-C's slow point lookups in Tables 2–3.

Keys and values are ``bytes``.  Deletes write tombstones; size-tiered
compaction merges all SSTables once their count exceeds a threshold.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left
from collections.abc import Iterator

from repro.simclock.ledger import charge

_TOMBSTONE = object()


class BloomFilter:
    """k-hash bloom filter using double hashing (two CRC32 evaluations
    derive all k probe positions — the standard Kirsch-Mitzenmacher
    construction, and much cheaper than k independent hashes)."""

    def __init__(self, expected_items: int, bits_per_item: int = 10) -> None:
        self.size = max(64, expected_items * bits_per_item)
        self.num_hashes = 5
        self._bits = 0

    def _positions(self, key: bytes) -> Iterator[int]:
        h1 = zlib.crc32(key)
        h2 = zlib.crc32(key, 0x9E3779B9) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.size

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits |= 1 << pos

    def might_contain(self, key: bytes) -> bool:
        charge("lsm_bloom_check")
        return all(self._bits >> pos & 1 for pos in self._positions(key))


class SSTable:
    """An immutable sorted run of ``(key, value_or_tombstone)`` entries."""

    def __init__(self, entries: list[tuple[bytes, object]]) -> None:
        # entries must arrive sorted by key, unique keys
        self.keys = [k for k, _ in entries]
        self.values = [v for _, v in entries]
        self.bloom = BloomFilter(len(entries) or 1)
        for key in self.keys:
            self.bloom.add(key)

    def __len__(self) -> int:
        return len(self.keys)

    def get(self, key: bytes) -> object | None:
        """Value, ``_TOMBSTONE``, or ``None`` when absent."""
        if not self.bloom.might_contain(key):
            return None
        charge("lsm_sstable_probe")
        idx = bisect_left(self.keys, key)
        if idx < len(self.keys) and self.keys[idx] == key:
            return self.values[idx]
        return None

    def range_from(self, lo: bytes) -> Iterator[tuple[bytes, object]]:
        charge("lsm_sstable_probe")
        idx = bisect_left(self.keys, lo)
        while idx < len(self.keys):
            yield self.keys[idx], self.values[idx]
            idx += 1

    def size_bytes(self) -> int:
        return sum(
            len(k) + (len(v) if isinstance(v, bytes) else 1)
            for k, v in zip(self.keys, self.values)
        )


class LSMTree:
    """Memtable + SSTables with size-tiered compaction."""

    def __init__(
        self,
        memtable_limit: int = 4096,
        max_sstables: int = 6,
        name: str = "lsm",
    ) -> None:
        self.name = name
        self.memtable_limit = memtable_limit
        self.max_sstables = max_sstables
        self._memtable: dict[bytes, object] = {}
        self._sstables: list[SSTable] = []  # newest first
        self.flush_count = 0
        self.compaction_count = 0

    # -- write path --------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("LSM keys and values must be bytes")
        charge("lsm_memtable_op")
        charge("wal_append")
        self._memtable[key] = value
        if len(self._memtable) >= self.memtable_limit:
            self._flush()

    def delete(self, key: bytes) -> None:
        charge("lsm_memtable_op")
        charge("wal_append")
        self._memtable[key] = _TOMBSTONE
        if len(self._memtable) >= self.memtable_limit:
            self._flush()

    def _flush(self) -> None:
        entries = sorted(self._memtable.items())
        for _ in entries:
            charge("lsm_compaction_item")
        self._sstables.insert(0, SSTable(entries))
        self._memtable = {}
        self.flush_count += 1
        if len(self._sstables) > self.max_sstables:
            self._compact()

    def _compact(self) -> None:
        """Major compaction: merge every run into one, dropping
        tombstones.  Newer runs shadow older ones."""
        merged: dict[bytes, object] = {}
        # oldest first so newer runs overwrite
        for sstable in reversed(self._sstables):
            for key, value in zip(sstable.keys, sstable.values):
                charge("lsm_compaction_item")
                merged[key] = value
        live = sorted(
            (k, v) for k, v in merged.items() if v is not _TOMBSTONE
        )
        self._sstables = [SSTable(live)] if live else []
        self.compaction_count += 1

    def flush(self) -> None:
        """Force the memtable out (used by loaders before measuring reads)."""
        if self._memtable:
            self._flush()

    # -- read path -------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        charge("lsm_memtable_op")
        if key in self._memtable:
            value = self._memtable[key]
            return None if value is _TOMBSTONE else value  # type: ignore[return-value]
        for sstable in self._sstables:
            value = sstable.get(key)
            if value is not None:
                return None if value is _TOMBSTONE else value  # type: ignore[return-value]
        return None

    def range_scan(
        self, lo: bytes, hi_exclusive: bytes
    ) -> Iterator[tuple[bytes, bytes]]:
        """Merge-scan keys in ``[lo, hi_exclusive)`` across all runs."""
        candidates: dict[bytes, object] = {}
        for sstable in reversed(self._sstables):
            for key, value in sstable.range_from(lo):
                if key >= hi_exclusive:
                    break
                candidates[key] = value
        charge("lsm_memtable_op")
        for key, value in self._memtable.items():
            if lo <= key < hi_exclusive:
                candidates[key] = value
        for key in sorted(candidates):
            value = candidates[key]
            if value is not _TOMBSTONE:
                charge("value_cpu")
                yield key, value  # type: ignore[misc]

    # -- stats --------------------------------------------------------------------

    @property
    def sstable_count(self) -> int:
        return len(self._sstables)

    def size_bytes(self) -> int:
        mem = sum(
            len(k) + (len(v) if isinstance(v, bytes) else 1)
            for k, v in self._memtable.items()
        )
        return mem + sum(s.size_bytes() for s in self._sstables)
