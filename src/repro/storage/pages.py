"""Byte-level slotted pages.

Layout (little-endian)::

    +-------------------+----------------------+ ... +------------------+
    | header (4 bytes)  | slot directory       | gap | record data      |
    | n_slots, data_ptr | (offset u16, len u16)|     | grows downward   |
    +-------------------+----------------------+ ... +------------------+

A slot with length 0 is a tombstone; its slot number is never reused so
record IDs stay stable (mirroring PostgreSQL line pointers before vacuum).
"""

from __future__ import annotations

import struct

PAGE_SIZE = 8192

_HEADER = struct.Struct("<HH")  # n_slots, data_ptr
_SLOT = struct.Struct("<HH")  # offset, length


class PageFullError(Exception):
    """Raised when a record does not fit into the remaining free space."""


class SlottedPage:
    """A mutable slotted page over a ``bytearray`` of :data:`PAGE_SIZE`."""

    def __init__(self, buf: bytearray | None = None) -> None:
        if buf is None:
            buf = bytearray(PAGE_SIZE)
        if len(buf) != PAGE_SIZE:
            raise ValueError(f"page buffer must be {PAGE_SIZE} bytes")
        self.buf = buf
        # a freshly zeroed frame has data_ptr == 0, which no real page can
        # have: stamp the empty-page header
        if _HEADER.unpack_from(buf, 0)[1] == 0:
            _HEADER.pack_into(buf, 0, 0, PAGE_SIZE)

    # -- header access --------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return _HEADER.unpack_from(self.buf, 0)[0]

    @property
    def data_ptr(self) -> int:
        return _HEADER.unpack_from(self.buf, 0)[1]

    def _set_header(self, n_slots: int, data_ptr: int) -> None:
        _HEADER.pack_into(self.buf, 0, n_slots, data_ptr)

    def _slot(self, slot_no: int) -> tuple[int, int]:
        if not 0 <= slot_no < self.n_slots:
            raise IndexError(f"slot {slot_no} out of range (n={self.n_slots})")
        return _SLOT.unpack_from(self.buf, _HEADER.size + slot_no * _SLOT.size)

    def _set_slot(self, slot_no: int, offset: int, length: int) -> None:
        _SLOT.pack_into(
            self.buf, _HEADER.size + slot_no * _SLOT.size, offset, length
        )

    # -- capacity -----------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        directory_end = _HEADER.size + self.n_slots * _SLOT.size
        gap = self.data_ptr - directory_end
        return max(0, gap - _SLOT.size)

    def fits(self, record: bytes) -> bool:
        return len(record) <= self.free_space()

    # -- record operations ------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert ``record``; returns its slot number."""
        if len(record) == 0:
            raise ValueError("empty records are not supported")
        if not self.fits(record):
            raise PageFullError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_space()} free)"
            )
        n_slots, data_ptr = self.n_slots, self.data_ptr
        offset = data_ptr - len(record)
        self.buf[offset:data_ptr] = record
        self._set_header(n_slots + 1, offset)
        self._set_slot(n_slots, offset, len(record))
        return n_slots

    def read(self, slot_no: int) -> bytes:
        """Read the record in ``slot_no``; raises ``KeyError`` if deleted."""
        offset, length = self._slot(slot_no)
        if length == 0:
            raise KeyError(f"slot {slot_no} is deleted")
        return bytes(self.buf[offset : offset + length])

    def delete(self, slot_no: int) -> None:
        """Tombstone ``slot_no``; the space is not reclaimed (no compaction)."""
        self._slot(slot_no)  # bounds check
        self._set_slot(slot_no, 0, 0)

    def update_in_place(self, slot_no: int, record: bytes) -> bool:
        """Overwrite ``slot_no`` if the new record is not larger.

        Returns ``False`` (leaving the page unchanged) when the record has
        grown; the caller must then relocate it.
        """
        offset, length = self._slot(slot_no)
        if length == 0:
            raise KeyError(f"slot {slot_no} is deleted")
        if len(record) > length:
            return False
        self.buf[offset : offset + len(record)] = record
        self._set_slot(slot_no, offset, len(record))
        return True

    def records(self) -> list[tuple[int, bytes]]:
        """All live ``(slot_no, record)`` pairs."""
        out = []
        for slot_no in range(self.n_slots):
            offset, length = self._slot(slot_no)
            if length:
                out.append((slot_no, bytes(self.buf[offset : offset + length])))
        return out

    def live_count(self) -> int:
        return sum(1 for s in range(self.n_slots) if self._slot(s)[1])
