"""Write-ahead log and checkpointing.

Engines append logical records per modification (``wal_append``) and pay an
``wal_fsync`` at commit.  The :class:`Checkpointer` flushes dirty buffer
pages; the Neo4j-like engine runs one periodically, and the Figure 3
harness converts each checkpoint's page count into a write-stall window —
reproducing the paper's observation that "Neo4j's update performance
suffers from sudden drops due to checkpointing".
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.simclock.ledger import charge
from repro.storage.buffer import BufferPool


class WriteAheadLog:
    """An append-only log of opaque records with group commit."""

    def __init__(self, name: str = "wal") -> None:
        self.name = name
        self._records: list[bytes] = []
        self.appended_bytes = 0
        self.fsync_count = 0
        self._last_synced_lsn = 0
        self._deferring = False

    def append(self, record: bytes) -> int:
        """Append one record; returns its LSN (1-based)."""
        charge("wal_append")
        self._records.append(record)
        self.appended_bytes += len(record)
        return len(self._records)

    def commit(self) -> None:
        """Make everything appended so far durable (one fsync).

        Inside a :meth:`group` block the fsync is deferred: the batch
        becomes durable as a unit when the block exits.
        """
        if self._deferring:
            return
        if self._last_synced_lsn < len(self._records):
            charge("wal_fsync")
            self.fsync_count += 1
            self._last_synced_lsn = len(self._records)

    @contextmanager
    def group(self) -> Iterator[None]:
        """Defer intermediate commits: one fsync for the whole batch.

        This is the group-commit half of the batched write pipeline —
        the interactive writer applies a poll's worth of update events
        under one ``group()`` so the batch costs a single ``wal_fsync``
        instead of one per event.  Nested groups join the outermost.
        """
        if self._deferring:
            yield
            return
        self._deferring = True
        try:
            yield
        finally:
            self._deferring = False
            self.commit()

    @property
    def last_lsn(self) -> int:
        return len(self._records)

    @property
    def unsynced_records(self) -> int:
        return len(self._records) - self._last_synced_lsn

    def records_since(self, lsn: int) -> list[bytes]:
        """Records after ``lsn`` (for recovery tests)."""
        return list(self._records[lsn:])

    def durable_records(self) -> list[bytes]:
        """Records made durable by a commit — what recovery may replay.

        Appended-but-unsynced records are lost in a crash, exactly as on
        a real system without the final fsync.
        """
        return list(self._records[: self._last_synced_lsn])


class Checkpointer:
    """Flushes dirty pages and truncates the log's recovery window."""

    def __init__(self, pool: BufferPool, wal: WriteAheadLog) -> None:
        self.pool = pool
        self.wal = wal
        self.checkpoint_count = 0
        self.last_checkpoint_lsn = 0
        self.last_pages_flushed = 0

    def checkpoint(self) -> int:
        """Flush all dirty pages; returns the number flushed."""
        self.wal.commit()
        flushed = self.pool.flush_all()
        self.checkpoint_count += 1
        self.last_checkpoint_lsn = self.wal.last_lsn
        self.last_pages_flushed = flushed
        return flushed
