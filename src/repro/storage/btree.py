"""A B+tree index with duplicate support and ordered range scans.

Nodes are in-memory Python objects (the *data* pages live in heaps and KV
stores; indexes in the real systems are hot and cached), but every node
touched charges ``index_node`` so descents and scans have realistic
simulated cost.  Deletes remove entries from leaves without rebalancing —
the standard "lazy delete" used by many production trees.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterator
from typing import Any

from repro.simclock.ledger import charge


class _Node:
    __slots__ = ("keys", "children", "values", "next", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.children: list[_Node] = []  # internal nodes only
        self.values: list[list[Any]] = []  # leaf nodes only (dup lists)
        self.next: _Node | None = None  # leaf sibling chain


class BPlusTree:
    """B+tree mapping comparable keys to one or more values."""

    def __init__(self, order: int = 64, unique: bool = False, name: str = "") -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self.unique = unique
        self.name = name
        self._root: _Node = _Node(is_leaf=True)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- search -------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        charge("index_node")
        while not node.is_leaf:
            idx = bisect_right(node.keys, key)
            node = node.children[idx]
            charge("index_node")
        return node

    def search(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list when absent)."""
        charge("index_probe")
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def contains(self, key: Any) -> bool:
        return bool(self.search(key))

    def range_scan(
        self,
        lo: Any = None,
        hi: Any = None,
        *,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` in key order for keys in the given range."""
        charge("index_probe")
        if lo is None:
            node: _Node | None = self._leftmost_leaf()
            idx = 0
        else:
            node = self._find_leaf(lo)
            idx = (
                bisect_left(node.keys, lo)
                if lo_inclusive
                else bisect_right(node.keys, lo)
            )
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if hi is not None:
                    if hi_inclusive and key > hi:
                        return
                    if not hi_inclusive and key >= hi:
                        return
                for value in node.values[idx]:
                    charge("value_cpu")
                    yield key, value
                idx += 1
            node = node.next
            if node is not None:
                charge("index_node")
            idx = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Full ordered iteration."""
        return self.range_scan()

    def min_key(self) -> Any:
        leaf = self._leftmost_leaf()
        if not leaf.keys:
            raise KeyError("tree is empty")
        return leaf.keys[0]

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        charge("index_node")
        while not node.is_leaf:
            node = node.children[0]
            charge("index_node")
        return node

    # -- insert --------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        charge("index_insert")
        split = self._insert_into(self._root, key, value)
        if split is not None:
            sep_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert_into(
        self, node: _Node, key: Any, value: Any
    ) -> tuple[Any, _Node] | None:
        charge("index_node")
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if self.unique:
                    raise KeyError(f"duplicate key in unique index: {key!r}")
                node.values[idx].append(value)
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, [value])
            self._count += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    # -- delete --------------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> int:
        """Delete entries under ``key``.

        When ``value`` is given, only matching values are removed; otherwise
        every value under the key goes.  Returns the number removed.
        """
        charge("index_insert")
        leaf = self._find_leaf(key)
        idx = bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return 0
        bucket = leaf.values[idx]
        if value is None:
            removed = len(bucket)
            bucket.clear()
        else:
            before = len(bucket)
            bucket[:] = [v for v in bucket if v != value]
            removed = before - len(bucket)
        if not bucket:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        self._count -= removed
        return removed

    # -- stats ---------------------------------------------------------------

    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height
