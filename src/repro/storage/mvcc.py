"""Version chains + watermark-driven garbage collection for MVCC reads.

Each store owns one :class:`VersionStore` and keys it by whatever its
write-trace anchors use (row handles, node ids, id-triples, vertex ids).
The representation is deliberately sparse — version metadata exists only
for records written *while a snapshot was open*:

* ``_stamps``: key -> begin timestamp of the record's current value.  An
  absent stamp means "visible always" (written with no reader active),
  so bulk loading and snapshot-free operation carry zero metadata.
* ``_chains``: key -> older committed values, each valid over the
  half-open stamp interval ``[begin_ts, end_ts)``.  Chains only grow
  when an update overwrites a value some active snapshot may still need.
* ``_tombstones``: key -> deletion timestamp.  Deletes are deferred
  (the record stays in the store and its indexes, filtered on read)
  only while snapshots are active; otherwise they stay physical.

The **visibility rule**: a key is visible to snapshot ``R`` iff it was
created at or before ``R.read_ts`` (stamp absent or <= read_ts, else an
older chain version covers read_ts) and not deleted at or before it.
Reads with no snapshot see the latest committed state minus tombstones.

**GC watermark**: versions whose interval ends at or below the
watermark, stamps at or below it, and tombstones at or below it can
never be observed again — every active snapshot's ``read_ts`` is >= the
watermark (the oracle lower-bounds it by the oldest active snapshot),
and future snapshots begin even later.  :meth:`VersionStore.gc`
*asserts* that bound rather than trusting its caller: collecting past a
live reader is the classic MVCC correctness bug, and the assertion is
the regression surface for it.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

from repro.simclock.ledger import charge
from repro.txn import oracle

#: a version-store key: whatever the owning store anchors its writes on
Key = Hashable

#: updates+deletes recorded since the last collection that trigger an
#: automatic :meth:`VersionStore.gc` (heavy write traffic collects as it
#: goes instead of accreting chains without bound)
GC_THRESHOLD = 256


@dataclass
class _Version:
    """One superseded committed value, valid over [begin_ts, end_ts)."""

    value: Any
    begin_ts: int
    end_ts: int


class VersionStore:
    """Per-store MVCC metadata: stamps, version chains, tombstones."""

    def __init__(
        self,
        name: str = "mvcc",
        *,
        gc_threshold: int = GC_THRESHOLD,
        on_reclaim: Callable[[Key], None] | None = None,
    ) -> None:
        self.name = name
        self.gc_threshold = gc_threshold
        #: called with each tombstoned key whose deferred physical
        #: removal the collector decides is safe
        self.on_reclaim = on_reclaim
        self._stamps: dict[Key, int] = {}
        self._chains: dict[Key, list[_Version]] = {}
        self._tombstones: dict[Key, int] = {}
        self._dirty_since_gc = 0
        self.versions_reclaimed = 0
        self.gc_runs = 0

    # -- write side ---------------------------------------------------------

    def stamp(self, key: Key) -> None:
        """Record a new key's begin timestamp (insert path).

        With no snapshot open the stamp is skipped entirely: an unstamped
        record is visible to every view, and future snapshots only begin
        at later timestamps.
        """
        if oracle.snapshots_active():
            self._stamps[key] = oracle.ORACLE.advance()

    def record_update(self, key: Key, old_value: Any) -> None:
        """Preserve ``old_value`` before the caller overwrites ``key``.

        Must be called *before* the in-place write.  With no snapshot
        open nothing is kept — no reader can ever ask for the old value.
        """
        if not oracle.snapshots_active():
            return
        ts = oracle.ORACLE.advance()
        self._chains.setdefault(key, []).append(
            _Version(old_value, self._stamps.get(key, 0), ts)
        )
        self._stamps[key] = ts
        self._dirty_since_gc += 1
        self.maybe_gc()

    def record_delete(self, key: Key) -> bool:
        """Note a delete; True means it was deferred (tombstoned).

        When snapshots are active the caller must keep the record (and
        its index entries) in place — reads filter it by visibility —
        until the collector reclaims it via :attr:`on_reclaim`.  With no
        snapshot open the delete stays physical (False) and any
        metadata for the key is dropped.
        """
        if oracle.snapshots_active():
            self._tombstones[key] = oracle.ORACLE.advance()
            self._dirty_since_gc += 1
            self.maybe_gc()
            return True
        self._stamps.pop(key, None)
        self._chains.pop(key, None)
        return False

    def undelete(self, key: Key) -> bool:
        """Remove a tombstone (transaction-abort undo); was it present?"""
        return self._tombstones.pop(key, None) is not None

    def record_recreate(self, key: Key, old_value: Any = True) -> bool:
        """Re-insert a key whose delete was deferred; was it tombstoned?

        Unlike :meth:`undelete` (an *undo* — as if the delete never
        happened), a re-create is a new fact: snapshots older than the
        delete keep seeing ``old_value`` via a chain version covering
        ``[begin_ts, deleted_at)``, views between the delete and the
        re-insert see nothing, and the fresh stamp makes the key visible
        only from now on.
        """
        deleted_at = self._tombstones.pop(key, None)
        if deleted_at is None:
            return False
        self._chains.setdefault(key, []).append(
            _Version(old_value, self._stamps.get(key, 0), deleted_at)
        )
        self._stamps[key] = oracle.ORACLE.advance()
        self._dirty_since_gc += 1
        return True

    def move(self, old_key: Key, new_key: Key) -> None:
        """Re-key metadata when the store relocates a record."""
        if old_key in self._stamps:
            self._stamps[new_key] = self._stamps.pop(old_key)
        if old_key in self._chains:
            self._chains[new_key] = self._chains.pop(old_key)
        if old_key in self._tombstones:
            self._tombstones[new_key] = self._tombstones.pop(old_key)

    # -- read side ----------------------------------------------------------

    def visible(self, key: Key) -> bool:
        """Apply the visibility rule for ``key`` under the current view."""
        snapshot = oracle.CURRENT
        if snapshot is None:
            # current reads: latest committed state minus deferred deletes
            return not self._tombstones or key not in self._tombstones
        if not (self._stamps or self._tombstones):
            return True  # untouched store: every snapshot sees everything
        charge("version_check")
        read_ts = snapshot.read_ts
        deleted_at = self._tombstones.get(key)
        if deleted_at is not None and deleted_at <= read_ts:
            return False
        begin_ts = self._stamps.get(key)
        if begin_ts is None or begin_ts <= read_ts:
            return True
        # current value too new: visible only if an older version covers
        return self._covering(key, read_ts) is not None

    def filter_visible(self, keys: list[Any]) -> list[Any]:
        """Drop keys the current view must not see (index probe results).

        Returns the input list unchanged (no copy) in the common case of
        no snapshot and no deferred deletes.
        """
        if oracle.CURRENT is None and not self._tombstones:
            return keys
        return [k for k in keys if self.visible(k)]

    def stale(self, key: Key) -> bool:
        """Whether the current view must chain-walk past ``key``'s value.

        True only when a snapshot is active and the key's latest value
        was stamped after it — the vectorized batch readers use this to
        fall back to per-record chain walks.
        """
        snapshot = oracle.CURRENT
        if snapshot is None or not self._stamps:
            return False
        begin_ts = self._stamps.get(key)
        return begin_ts is not None and begin_ts > snapshot.read_ts

    def stale_keys(self) -> list[Key]:
        """Keys whose latest value was stamped after the current view began.

        These are exactly the keys whose secondary-index entries may have
        *moved* since the snapshot started (an update re-files the entry
        under the new indexed value): index lookups re-check them against
        the snapshot-visible value to drop false positives and recover
        rows whose old-value entries are gone.  Empty when no snapshot is
        active, so snapshot-free operation pays nothing.
        """
        snapshot = oracle.CURRENT
        if snapshot is None or not self._stamps:
            return []
        read_ts = snapshot.read_ts
        return [k for k, ts in self._stamps.items() if ts > read_ts]

    def read(self, key: Key, current_value: Any) -> Any:
        """The value of ``key`` as of the current view.

        ``current_value`` is the store's latest committed value; a stale
        snapshot walks the chain to the covering older version.  Only
        call for keys :meth:`visible` returned True for.
        """
        snapshot = oracle.CURRENT
        if snapshot is None:
            return current_value
        begin_ts = self._stamps.get(key)
        if begin_ts is None or begin_ts <= snapshot.read_ts:
            return current_value
        version = self._covering(key, snapshot.read_ts)
        if version is None:  # pragma: no cover - guarded by visible()
            raise KeyError(
                f"{self.name}: no version of {key!r} at ts "
                f"{snapshot.read_ts}"
            )
        return version.value

    def _covering(self, key: Key, read_ts: int) -> _Version | None:
        """The chain version whose interval contains ``read_ts``."""
        for version in reversed(self._chains.get(key, ())):
            charge("version_walk")
            if version.begin_ts <= read_ts < version.end_ts:
                return version
            if version.end_ts <= read_ts:
                break  # intervals are ordered; nothing older can cover
        return None

    # -- garbage collection --------------------------------------------------

    def maybe_gc(self) -> int:
        """Collect when enough writes accumulated since the last run."""
        if self._dirty_since_gc < self.gc_threshold:
            return 0
        return self.gc()

    def gc(
        self,
        watermark: int | None = None,
        *,
        oldest_active: int | None = None,
    ) -> int:
        """Reclaim versions no active or future snapshot can observe.

        ``watermark`` defaults to the oracle's (the oldest active
        snapshot's read timestamp, or the latest stamp when idle);
        ``oldest_active`` defaults to the oracle's oldest held snapshot.
        The watermark must never exceed the oldest active snapshot —
        that would collect versions a live reader still needs — and the
        collector refuses to run rather than silently corrupt a reader.
        Returns the number of reclaimed versions/stamps/tombstones.
        """
        if watermark is None:
            watermark = oracle.ORACLE.watermark()
        if oldest_active is None:
            oldest_active = oracle.ORACLE.oldest_active()
        if oldest_active is not None and watermark > oldest_active:
            raise ValueError(
                f"{self.name}: GC watermark {watermark} exceeds the "
                f"oldest active snapshot ts {oldest_active}; collecting "
                f"past a live reader would corrupt its snapshot"
            )
        reclaimed = 0
        for key in list(self._chains):
            chain = self._chains[key]
            kept = [v for v in chain if v.end_ts > watermark]
            reclaimed += len(chain) - len(kept)
            if kept:
                self._chains[key] = kept
            else:
                del self._chains[key]
        for key in [
            k for k, ts in self._stamps.items() if ts <= watermark
        ]:
            # visible to every remaining view: the stamp is redundant
            if key not in self._tombstones:
                del self._stamps[key]
                reclaimed += 1
        for key in [
            k for k, ts in self._tombstones.items() if ts <= watermark
        ]:
            # invisible to every remaining view: physically removable
            del self._tombstones[key]
            self._stamps.pop(key, None)
            self._chains.pop(key, None)
            if self.on_reclaim is not None:
                self.on_reclaim(key)
            reclaimed += 1
        self._dirty_since_gc = 0
        self.gc_runs += 1
        self.versions_reclaimed += reclaimed
        return reclaimed

    # -- introspection -------------------------------------------------------

    def metadata_counts(self) -> dict[str, int]:
        """Live metadata sizes (the GC regression tests assert on these)."""
        return {
            "stamps": len(self._stamps),
            "chain_versions": sum(
                len(c) for c in self._chains.values()
            ),
            "tombstones": len(self._tombstones),
        }
