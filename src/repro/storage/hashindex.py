"""Equality-only hash index (PostgreSQL hash / in-memory vertex-id index).

The paper's setup builds indexes on vertex IDs in every system "to prevent
expensive linear scans on initial vertex look-ups"; this is that index for
the relational engines.  Probes charge ``hash_probe``; inserts charge
``index_insert``.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.simclock.ledger import charge


class HashIndex:
    """Maps keys to one or more values with O(1) equality probes."""

    def __init__(self, unique: bool = False, name: str = "") -> None:
        self.unique = unique
        self.name = name
        self._buckets: dict[Any, list[Any]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, key: Any, value: Any) -> None:
        charge("index_insert")
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [value]
        else:
            if self.unique:
                raise KeyError(f"duplicate key in unique index: {key!r}")
            bucket.append(value)
        self._count += 1

    def search(self, key: Any) -> list[Any]:
        charge("hash_probe")
        return list(self._buckets.get(key, ()))

    def contains(self, key: Any) -> bool:
        charge("hash_probe")
        return key in self._buckets

    def delete(self, key: Any, value: Any = None) -> int:
        charge("hash_probe")
        bucket = self._buckets.get(key)
        if bucket is None:
            return 0
        if value is None:
            removed = len(bucket)
            del self._buckets[key]
        else:
            before = len(bucket)
            bucket[:] = [v for v in bucket if v != value]
            removed = before - len(bucket)
            if not bucket:
                del self._buckets[key]
        self._count -= removed
        return removed

    def keys(self) -> Iterator[Any]:
        return iter(self._buckets)

    def distinct_keys(self) -> int:
        """Distinct key count (statistics collection; no probe charge)."""
        return len(self._buckets)

    def items(self) -> Iterator[tuple[Any, Any]]:
        for key, bucket in self._buckets.items():
            for value in bucket:
                yield key, value
