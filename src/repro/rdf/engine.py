"""RDF database facade (Virtuoso-RDF configuration)."""

from __future__ import annotations

from typing import Any

from repro.cache import CacheStats, EpochKeyedCache, LRUCache
from repro.exec.errors import CompileError
from repro.rdf.sparql.executor import SparqlExecutor
from repro.rdf.sparql.parser import parse
from repro.rdf.triples import TripleStore
from repro.simclock.ledger import charge
from repro.storage.wal import WriteAheadLog
from repro.txn import oracle

#: closure-cache sentinel: this statement cannot be compiled — skip
#: straight to the interpreter on every run
_INTERPRET = object()


class RdfDatabase:
    """SPARQL over a single indexed triple table."""

    def __init__(
        self, name: str = "virtuoso-rdf", execution_mode: str = "compiled"
    ) -> None:
        if execution_mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {execution_mode!r}")
        self.name = name
        self.execution_mode = execution_mode
        self.isolation_level = "snapshot"
        self.store = TripleStore(name)
        self.wal = WriteAheadLog(f"{name}-wal")
        self.executor = SparqlExecutor(self.store)
        #: parse+translate depends only on the query text, never stale;
        #: join *ordering* happens at run time from the executor's stats
        self._stmt_cache = LRUCache(4096, name="sparql-statements")
        #: (order_mode, sparql) -> compiled closure (or the interpreter
        #: sentinel); the closure bakes in the pattern order chosen from
        #: the statistics snapshot, so ANALYZE bumps the epoch
        self._closure_cache = EpochKeyedCache(4096, name="sparql-closures")
        self.statements_executed = 0

    def execute(
        self, sparql: str, params: dict[str, Any] | None = None
    ) -> list[tuple]:
        """Run one SPARQL SELECT; returns result rows."""
        self.statements_executed += 1
        if self.execution_mode == "compiled":
            # deferred: repro.exec.sparqlc imports this package's parser,
            # so a top-level import would be circular
            from repro.exec.sparqlc import compile_query

            key = (self.executor.order_mode, sparql)
            fn = self._closure_cache.lookup(key)
            if fn is None:
                query = self._parse_cached(sparql)
                charge("closure_compile")
                try:
                    fn = compile_query(query, self.store, self.executor)
                except CompileError:
                    fn = _INTERPRET
                self._closure_cache.store(key, fn)
            if fn is not _INTERPRET:
                charge("compiled_exec")
                with oracle.read_view(self.isolation_level):
                    # type ignores: the closure cache stores `object`
                    return fn(params)  # type: ignore[no-any-return, operator]
        charge("sql_exec")  # the translated plan still runs as SQL
        query = self._parse_cached(sparql)
        with oracle.read_view(self.isolation_level):
            return self.executor.run(query, params)

    def _parse_cached(self, sparql: str) -> Any:
        query = self._stmt_cache.get(sparql)
        if query is None:
            charge("sparql_parse")
            charge("sparql_translate")
            query = parse(sparql)
            self._stmt_cache.put(sparql, query)
        return query

    def set_execution_mode(self, mode: str) -> None:
        """Switch between ``interpreted`` and ``compiled`` execution."""
        if mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {mode!r}")
        self.execution_mode = mode

    def set_isolation_level(self, level: str) -> None:
        """``snapshot`` (readers never block) or ``read-committed``."""
        oracle.check_isolation_level(level)
        self.isolation_level = level

    def analyze(self) -> None:
        """Refresh triple statistics and switch to stats-based ordering."""
        charge("sparql_analyze")
        self.executor.stats = self.store.collect_statistics()
        self.executor.order_mode = "stats"
        # compiled closures bake in the pattern order chosen from the
        # replaced statistics snapshot
        self._closure_cache.bump_epoch()

    def cache_stats(self) -> list[CacheStats]:
        """Uniform cache counters (shared facade across all dialects)."""
        return [
            self._stmt_cache.stats(),
            self._closure_cache.stats(),
            self.executor.estimate_cache.stats(),
        ]

    # -- updates (SPARQL UPDATE is out of scope; the API mirrors what the
    # LDBC connectors do: batches of triple inserts per entity) -------------

    def insert_triples(
        self, triples: list[tuple[Any, Any, Any]]
    ) -> int:
        """Insert a batch of triples atomically; returns how many were new.

        Stands in for a SPARQL UPDATE statement: the request is parsed and
        translated like any other.
        """
        charge("sparql_parse")
        charge("sparql_translate")
        added = 0
        for s, p, o in triples:
            if self.store.add(s, p, o):
                self.wal.append(b"t")
                added += 1
        self.wal.commit()
        return added

    def size_bytes(self) -> int:
        return self.store.size_bytes()

    @property
    def triple_count(self) -> int:
        return self.store.triple_count
