"""The triple table: term dictionary + three covering B+tree indexes."""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.sanitizer import runtime
from repro.simclock.ledger import charge
from repro.stats import TripleStatistics
from repro.storage.btree import BPlusTree
from repro.storage.mvcc import VersionStore

Term = Any  # str IRIs ("sn:pers123") or literal values (int, str, bool)


class TripleStore:
    """Triples of interned term ids, indexed SPO, POS, and OSP.

    Every insert updates the term dictionary and all three indexes — the
    "single table with extensive indexing" approach whose maintenance cost
    the paper blames for Virtuoso-SPARQL's slower writes.
    """

    def __init__(self, name: str = "rdf") -> None:
        self.name = name
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: list[Term] = []
        self._spo = BPlusTree(order=64, name=f"{name}-spo")
        self._pos = BPlusTree(order=64, name=f"{name}-pos")
        self._osp = BPlusTree(order=64, name=f"{name}-osp")
        # version metadata keyed by the canonical id-triple; deferred
        # removes stay in all three indexes until GC reclaims them
        self.mvcc = VersionStore(
            f"{name}-mvcc", on_reclaim=self._reclaim_tombstone
        )
        self.triple_count = 0

    # -- term dictionary --------------------------------------------------------

    def intern(self, term: Term) -> int:
        charge("hash_probe")
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
        return term_id

    def lookup_term(self, term: Term) -> int | None:
        charge("hash_probe")
        return self._term_to_id.get(term)

    def term(self, term_id: int) -> Term:
        charge("value_cpu")
        return self._id_to_term[term_id]

    # -- writes --------------------------------------------------------------------

    def add(self, s: Term, p: Term, o: Term) -> bool:
        """Insert one triple; returns False when it already existed."""
        s_id, p_id, o_id = self.intern(s), self.intern(p), self.intern(o)
        if self._exists(s_id, p_id, o_id):
            if not self.mvcc.record_recreate((s_id, p_id, o_id)):
                return False
            # physically still indexed (its remove was deferred): the
            # re-create is pure metadata, old snapshots keep the gap
            charge("page_write")
            self.triple_count += 1
            if runtime.TRACE is not None:
                runtime.TRACE.write(("rdf-subject", s))
            return True
        self.mvcc.stamp((s_id, p_id, o_id))
        self._spo.insert((s_id, p_id, o_id), True)
        self._pos.insert((p_id, o_id, s_id), True)
        self._osp.insert((o_id, s_id, p_id), True)
        # each covering index dirties pages; this maintenance is the
        # paper's "higher index maintenance costs ... where multiple
        # indexes over one big table must be maintained"
        charge("page_write")
        self.triple_count += 1
        if runtime.TRACE is not None:
            runtime.TRACE.write(("rdf-subject", s))
        return True

    def remove(self, s: Term, p: Term, o: Term) -> bool:
        ids = tuple(self.lookup_term(t) for t in (s, p, o))
        if None in ids:
            return False
        s_id, p_id, o_id = ids
        key = (s_id, p_id, o_id)
        if not self._exists(s_id, p_id, o_id) or not self.mvcc.visible(key):
            return False
        if not self.mvcc.record_delete(key):
            self._delete_physical(key)
        # removal maintains the same three covering indexes as add
        charge("page_write")
        self.triple_count -= 1
        if runtime.TRACE is not None:
            runtime.TRACE.write(("rdf-subject", s))
        return True

    def _delete_physical(self, key: tuple[int, int, int]) -> None:
        s_id, p_id, o_id = key
        self._spo.delete((s_id, p_id, o_id))
        self._pos.delete((p_id, o_id, s_id))
        self._osp.delete((o_id, s_id, p_id))

    def _reclaim_tombstone(self, key: Any) -> None:
        """GC decided a deferred remove is unobservable: finish it."""
        if self._exists(*key):
            self._delete_physical(key)

    def _exists(self, s_id: int, p_id: int, o_id: int) -> bool:
        return bool(self._spo.search((s_id, p_id, o_id)))

    # -- reads ----------------------------------------------------------------------

    def match_ids(
        self,
        s_id: int | None,
        p_id: int | None,
        o_id: int | None,
    ) -> Iterator[tuple[int, int, int]]:
        """All triples matching the bound positions (None = wildcard),
        filtered by the current view's visibility rule."""
        trace = runtime.TRACE
        for triple in self._match_ids_raw(s_id, p_id, o_id):
            if self.mvcc.visible(triple):
                if trace is not None:
                    trace.read(("rdf-subject", self._id_to_term[triple[0]]))
                yield triple

    def _match_ids_raw(
        self,
        s_id: int | None,
        p_id: int | None,
        o_id: int | None,
    ) -> Iterator[tuple[int, int, int]]:
        """All physically stored triples matching the bound positions.

        Picks the covering index with the longest bound prefix, exactly as
        a triple-table query plan would.
        """
        if s_id is not None and o_id is not None and p_id is None:
            lo = (o_id, s_id, -1)
            hi = (o_id, s_id, 1 << 62)
            for (to, ts, tp), _ in self._osp.range_scan(lo, hi):
                yield ts, tp, to
            return
        if s_id is not None:
            lo = (s_id, p_id if p_id is not None else -1, -1)
            hi = (
                s_id,
                p_id if p_id is not None else 1 << 62,
                1 << 62,
            )
            for (ts, tp, to), _ in self._spo.range_scan(lo, hi):
                if p_id is not None and tp != p_id:
                    continue
                if o_id is not None and to != o_id:
                    continue
                yield ts, tp, to
            return
        if p_id is not None:
            lo = (p_id, o_id if o_id is not None else -1, -1)
            hi = (p_id, o_id if o_id is not None else 1 << 62, 1 << 62)
            for (tp, to, ts), _ in self._pos.range_scan(lo, hi):
                if o_id is not None and to != o_id:
                    continue
                yield ts, tp, to
            return
        if o_id is not None:
            lo = (o_id, -1, -1)
            hi = (o_id, 1 << 62, 1 << 62)
            for (to, ts, tp), _ in self._osp.range_scan(lo, hi):
                yield ts, tp, to
            return
        for (ts, tp, to), _ in self._spo.items():
            yield ts, tp, to

    def match(
        self, s: Term | None, p: Term | None, o: Term | None
    ) -> Iterator[tuple[Term, Term, Term]]:
        """Term-level match; unseen terms short-circuit to empty."""
        ids = []
        for term in (s, p, o):
            if term is None:
                ids.append(None)
            else:
                term_id = self.lookup_term(term)
                if term_id is None:
                    return
                ids.append(term_id)
        for s_id, p_id, o_id in self.match_ids(*ids):
            yield self.term(s_id), self.term(p_id), self.term(o_id)

    def count(self, s: Term | None, p: Term | None, o: Term | None) -> int:
        return sum(1 for _ in self.match(s, p, o))

    # -- stats ------------------------------------------------------------------------

    def collect_statistics(self) -> TripleStatistics:
        """One pass over the SPO index: per-predicate counts and distincts.

        Walks the index structure directly (no per-triple ``charge``);
        the caller charges a flat ``sparql_analyze`` for the refresh.
        """
        predicate_counts: dict[Term, int] = {}
        subjects_by_pred: dict[Term, set[int]] = {}
        objects_by_pred: dict[Term, set[int]] = {}
        all_subjects: set[int] = set()
        all_objects: set[int] = set()
        for (s_id, p_id, o_id), _ in self._spo.items():
            predicate = self._id_to_term[p_id]
            predicate_counts[predicate] = (
                predicate_counts.get(predicate, 0) + 1
            )
            subjects_by_pred.setdefault(predicate, set()).add(s_id)
            objects_by_pred.setdefault(predicate, set()).add(o_id)
            all_subjects.add(s_id)
            all_objects.add(o_id)
        return TripleStatistics(
            triple_count=self.triple_count,
            predicate_counts=predicate_counts,
            distinct_subjects={
                p: len(s) for p, s in subjects_by_pred.items()
            },
            distinct_objects={
                p: len(o) for p, o in objects_by_pred.items()
            },
            total_subjects=len(all_subjects),
            total_objects=len(all_objects),
        )

    def size_bytes(self) -> int:
        term_bytes = sum(
            len(t.encode()) if isinstance(t, str) else 8
            for t in self._id_to_term
        )
        # three indexes, ~24 bytes per entry each
        return term_bytes + 3 * 24 * self.triple_count
