"""RDF triple store with a SPARQL subset (the Virtuoso-RDF configuration).

Architecture follows the paper's description of Virtuoso's RDF mode: *one*
relational table of triples plus several covering indexes (SPO / POS /
OSP), with a term dictionary interning IRIs and literals.  Reads pay a
query-translation cost (SPARQL -> index joins) and writes pay multi-index
maintenance — the two mechanisms behind the paper's findings that
Virtuoso-SPARQL reads trail Virtuoso-SQL slightly and writes trail by ~3x.
"""

from repro.rdf.triples import TripleStore
from repro.rdf.engine import RdfDatabase

__all__ = ["TripleStore", "RdfDatabase"]
