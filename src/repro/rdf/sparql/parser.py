"""Lexer + parser for the SPARQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

KEYWORDS = {
    "select", "distinct", "where", "filter", "order", "by", "asc", "desc",
    "limit", "as", "count", "in", "and", "or", "not", "true", "false",
}


class SparqlParseError(Exception):
    pass


# --- AST ----------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class ParamTerm:
    name: str


@dataclass(frozen=True)
class Iri:
    value: str  # prefixed form, e.g. "snb:Person"


@dataclass(frozen=True)
class LiteralTerm:
    value: Any


Term = Var | ParamTerm | Iri | LiteralTerm


@dataclass(frozen=True)
class TriplePattern:
    s: Term
    p: Term
    o: Term


@dataclass(frozen=True)
class Comparison:
    op: str
    left: Term
    right: Term


@dataclass(frozen=True)
class InFilter:
    needle: Term
    items: tuple[Term, ...]
    negated: bool = False


@dataclass(frozen=True)
class BoolOp:
    op: str  # AND | OR
    left: "FilterExpr"
    right: "FilterExpr"


@dataclass(frozen=True)
class NotOp:
    operand: "FilterExpr"


FilterExpr = Comparison | InFilter | BoolOp | NotOp


@dataclass(frozen=True)
class Filter:
    expr: FilterExpr


@dataclass(frozen=True)
class SelectItem:
    var: Var | None  # None => COUNT(*) aggregate
    alias: str | None = None
    count: bool = False
    count_distinct: bool = False


@dataclass(frozen=True)
class OrderItem:
    var: Var
    descending: bool = False


@dataclass(frozen=True)
class SparqlQuery:
    items: tuple[SelectItem, ...]
    star: bool
    patterns: tuple[TriplePattern, ...]
    filters: tuple[Filter, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None


# --- lexer --------------------------------------------------------------------


@dataclass(frozen=True)
class Token:
    kind: str
    value: Any
    pos: int


_PUNCT = {
    "{": "lbrace", "}": "rbrace", "(": "lparen", ")": "rparen",
    ".": "dot", ",": "comma", "*": "star",
}


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "#":
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch in "?$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise SparqlParseError(f"dangling {ch!r} at {i}")
            kind = "var" if ch == "?" else "param"
            tokens.append(Token(kind, text[i + 1 : j], i))
            i = j
            continue
        if ch in "'\"":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SparqlParseError(f"unterminated string at {i}")
                if text[j] == ch:
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            is_float = False
            while j < n and (text[j].isdigit() or text[j] == "."):
                if text[j] == ".":
                    # trailing dot is the triple terminator
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    is_float = True
                j += 1
            raw = text[i:j]
            tokens.append(
                Token("number", float(raw) if is_float else int(raw), i)
            )
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_"):
                j += 1
            # prefixed IRI?
            if j < n and text[j] == ":":
                k = j + 1
                while k < n and (text[k].isalnum() or text[k] in "_-"):
                    k += 1
                tokens.append(Token("iri", text[i:k], i))
                i = k
                continue
            word = text[i:j].lower()
            if word in KEYWORDS:
                tokens.append(Token("keyword", word, i))
            else:
                raise SparqlParseError(
                    f"bare identifier {text[i:j]!r} at {i} "
                    f"(IRIs need a prefix)"
                )
            i = j
            continue
        if text.startswith(("<=", ">=", "!="), i):
            tokens.append(Token("op", text[i : i + 2], i))
            i += 2
            continue
        if text.startswith("&&", i):
            tokens.append(Token("keyword", "and", i))
            i += 2
            continue
        if text.startswith("||", i):
            tokens.append(Token("keyword", "or", i))
            i += 2
            continue
        if ch in "=<>":
            tokens.append(Token("op", ch, i))
            i += 1
            continue
        if ch == "!":
            tokens.append(Token("keyword", "not", i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        raise SparqlParseError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", None, n))
    return tokens


# --- parser -----------------------------------------------------------------------


def parse(text: str) -> SparqlQuery:
    return _Parser(tokenize(text)).query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def check(self, kind: str, value: object = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: object = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        if not self.check(kind, value):
            token = self.current
            raise SparqlParseError(
                f"expected {value or kind!r}, got {token.kind} "
                f"{token.value!r} at {token.pos}"
            )
        return self.advance()

    def keyword(self, word: str) -> bool:
        return self.accept("keyword", word) is not None

    def query(self) -> SparqlQuery:
        self.expect("keyword", "select")
        distinct = self.keyword("distinct")
        items: list[SelectItem] = []
        star = False
        if self.accept("star"):
            star = True
        else:
            while True:
                if self.check("var"):
                    items.append(SelectItem(Var(self.advance().value)))
                elif self.accept("lparen"):
                    self.expect("keyword", "count")
                    self.expect("lparen")
                    count_distinct = self.keyword("distinct")
                    var = None
                    if self.check("var"):
                        var = Var(self.advance().value)
                    else:
                        self.expect("star")
                    self.expect("rparen")
                    self.expect("keyword", "as")
                    alias = self.expect("var").value
                    self.expect("rparen")
                    items.append(
                        SelectItem(var, alias, True, count_distinct)
                    )
                else:
                    break
        if not star and not items:
            raise SparqlParseError("SELECT needs variables or *")
        self.expect("keyword", "where")
        self.expect("lbrace")
        patterns: list[TriplePattern] = []
        filters: list[Filter] = []
        while not self.check("rbrace"):
            if self.keyword("filter"):
                self.expect("lparen")
                filters.append(Filter(self.filter_expr()))
                self.expect("rparen")
                self.accept("dot")
                continue
            s = self.term()
            p = self.term()
            o = self.term()
            patterns.append(TriplePattern(s, p, o))
            if not self.accept("dot"):
                if not self.check("rbrace") and not self.check(
                    "keyword", "filter"
                ):
                    raise SparqlParseError(
                        f"expected '.' or '}}' at {self.current.pos}"
                    )
        self.expect("rbrace")
        order_by: list[OrderItem] = []
        if self.keyword("order"):
            self.expect("keyword", "by")
            while True:
                if self.keyword("desc"):
                    self.expect("lparen")
                    order_by.append(
                        OrderItem(Var(self.expect("var").value), True)
                    )
                    self.expect("rparen")
                elif self.keyword("asc"):
                    self.expect("lparen")
                    order_by.append(
                        OrderItem(Var(self.expect("var").value), False)
                    )
                    self.expect("rparen")
                elif self.check("var"):
                    order_by.append(OrderItem(Var(self.advance().value)))
                else:
                    break
        limit = None
        if self.keyword("limit"):
            limit = int(self.expect("number").value)
        self.expect("eof")
        return SparqlQuery(
            tuple(items),
            star,
            tuple(patterns),
            tuple(filters),
            distinct,
            tuple(order_by),
            limit,
        )

    def term(self) -> Term:
        if self.check("var"):
            return Var(self.advance().value)
        if self.check("param"):
            return ParamTerm(self.advance().value)
        if self.check("iri"):
            return Iri(self.advance().value)
        if self.check("string") or self.check("number"):
            return LiteralTerm(self.advance().value)
        if self.keyword("true"):
            return LiteralTerm(True)
        if self.keyword("false"):
            return LiteralTerm(False)
        token = self.current
        raise SparqlParseError(
            f"expected a term, got {token.kind} {token.value!r} at {token.pos}"
        )

    # filter expressions: or < and < not < comparison/in
    def filter_expr(self) -> FilterExpr:
        left = self.filter_and()
        while self.keyword("or"):
            left = BoolOp("OR", left, self.filter_and())
        return left

    def filter_and(self) -> FilterExpr:
        left = self.filter_not()
        while self.keyword("and"):
            left = BoolOp("AND", left, self.filter_not())
        return left

    def filter_not(self) -> FilterExpr:
        if self.keyword("not"):
            return NotOp(self.filter_not())
        if self.accept("lparen"):
            inner = self.filter_expr()
            self.expect("rparen")
            return inner
        return self.filter_comparison()

    def filter_comparison(self) -> FilterExpr:
        left = self.term()
        if self.keyword("in"):
            return InFilter(left, self._in_items())
        if self.keyword("not"):
            self.expect("keyword", "in")
            return InFilter(left, self._in_items(), negated=True)
        op_token = self.expect("op")
        op = "<>" if op_token.value == "!=" else str(op_token.value)
        return Comparison(op, left, self.term())

    def _in_items(self) -> tuple[Term, ...]:
        self.expect("lparen")
        items = [self.term()]
        while self.accept("comma"):
            items.append(self.term())
        self.expect("rparen")
        return tuple(items)
