"""SPARQL front end: a pragmatic subset for the SNB interactive queries.

Supported::

    SELECT [DISTINCT] ?v ... | (COUNT(*) AS ?c)
    WHERE { triple . triple . FILTER(expr) ... }
    [ORDER BY [DESC](?v) ...] [LIMIT n]

Terms: ``?var``, ``$param`` (bound from the params dict at execution),
``prefix:name`` IRIs, string/number/boolean literals.  FILTER supports
comparisons, boolean connectives, and ``IN (...)``.
"""

from repro.rdf.sparql.parser import SparqlParseError, parse
from repro.rdf.sparql.executor import SparqlExecutor, SparqlRuntimeError

__all__ = ["parse", "SparqlParseError", "SparqlExecutor", "SparqlRuntimeError"]
