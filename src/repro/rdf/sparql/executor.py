"""BGP evaluation over the triple store.

Translation (charged as ``sparql_translate`` once per query text by the
engine) greedily orders triple patterns, then evaluates them as index
nested-loop joins over the SPO/POS/OSP indexes — the classic triple-table
plan shape SPARQL engines compile to SQL.

Pattern order (``order_mode``):

* ``"stats"`` (after ``ANALYZE``) — smallest estimated matching-triple
  count first, from per-predicate counts and distinct subject/object
  cardinalities;
* ``"boundness"`` (default) — most-bound-first heuristic;
* ``"textual"`` — as written (the strawman the benchmark compares
  against).
"""

from __future__ import annotations

from typing import Any

from repro.cache import LRUCache
from repro.rdf.sparql import parser as ast
from repro.rdf.triples import TripleStore
from repro.simclock.ledger import charge
from repro.stats import TripleStatistics


class SparqlRuntimeError(Exception):
    pass


Row = dict[str, Any]


class SparqlExecutor:
    def __init__(self, store: TripleStore) -> None:
        self.store = store
        self._stats: TripleStatistics | None = None
        #: (s_bound, predicate, o_bound) -> estimated matches; derived
        #: from the stats snapshot, so installing new stats clears it
        self._estimate_memo = LRUCache(1024, name="sparql-estimates")
        self.order_mode = "boundness"

    @property
    def stats(self) -> TripleStatistics | None:
        return self._stats

    @stats.setter
    def stats(self, value: TripleStatistics | None) -> None:
        self._stats = value
        self._estimate_memo.invalidate_all()

    @property
    def estimate_cache(self) -> LRUCache:
        return self._estimate_memo

    def run(
        self, query: ast.SparqlQuery, params: dict[str, Any] | None = None
    ) -> list[tuple]:
        params = params or {}
        rows: list[Row] = [{}]
        patterns = list(query.patterns)
        pending_filters = list(query.filters)
        use_stats = self.order_mode == "stats" and self.stats is not None
        while patterns:
            # greedy join order, recomputed as variables bind; sorts are
            # stable, so ties fall back to textual order
            bound_vars = set(rows[0]) if rows else set()
            if self.order_mode != "textual":
                if use_stats:
                    patterns.sort(
                        key=lambda tp: self._estimated_matches(
                            tp, bound_vars, params
                        )
                    )
                else:
                    patterns.sort(
                        key=lambda tp: -self._boundness(tp, bound_vars)
                    )
            pattern = patterns.pop(0)
            rows = self._join(rows, pattern, params)
            if not rows:
                break
            bound_now = set(rows[0])
            still_pending = []
            for flt in pending_filters:
                if self._filter_vars(flt.expr) <= bound_now:
                    rows = [
                        row
                        for row in rows
                        if self._eval_filter(flt.expr, row, params)
                    ]
                else:
                    still_pending.append(flt)
            pending_filters = still_pending
        for flt in pending_filters:
            rows = [
                row for row in rows if self._eval_filter(flt.expr, row, params)
            ]
        return self._project(rows, query)

    # -- joins ------------------------------------------------------------------

    def _boundness(self, pattern: ast.TriplePattern, bound: set[str]) -> int:
        score = 0
        for term, weight in ((pattern.s, 4), (pattern.p, 1), (pattern.o, 2)):
            if isinstance(term, ast.Var):
                if term.name in bound:
                    score += weight
            else:
                score += weight
        return score

    def _estimated_matches(
        self,
        pattern: ast.TriplePattern,
        bound: set[str],
        params: dict,
    ) -> float:
        """Estimated matching triples per candidate row (stats order)."""
        assert self.stats is not None
        s_bound = self._is_bound(pattern.s, bound)
        o_bound = self._is_bound(pattern.o, bound)
        predicate = None
        if not isinstance(pattern.p, ast.Var):
            if isinstance(pattern.p, ast.ParamTerm):
                predicate = params.get(pattern.p.name)
            else:
                predicate = pattern.p.value
        key = (s_bound, predicate, o_bound)
        estimate = self._estimate_memo.get(key)
        if estimate is None:
            estimate = self.stats.pattern_count(s_bound, predicate, o_bound)
            self._estimate_memo.put(key, estimate)
        return estimate  # type: ignore[no-any-return]

    @staticmethod
    def _is_bound(term: ast.Term, bound: set[str]) -> bool:
        if isinstance(term, ast.Var):
            return term.name in bound
        return True

    def _join(
        self, rows: list[Row], pattern: ast.TriplePattern, params: dict
    ) -> list[Row]:
        out: list[Row] = []
        for row in rows:
            spo = [
                self._resolve(term, row, params)
                for term in (pattern.s, pattern.p, pattern.o)
            ]
            lookup = []
            missing_term = False
            for bound, value in spo:
                if not bound:
                    lookup.append(None)
                    continue
                term_id = self.store.lookup_term(value)
                if term_id is None:
                    missing_term = True
                    break
                lookup.append(term_id)
            if missing_term:
                continue
            for s_id, p_id, o_id in self.store.match_ids(*lookup):
                charge("tuple_cpu")
                new_row = dict(row)
                ok = True
                for term, term_id in zip(
                    (pattern.s, pattern.p, pattern.o), (s_id, p_id, o_id)
                ):
                    if isinstance(term, ast.Var):
                        value = self.store.term(term_id)
                        if term.name in new_row:
                            if new_row[term.name] != value:
                                ok = False
                                break
                        else:
                            new_row[term.name] = value
                if ok:
                    out.append(new_row)
        return out

    def _resolve(
        self, term: ast.Term, row: Row, params: dict
    ) -> tuple[bool, Any]:
        """(is_bound, value) for a term in the current row context."""
        if isinstance(term, ast.Var):
            if term.name in row:
                return True, row[term.name]
            return False, None
        if isinstance(term, ast.ParamTerm):
            try:
                return True, params[term.name]
            except KeyError:
                raise SparqlRuntimeError(
                    f"missing parameter ${term.name}"
                ) from None
        if isinstance(term, ast.Iri):
            return True, term.value
        return True, term.value  # LiteralTerm

    # -- filters -----------------------------------------------------------------

    def _filter_vars(self, expr: ast.FilterExpr) -> set[str]:
        if isinstance(expr, ast.Comparison):
            out = set()
            for term in (expr.left, expr.right):
                if isinstance(term, ast.Var):
                    out.add(term.name)
            return out
        if isinstance(expr, ast.InFilter):
            out = set()
            for term in (expr.needle, *expr.items):
                if isinstance(term, ast.Var):
                    out.add(term.name)
            return out
        if isinstance(expr, ast.BoolOp):
            return self._filter_vars(expr.left) | self._filter_vars(expr.right)
        if isinstance(expr, ast.NotOp):
            return self._filter_vars(expr.operand)
        raise SparqlRuntimeError(f"unknown filter {expr!r}")

    def _eval_filter(
        self, expr: ast.FilterExpr, row: Row, params: dict
    ) -> bool:
        charge("value_cpu")
        if isinstance(expr, ast.BoolOp):
            left = self._eval_filter(expr.left, row, params)
            if expr.op == "AND":
                return left and self._eval_filter(expr.right, row, params)
            return left or self._eval_filter(expr.right, row, params)
        if isinstance(expr, ast.NotOp):
            return not self._eval_filter(expr.operand, row, params)
        if isinstance(expr, ast.Comparison):
            _, left = self._resolve(expr.left, row, params)
            _, right = self._resolve(expr.right, row, params)
            if left is None or right is None:
                return False
            return {
                "=": left == right,
                "<>": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[expr.op]
        if isinstance(expr, ast.InFilter):
            _, needle = self._resolve(expr.needle, row, params)
            values = [
                self._resolve(item, row, params)[1] for item in expr.items
            ]
            found = needle in values
            return not found if expr.negated else found
        raise SparqlRuntimeError(f"unknown filter {expr!r}")

    # -- projection ----------------------------------------------------------------

    def _project(self, rows: list[Row], query: ast.SparqlQuery) -> list[tuple]:
        if query.star:
            if not rows:
                return []
            names = sorted(rows[0])
            projected = [tuple(row.get(n) for n in names) for row in rows]
        elif any(item.count for item in query.items):
            projected = [self._aggregate(rows, query)]
        else:
            names = [item.var.name for item in query.items]  # type: ignore[union-attr]
            projected = [
                tuple(row.get(n) for n in names) for row in rows
            ]
        charge("value_cpu", sum(len(r) for r in projected))
        if query.distinct:
            seen: set[tuple] = set()
            unique = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique
        if query.order_by:
            if query.star or any(item.count for item in query.items):
                raise SparqlRuntimeError(
                    "ORDER BY requires explicit SELECT variables"
                )
            names = [item.var.name for item in query.items]  # type: ignore[union-attr]
            for order in reversed(query.order_by):
                if order.var.name not in names:
                    raise SparqlRuntimeError(
                        f"ORDER BY variable ?{order.var.name} not selected"
                    )
                idx = names.index(order.var.name)
                projected.sort(
                    key=lambda r: (r[idx] is not None, r[idx]),
                    reverse=order.descending,
                )
        if query.limit is not None:
            projected = projected[: query.limit]
        return projected

    def _aggregate(self, rows: list[Row], query: ast.SparqlQuery) -> tuple:
        values = []
        for item in query.items:
            if not item.count:
                raise SparqlRuntimeError(
                    "mixing plain variables with COUNT needs GROUP BY "
                    "(unsupported)"
                )
            if item.var is None:
                values.append(len(rows))
            else:
                seen = {
                    row[item.var.name]
                    for row in rows
                    if row.get(item.var.name) is not None
                }
                if item.count_distinct:
                    values.append(len(seen))
                else:
                    values.append(
                        sum(
                            1
                            for row in rows
                            if row.get(item.var.name) is not None
                        )
                    )
        return tuple(values)
