"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``     write an SNB dataset as LDBC-style CSVs
``latency``      the Table 2/3 micro benchmark for chosen systems
``interactive``  the Figure 3 real-time workload for one system
``load``         the Table 4 / Appendix A ingestion experiment
``validate``     cross-check that all systems answer queries identically
``lint``         statically analyse the query catalogs against the schema
``sanitize``     run the interactive workload under the race detector
                 and data-integrity auditors (optionally fault-injected)
``systems``      list the eight SUT keys
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Sequence

from repro.core import SUT_KEYS, make_connector
from repro.core.benchmark import (
    MICRO_QUERIES,
    LatencyBenchmark,
    dataset_statistics,
)
from repro.core.report import render_series, render_table
from repro.driver import (
    InteractiveConfig,
    InteractiveWorkloadRunner,
    concurrent_load,
    sequential_load,
)
from repro.snb import GeneratorConfig, generate
from repro.snb.serializer import serialize_to_dir


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale-factor", type=float, default=3.0,
        help="LDBC scale factor (paper uses 3 and 10)",
    )
    parser.add_argument(
        "--scale-divisor", type=float, default=4000.0,
        help="shrink factor below paper scale (default 4000)",
    )
    parser.add_argument("--seed", type=int, default=42)


def _dataset(args: argparse.Namespace):
    return generate(
        GeneratorConfig(
            scale_factor=args.scale_factor,
            scale_divisor=args.scale_divisor,
            seed=args.seed,
        )
    )


def _parse_systems(value: str) -> list[str]:
    if value == "all":
        return list(SUT_KEYS)
    known = [*SUT_KEYS, "cluster"]
    keys = [k.strip() for k in value.split(",") if k.strip()]
    unknown = [k for k in keys if k not in known]
    if unknown:
        raise SystemExit(
            f"unknown systems {unknown}; known: {', '.join(known)}"
        )
    return keys


def cmd_systems(_args: argparse.Namespace) -> int:
    for key in SUT_KEYS:
        connector_cls = type(make_connector(key))
        print(f"{key:16s} {connector_cls.system:10s} {connector_cls.language}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    stats = dataset_statistics(dataset)
    sizes = serialize_to_dir(dataset, args.out)
    print(
        f"wrote {len(sizes)} CSV files to {args.out} "
        f"({sum(sizes.values()) / 1e6:.2f} MB)"
    )
    print(
        f"vertices={stats['vertices']:,} edges={stats['edges']:,} "
        f"updates={len(dataset.updates):,}"
    )
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    systems = _parse_systems(args.systems)
    bench = LatencyBenchmark(dataset, repetitions=args.reps)
    rows = []
    for key in systems:
        connector = make_connector(key)
        connector.load(dataset)
        results = bench.run(connector)
        rows.append(
            [key]
            + [
                None if math.isnan(results[q]) else results[q]
                for q in MICRO_QUERIES
            ]
        )
    print(
        render_table(
            f"Mean simulated latency (ms), SF{args.scale_factor:g} / "
            f"divisor {args.scale_divisor:g}, {args.reps} reps "
            f"('-' marks DNF)",
            ["System", "point lookup", "1-hop", "2-hop", "shortest path"],
            rows,
        )
    )
    return 0


def cmd_interactive(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    connector = make_connector(args.system)
    connector.load(dataset)
    config = InteractiveConfig(
        readers=args.readers,
        duration_ms=args.duration_ms,
        window_ms=args.duration_ms / 20,
    )
    result = InteractiveWorkloadRunner(connector, dataset, config).run()
    print(
        f"{args.system}: {config.readers} readers + 1 writer, "
        f"{config.duration_ms:.0f} ms simulated"
    )
    print(f"  reads/s : {result.read_throughput:,.0f}")
    print(f"  writes/s: {result.write_throughput:,.0f}")
    print(f"  read p99: {result.read_latency.percentile(99):.3f} ms")
    if result.server_crashed:
        print("  !! Gremlin Server crashed under load")
    print(
        render_series(
            "write throughput over time",
            {args.system: result.write_windows.series()},
        )
    )
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    connector = make_connector(args.system)
    provider = getattr(connector, "provider", None)
    if provider is None:
        raise SystemExit(
            f"{args.system} is not a TinkerPop system; the loading "
            f"experiment covers the Gremlin-loaded systems"
        )
    if args.loaders == 1:
        report = sequential_load(provider, dataset)
    else:
        if not connector.supports_concurrent_loading():
            raise SystemExit(
                f"{args.system} does not support concurrent loading"
            )
        report = concurrent_load(provider, dataset, args.loaders)
    print(
        render_table(
            f"{args.system}, {args.loaders} loader(s)",
            ["total min", "vertices/s", "edges/s"],
            [[
                round(report.total_minutes, 2),
                round(report.vertices_per_second),
                round(report.edges_per_second),
            ]],
        )
    )
    return 0


def _mvcc_audit(
    connectors: dict,
    held_ops: list,
    update_events: list,
    reference_key: str,
) -> tuple[int, int]:
    """The ``validate --mvcc`` snapshot-stability audit.

    One snapshot is held open across the whole audit: every system's
    answers under it must be identical before and after the update
    stream lands (writers never disturb a reader's view), and once the
    snapshot is released every system must agree on the new current
    state.  Returns ``(checks, mismatches)``.
    """
    from repro.txn import oracle

    checks = 0
    mismatches = 0
    for connector in connectors.values():
        connector.set_isolation_level("snapshot")

    def answers(key: str) -> list:
        return [
            _normalize(getattr(connectors[key], op)(*op_args))
            for op, op_args in held_ops
        ]

    snapshot = oracle.ORACLE.begin()
    try:
        with oracle.reading(snapshot):
            before = {key: answers(key) for key in connectors}
        for key, connector in connectors.items():
            for event in update_events:
                connector.apply_update(event)
        with oracle.reading(snapshot):
            for key in connectors:
                for (op, op_args), old, new in zip(
                    held_ops, before[key], answers(key)
                ):
                    checks += 1
                    if old != new:
                        mismatches += 1
                        print(
                            f"MVCC DRIFT {op}{op_args}: {key} held "
                            f"snapshot changed under concurrent writes"
                        )
    finally:
        oracle.ORACLE.release(snapshot)

    # released: every system serves the same post-update current state
    current = {key: answers(key) for key in connectors}
    reference = current[reference_key]
    for key, rows in current.items():
        for (op, op_args), answer, expected in zip(
            held_ops, rows, reference
        ):
            checks += 1
            if answer != expected:
                mismatches += 1
                print(
                    f"MVCC MISMATCH {op}{op_args}: {key} disagrees "
                    f"with {reference_key} after snapshot release"
                )
    return checks, mismatches


def cmd_validate(args: argparse.Namespace) -> int:
    """Load every chosen system and cross-check their answers."""
    from repro.core.benchmark import WorkloadParams

    dataset = _dataset(args)
    systems = _parse_systems(args.systems)
    sharded = getattr(args, "sharded", False)
    if len(systems) < 2 and not sharded:
        raise SystemExit("validation needs at least two systems")
    connectors = {}
    for key in systems:
        connector = make_connector(key)
        connector.load(dataset)
        if args.cached:
            connector.enable_caching()
        # pin the mode on every system so one run cross-checks one
        # executor: plain validate exercises the interpreters,
        # --compiled exercises the compiled/vectorized closures
        connector.set_execution_mode(
            "compiled" if getattr(args, "compiled", False) else "interpreted"
        )
        connectors[key] = connector
        if sharded and key != "cluster":
            # pair every single-node engine with a sharded deployment of
            # the same backend: the scatter/gather answers must be
            # indistinguishable
            from repro.cluster import ClusterConnector

            twin = ClusterConnector(
                backend=key,
                shards=args.shards,
                replicas=args.replicas,
            )
            twin.load(dataset)
            if args.cached:
                twin.enable_caching()
            twin.set_execution_mode(
                "compiled"
                if getattr(args, "compiled", False)
                else "interpreted"
            )
            connectors[f"sharded:{key}"] = twin
    params = WorkloadParams.curate(dataset, count=args.checks, seed=args.seed)
    reference_key = systems[0]
    mismatches = 0
    checks = 0

    def compare(op: str, *op_args) -> None:
        nonlocal mismatches, checks
        answers = {
            key: getattr(c, op)(*op_args) for key, c in connectors.items()
        }
        reference = answers[reference_key]
        for key, answer in answers.items():
            checks += 1
            if _normalize(answer) != _normalize(reference):
                mismatches += 1
                print(
                    f"MISMATCH {op}{op_args}: {key} disagrees with "
                    f"{reference_key}"
                )

    for pid in params.person_ids:
        compare("point_lookup", pid)
        compare("one_hop", pid)
        compare("two_hop", pid)
        compare("person_profile", pid)
        compare("person_recent_posts", pid, 10)
        compare("person_friends", pid)
        compare("complex_two_hop", pid, 20)
        compare("friends_recent_posts", pid, 10)
    for pair in params.path_pairs:
        compare("shortest_path", *pair)
    for mid in params.message_ids:
        compare("message_content", mid)
        compare("message_creator", mid)
        compare("message_forum", mid)
        compare("message_replies", mid)
    if getattr(args, "mvcc", False):
        held_ops = [
            (op, (pid,))
            for pid in params.person_ids
            for op in (
                "person_profile",
                "one_hop",
                "person_friends",
            )
        ] + [("person_recent_posts", (pid, 10)) for pid in params.person_ids]
        m_checks, m_mismatches = _mvcc_audit(
            connectors,
            held_ops,
            dataset.updates[: args.mvcc_updates],
            reference_key,
        )
        checks += m_checks
        mismatches += m_mismatches
        print(
            f"mvcc audit: {m_checks} held-snapshot + post-release "
            f"checks, {m_mismatches} mismatches"
        )
    print(
        f"{checks} cross-checks over {len(connectors)} systems: "
        f"{mismatches} mismatches"
    )
    if args.cached:
        for key, connector in connectors.items():
            for stats in connector.cache_stats():
                print(
                    f"  {key}: {stats.name} "
                    f"hit_rate={stats.hit_rate:.2f} "
                    f"({stats.hits} hits / {stats.misses} misses)"
                )
    return 1 if mismatches else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run every static-analysis pass and print the diagnostics.

    Exit status is 1 when any ERROR-severity diagnostic is found (or,
    with ``--strict``, any diagnostic at all), so CI can gate on it.
    With ``--format json`` each diagnostic is one JSON object per line
    (machine-readable; the summary line is suppressed).

    ``--program`` switches from the query-catalog passes to the
    whole-program QA8xx passes over the engine source itself; findings
    matching the committed baseline file are suppressed, so the gate
    fails only on *new* diagnostics.  Baseline entries that match no
    finding (stale) or no longer name any function in the tree
    (unresolvable) fail the run with a prune instruction — unless
    ``--diff``, the CI gate, which reports only diagnostics new
    relative to the baseline and tolerates baseline drift so
    pre-existing justified entries never re-fail a build.

    ``--format sarif`` emits one SARIF 2.1.0 log (both lint modes) for
    upload to code hosts that annotate pull requests.
    """
    import json
    import sys

    from repro.analysis import Severity, lint_all

    hygiene_failures: list[str] = []
    if args.program:
        from repro.analysis.program import (
            DEFAULT_BASELINE_PATH,
            analyze_program_report,
        )

        baseline = args.baseline or DEFAULT_BASELINE_PATH
        report = analyze_program_report(
            paths=args.paths or None, baseline=baseline
        )
        diagnostics = report.diagnostics
        scope = "whole-program passes"
        for entry in report.unresolvable:
            hygiene_failures.append(
                f"baseline entry {entry.code} {entry.location!r} no "
                f"longer resolves to any function or class in the "
                f"analyzed tree — the code it justified was renamed "
                f"or removed; prune it from {baseline}"
            )
        for entry in report.stale:
            hygiene_failures.append(
                f"baseline entry {entry.code} {entry.location!r} "
                f"matched no diagnostic this run — the finding it "
                f"suppressed is gone; prune it from {baseline}"
            )
    else:
        diagnostics = lint_all()
        scope = "4 dialect catalogs"
    if args.format == "sarif":
        from repro.analysis.sarif import dumps as sarif_dumps

        print(sarif_dumps(diagnostics))
    elif args.format == "json":
        for diagnostic in diagnostics:
            print(json.dumps(diagnostic.to_dict(), sort_keys=True))
    else:
        for diagnostic in diagnostics:
            print(f"{diagnostic.severity.name:7s} {diagnostic}")
    error_count = sum(
        1 for d in diagnostics if d.severity is Severity.ERROR
    )
    warning_count = len(diagnostics) - error_count
    if args.format == "text":
        label = (
            "new diagnostic(s) vs. baseline"
            if args.diff
            else "error(s)"
        )
        print(
            f"lint: {error_count} {label}, {warning_count} "
            f"warning(s) across {scope}"
        )
    if hygiene_failures:
        # diff mode (the CI new-findings gate) reports drift without
        # failing on it; the plain run is the hygiene gate
        for failure in hygiene_failures:
            print(
                f"{'note' if args.diff else 'ERROR'}: {failure}",
                file=sys.stderr,
            )
        if not args.diff:
            return 1
    if error_count or (args.strict and diagnostics):
        return 1
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run the Figure 3 workload under full instrumentation.

    Without ``--inject``: exit 1 if any diagnostic fires (the clean run
    must be silent).  With ``--inject MODE``: exit 0 only when the run
    reports *exactly* the planted fault's expected codes, so the matrix
    doubles as an end-to-end self-test of the sanitizer.
    """
    import json

    from repro.sanitizer.faults import FAULTS, applicable_modes
    from repro.sanitizer.harness import run_sanitize

    dataset = _dataset(args)
    systems = _parse_systems(args.systems)
    reports = []
    for key in systems:
        if args.inject is not None:
            from repro.core import make_connector

            targets = make_connector(key).sanitize_targets()
            if args.inject not in applicable_modes(targets):
                print(f"{key}: fault {args.inject!r} not applicable, skipped")
                continue
        reports.append(
            run_sanitize(
                key,
                dataset,
                readers=args.readers,
                duration_ms=args.duration_ms,
                write_batch_size=args.write_batch_size,
                max_update_events=args.max_update_events,
                inject_mode=args.inject,
            )
        )

    failed = 0
    for report in reports:
        if args.format == "json":
            for diagnostic in report.diagnostics:
                row = diagnostic.to_dict()
                row["system"] = report.system
                print(json.dumps(row, sort_keys=True))
        else:
            for diagnostic in report.diagnostics:
                print(f"{report.system}: {diagnostic}")
        if not report.ok:
            failed += 1
        if args.format != "json":
            verdict = "ok" if report.ok else "FAILED"
            wanted = (
                f", expected {sorted(report.expected)}"
                if report.inject
                else ""
            )
            print(
                f"{report.system}: {verdict} — "
                f"{len(report.diagnostics)} diagnostic(s), "
                f"{report.event_count} events, "
                f"{report.updates_applied} update(s) applied, "
                f"batch={report.write_batch_size}"
                f"{wanted}"
            )
    if args.inject is not None and not reports:
        known = ", ".join(sorted(FAULTS))
        print(f"no system supports {args.inject!r} (known modes: {known})")
        return 1
    return 1 if failed else 0


def _normalize(value):
    if isinstance(value, list):
        return [tuple(v) if isinstance(v, (list, tuple)) else v for v in value]
    if isinstance(value, tuple):
        return tuple(value)
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("systems", help="list the systems under test")
    p.set_defaults(fn=cmd_systems)

    p = sub.add_parser("generate", help="write a dataset as CSVs")
    _add_dataset_args(p)
    p.add_argument("--out", required=True, help="output directory")
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("latency", help="Table 2/3 micro benchmark")
    _add_dataset_args(p)
    p.add_argument("--systems", default="all",
                   help="comma-separated SUT keys or 'all'")
    p.add_argument("--reps", type=int, default=10)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("interactive", help="Figure 3 workload")
    _add_dataset_args(p)
    p.add_argument(
        "--system", required=True, choices=[*SUT_KEYS, "cluster"]
    )
    p.add_argument("--readers", type=int, default=16)
    p.add_argument("--duration-ms", type=float, default=1000.0)
    p.set_defaults(fn=cmd_interactive)

    p = sub.add_parser(
        "validate", help="cross-check answers across systems"
    )
    _add_dataset_args(p)
    p.add_argument("--systems", default="all")
    p.add_argument("--checks", type=int, default=5,
                   help="curated parameters per operation")
    p.add_argument(
        "--cached", action="store_true",
        help="enable each connector's hot-path caches before checking",
    )
    p.add_argument(
        "--compiled", action="store_true",
        help="run every system in compiled (vectorized) execution mode "
             "instead of the classic interpreters",
    )
    p.add_argument(
        "--sharded", action="store_true",
        help="additionally cross-check a sharded cluster deployment of "
             "each selected backend against its single-node twin",
    )
    p.add_argument("--shards", type=int, default=3,
                   help="shard count for --sharded twins")
    p.add_argument("--replicas", type=int, default=0,
                   help="read replicas per shard for --sharded twins")
    p.add_argument(
        "--mvcc", action="store_true",
        help="additionally audit snapshot isolation: hold a snapshot "
             "open on every system, apply the update stream, and "
             "require held reads to be byte-stable and released reads "
             "to agree across systems",
    )
    p.add_argument("--mvcc-updates", type=int, default=25,
                   help="update events applied during the --mvcc audit")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "lint", help="static analysis of the query catalogs"
    )
    p.add_argument(
        "--strict", action="store_true",
        help="fail on warnings as well as errors",
    )
    p.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="json prints one diagnostic object per line; sarif emits "
             "one SARIF 2.1.0 log for CI upload",
    )
    p.add_argument(
        "--program", action="store_true",
        help="run the whole-program QA8xx passes over the engine "
             "source instead of the query-catalog passes",
    )
    p.add_argument(
        "--baseline", nargs="?", default=None, const=None,
        metavar="PATH",
        help="suppression file for --program (default: the committed "
             "clean baseline; the bare flag makes that default "
             "explicit)",
    )
    p.add_argument(
        "--diff", action="store_true",
        help="with --program: report only diagnostics new relative "
             "to the baseline and do not fail on stale baseline "
             "entries (the CI gate mode)",
    )
    p.add_argument(
        "--paths", nargs="+", default=None, metavar="FILE",
        help="analyze these files instead of the engine tree "
             "(--program only; used by the analyzer's own tests)",
    )
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "sanitize",
        help="race detection + integrity audits over a workload run",
    )
    _add_dataset_args(p)
    p.add_argument("--systems", default="all",
                   help="comma-separated SUT keys or 'all'")
    p.add_argument("--readers", type=int, default=4)
    p.add_argument("--duration-ms", type=float, default=200.0)
    p.add_argument(
        "--write-batch-size", type=int, default=1,
        help=">1 drains updates through the group-committed batch path",
    )
    p.add_argument(
        "--max-update-events", type=int, default=None,
        help="cap the Kafka update stream (full stream by default)",
    )
    p.add_argument(
        "--inject", default=None, metavar="MODE",
        help="plant a seeded fault; the run then must report exactly "
             "that fault's codes (see repro.sanitizer.faults)",
    )
    p.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="json prints one diagnostic object per line",
    )
    p.set_defaults(fn=cmd_sanitize)

    p = sub.add_parser("load", help="Table 4 / Appendix A ingestion")
    _add_dataset_args(p)
    p.add_argument(
        "--system", required=True,
        choices=["neo4j-gremlin", "titan-c", "titan-b", "sqlg"],
    )
    p.add_argument("--loaders", type=int, default=1)
    p.set_defaults(fn=cmd_load)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
