"""A trivially simple monotonic virtual clock measured in microseconds."""

from __future__ import annotations


class SimClock:
    """Monotonic virtual clock.

    The clock only ever moves forward.  Sequential harnesses (the latency
    tables) advance it by the simulated cost of each operation; concurrent
    harnesses delegate to the discrete-event :class:`~repro.simclock.events.
    Simulator`, which owns its own clock.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_us / 1000.0

    def advance(self, delta_us: float) -> float:
        """Move the clock forward by ``delta_us`` microseconds."""
        if delta_us < 0:
            raise ValueError(f"cannot move clock backwards (delta={delta_us})")
        self._now_us += delta_us
        return self._now_us

    def reset(self, start_us: float = 0.0) -> None:
        """Reset the clock; only meaningful between experiments."""
        self._now_us = float(start_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_us={self._now_us:.3f})"
