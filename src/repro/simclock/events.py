"""A small generator-based discrete-event simulator.

Processes are Python generators that yield *commands*:

* :class:`Timeout` — advance this process by a simulated duration,
* :class:`Acquire` / :class:`Release` — FIFO resource acquisition,
* :class:`Join` — wait for another process to finish.

Example
-------
::

    sim = Simulator()
    pool = Resource(capacity=2, name="workers")

    def client(i):
        yield Acquire(pool)
        yield Timeout(1000.0)          # hold a worker for 1 ms
        yield Release(pool)
        return i

    procs = [sim.spawn(client(i), name=f"c{i}") for i in range(8)]
    sim.run()
    assert all(p.finished for p in procs)

The simulator is deterministic: simultaneous events fire in scheduling
order (a monotonically increasing sequence number breaks ties).
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Timeout:
    """Suspend the yielding process for ``delay_us`` simulated microseconds."""

    delay_us: float

    def __post_init__(self) -> None:
        if self.delay_us < 0:
            raise ValueError(f"negative timeout: {self.delay_us}")


@dataclass(frozen=True)
class Acquire:
    """Acquire one unit of ``resource`` (FIFO; suspends when exhausted)."""

    resource: "Resource"


@dataclass(frozen=True)
class Release:
    """Release one unit of ``resource`` previously acquired."""

    resource: "Resource"


@dataclass(frozen=True)
class Join:
    """Suspend until ``process`` finishes; resumes with its return value."""

    process: "Process"


@dataclass
class Resource:
    """A counted FIFO resource (worker pool, latch, lock, ...).

    Tracks aggregate waiting time so experiments can report contention.
    """

    capacity: int = 1
    name: str = ""
    in_use: int = 0
    total_wait_us: float = 0.0
    total_acquisitions: int = 0
    _waiters: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"resource capacity must be >= 1: {self.capacity}")

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    @property
    def mean_wait_us(self) -> float:
        if not self.total_acquisitions:
            return 0.0
        return self.total_wait_us / self.total_acquisitions


class Process:
    """A running generator inside the simulator."""

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._joiners: list[Process] = []
        self._wait_started_us: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Deterministic discrete-event loop over a virtual microsecond clock."""

    def __init__(self) -> None:
        self.now_us = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._live_processes = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay_us: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay_us`` simulated microseconds."""
        if delay_us < 0:
            raise ValueError(f"negative delay: {delay_us}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now_us + delay_us, self._seq, fn))

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Register a generator as a new process; it starts at current time."""
        process = Process(self, gen, name)
        self._live_processes += 1
        self.schedule(0.0, lambda: self._step(process, None))
        return process

    def run(self, until_us: float | None = None) -> float:
        """Run until the event heap drains or the clock passes ``until_us``.

        Returns the final simulated time.
        """
        while self._heap:
            time_us, _seq, fn = self._heap[0]
            if until_us is not None and time_us > until_us:
                self.now_us = until_us
                return self.now_us
            heapq.heappop(self._heap)
            self.now_us = time_us
            fn()
        return self.now_us

    @property
    def live_processes(self) -> int:
        return self._live_processes

    # -- process stepping -----------------------------------------------------

    def _step(self, process: Process, value: Any) -> None:
        if process.finished:
            return
        try:
            command = process._gen.send(value)
        except StopIteration as stop:
            self._finish(process, result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            process.error = exc
            self._finish(process, result=None)
            return
        self._dispatch(process, command)

    def _finish(self, process: Process, result: Any) -> None:
        process.finished = True
        process.result = result
        self._live_processes -= 1
        for joiner in process._joiners:
            self.schedule(0.0, lambda j=joiner: self._step(j, process.result))
        process._joiners.clear()
        if process.error is not None:
            raise RuntimeError(
                f"process {process.name!r} died: {process.error!r}"
            ) from process.error

    def _dispatch(self, process: Process, command: Any) -> None:
        if isinstance(command, Timeout):
            self.schedule(command.delay_us, lambda: self._step(process, None))
        elif isinstance(command, Acquire):
            self._acquire(process, command.resource)
        elif isinstance(command, Release):
            self._release(process, command.resource)
        elif isinstance(command, Join):
            target = command.process
            if target.finished:
                self.schedule(0.0, lambda: self._step(process, target.result))
            else:
                target._joiners.append(process)
        else:
            raise TypeError(
                f"process {process.name!r} yielded unsupported command: "
                f"{command!r}"
            )

    # -- resources -------------------------------------------------------------

    def _acquire(self, process: Process, resource: Resource) -> None:
        if resource.in_use < resource.capacity:
            resource.in_use += 1
            resource.total_acquisitions += 1
            self.schedule(0.0, lambda: self._step(process, None))
        else:
            process._wait_started_us = self.now_us
            resource._waiters.append(process)

    def _release(self, process: Process, resource: Resource) -> None:
        if resource.in_use <= 0:
            raise RuntimeError(
                f"release of idle resource {resource.name!r} "
                f"by {process.name!r}"
            )
        resource.in_use -= 1
        while resource._waiters and resource.in_use < resource.capacity:
            waiter = resource._waiters.popleft()
            if waiter.finished:
                continue
            resource.in_use += 1
            resource.total_acquisitions += 1
            if waiter._wait_started_us is not None:
                resource.total_wait_us += self.now_us - waiter._wait_started_us
                waiter._wait_started_us = None
            self.schedule(0.0, lambda w=waiter: self._step(w, None))
        self.schedule(0.0, lambda: self._step(process, None))
