"""Virtual time substrate: cost accounting and discrete-event simulation.

Every engine in this repository does *real* algorithmic work on real data
structures, but the latencies and throughputs reported by the benchmark
harness are *simulated*: engines charge named cost counters (page reads,
round trips, serialized items, ...) to the active :class:`Ledger`, and a
:class:`CostModel` converts the counters into simulated microseconds.

Concurrent experiments (Figure 3 throughput, Appendix A concurrent loading)
run on the :class:`Simulator`, a small generator-based discrete-event
simulator with FIFO :class:`Resource` queues used to model contention
(worker pools, write latches, checkpoint stalls).
"""

from repro.simclock.clock import SimClock
from repro.simclock.costmodel import DEFAULT_WEIGHTS, CostModel
from repro.simclock.events import (
    Acquire,
    Join,
    Process,
    Release,
    Resource,
    Simulator,
    Timeout,
)
from repro.simclock.ledger import Ledger, charge, meter, metered

__all__ = [
    "SimClock",
    "CostModel",
    "DEFAULT_WEIGHTS",
    "Ledger",
    "charge",
    "meter",
    "metered",
    "Simulator",
    "Process",
    "Resource",
    "Timeout",
    "Acquire",
    "Release",
    "Join",
]
