"""Cost model: converts named work counters into simulated microseconds.

The weights below are the single calibration point of the whole
reproduction.  They are rough per-unit costs of primitive operations on the
paper's testbed-class hardware (2.6 GHz cores, data resident in memory,
10 GbE between driver and SUT).  Engines never sleep and never consult the
wall clock; they count work, and the cost model prices it.

Weight groups:

* storage primitives (pages, records, index probes, column segments, LSM)
* query-language processing (parse/plan/compile, per-row runtime overhead)
* client/server communication (native wire protocol vs. Gremlin Server)
* durability and concurrency (WAL, fsync, lock round trips)

Calibration notes live in EXPERIMENTS.md; the *shape* of every result
(orderings, crossovers, orders of magnitude) is produced by counted work,
not by per-system fudge factors.
"""

from __future__ import annotations

from collections.abc import Mapping

#: Default per-unit costs in microseconds.
DEFAULT_WEIGHTS: dict[str, float] = {
    # --- storage primitives -------------------------------------------------
    "page_read": 120.0,       # read a page from disk (cold)
    "page_write": 140.0,      # write a page back to disk
    "buffer_hit": 0.35,       # find a page in the buffer pool
    "cache_hit": 0.3,         # serve a derived result from an engine cache
    "record_read": 0.12,      # fetch a fixed-size store record by offset
    "record_write": 0.25,     # update a fixed-size store record
    "index_probe": 1.1,       # full root-to-leaf descent, nodes cached
    "index_insert": 2.2,      # insert into a B+tree / hash index
    "index_node": 0.25,       # touch one index node during a descent/scan
    "tuple_cpu": 0.25,        # push one tuple through one operator (row
                              # engines: tuple-at-a-time interpretation)
    "tuple_vec": 0.05,        # same, inside a vectorized batch (Virtuoso)
    "vector_setup": 18.0,     # dispatch overhead per vectorized batch
    "value_cpu": 0.02,        # touch one cell / property value
    "hash_probe": 0.35,       # probe an in-memory hash table
    "column_seek": 2.2,       # position into a column segment (per column)
    "column_value": 0.08,     # read the next value within a positioned
                              # column (vectorized sequential access)
    "column_append": 55.0,    # append one value to a column: dictionary
                              # coding + positional index maintenance (the
                              # per-column insert overhead that makes
                              # columnar stores "suffer under transactional
                              # workloads with frequent updates")
    "column_update": 45.0,    # out-of-place update bookkeeping per column
    "lsm_memtable_op": 0.7,   # memtable insert / lookup
    "lsm_sstable_probe": 22.0,  # binary search + block read in one sstable
    "lsm_bloom_check": 0.25,  # bloom filter membership test
    "lsm_compaction_item": 0.6,  # merge one entry during compaction
    "bdb_page": 2.0,          # touch one BerkeleyDB btree page (embedded)
    # --- query language processing ------------------------------------------
    "sql_parse": 40.0,
    "sql_plan": 45.0,
    "sql_exec": 80.0,         # per-statement executor setup (snapshot,
                              # portal, plan instantiation)
    "sql_analyze": 5000.0,    # ANALYZE: full-scan statistics refresh
    "graph_analyze": 5000.0,  # property-graph statistics refresh
    "sparql_analyze": 5000.0,  # triple-store statistics refresh
    "sql_row": 0.4,           # per result row through the SQL executor top
    "cypher_parse": 220.0,
    "cypher_plan": 260.0,
    "cypher_exec": 2000.0,    # per-statement runtime setup (txn begin,
                              # interpreted pipeline construction; the
                              # Neo4j-2.3-era fixed overhead visible in
                              # the paper's 9 ms point lookups)
    "cypher_row": 7.0,        # interpreted Cypher runtime per intermediate row
    "sparql_parse": 90.0,
    "sparql_translate": 450.0,  # SPARQL -> SQL translation per query
    "transitive_row": 15.0,   # one frontier row through Virtuoso's
                              # transitive derived-table pipeline
    "gremlin_compile": 11000.0,  # script evaluation / traversal compilation
    "step_eval": 0.9,         # advance one traverser through one step
    "closure_compile": 150.0,  # specialize one cached plan into a chain of
                               # vectorized kernel closures (constants,
                               # offsets and accessors pre-bound)
    "compiled_exec": 40.0,    # per-statement setup of a compiled query
                              # (txn begin + closure dispatch; replaces the
                              # interpreted pipeline construction)
    # --- client / server ------------------------------------------------------
    "client_rtt": 95.0,       # native wire protocol round trip (10 GbE)
    "server_rtt": 900.0,      # Gremlin Server websocket round trip + framing
    "backend_rtt": 260.0,     # TitanDB -> Cassandra thrift round trip
    "serialize_item": 6.0,    # GraphSON-serialize one element
    "result_row": 0.4,        # ship one row on a native protocol
    # --- cluster scatter / gather ---------------------------------------------
    "shard_rtt": 95.0,        # driver -> shard round trip (same fabric as
                              # client_rtt; one per scatter *wave*, the
                              # fan-out requests overlap on the wire)
    "shard_msg": 5.0,         # marshal one sub-request/sub-reply of a
                              # scatter wave (per shard contacted)
    "scatter_wait_us": 1.0,   # one simulated microsecond waiting on the
                              # slowest shard of a wave (critical path;
                              # units are the max of the per-shard costs)
    "gather_item": 0.02,      # merge one row through the k-way gather
    # --- durability / concurrency --------------------------------------------
    "wal_append": 0.9,        # append one WAL record (buffered)
    "wal_fsync": 300.0,       # force the WAL (group-commit amortized)
    "lock_acquire": 1.3,      # local lock manager acquisition
    "lock_rtt": 1200.0,       # Titan distributed-lock round trip + wait
    "txn_begin": 2.0,
    "txn_commit": 4.0,
    # --- MVCC snapshot reads ---------------------------------------------------
    "ts_alloc": 0.1,          # allocate a read timestamp from the oracle
    "version_check": 0.01,    # test one record's visibility against a
                              # snapshot (stamp/tombstone comparison)
    "version_walk": 0.05,     # step once down a version chain to an older
                              # committed value
}


class CostModel:
    """Prices a counter mapping into simulated microseconds.

    Parameters
    ----------
    overrides:
        Optional per-weight overrides, merged over :data:`DEFAULT_WEIGHTS`.
    strict:
        When true (default), charging a counter the model does not know is
        an error — this catches typos in counter names early.
    """

    def __init__(
        self,
        overrides: Mapping[str, float] | None = None,
        *,
        strict: bool = True,
    ) -> None:
        self.weights: dict[str, float] = dict(DEFAULT_WEIGHTS)
        if overrides:
            unknown = set(overrides) - set(self.weights)
            if unknown and strict:
                raise KeyError(f"unknown cost weights: {sorted(unknown)}")
            self.weights.update(overrides)
        self.strict = strict

    def weight(self, name: str) -> float:
        """Per-unit cost of counter ``name`` in microseconds."""
        try:
            return self.weights[name]
        except KeyError:
            if self.strict:
                raise KeyError(f"unknown cost counter: {name!r}") from None
            return 0.0

    def cost_us(self, counters: Mapping[str, float]) -> float:
        """Total simulated microseconds for a counter mapping."""
        total = 0.0
        for name, units in counters.items():
            total += self.weight(name) * units
        return total

    def breakdown_us(self, counters: Mapping[str, float]) -> dict[str, float]:
        """Per-counter contribution in microseconds, largest first."""
        parts = {
            name: self.weight(name) * units
            for name, units in counters.items()
            if units
        }
        return dict(sorted(parts.items(), key=lambda kv: -kv[1]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostModel({len(self.weights)} weights, strict={self.strict})"
