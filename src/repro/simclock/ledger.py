"""Cost ledgers: where engines record the work they do.

Engines call the module-level :func:`charge` from arbitrarily deep code.
The harness brackets each benchmarked operation with :func:`meter`, which
pushes a fresh :class:`Ledger` onto the active stack; charges apply to
*every* ledger on the stack, so nested meters (e.g. a per-query ledger
inside a per-experiment ledger) each see the full cost.

The stack is deliberately a plain module-level list: all real execution in
this reproduction is single-threaded (concurrency is simulated), so there
is no need for thread-local state.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator, Mapping
from contextlib import contextmanager

from repro.simclock.costmodel import CostModel

_ACTIVE: list["Ledger"] = []


class Ledger:
    """An accumulator of named work counters."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: defaultdict[str, float] = defaultdict(float)

    def charge(self, name: str, units: float = 1.0) -> None:
        """Record ``units`` of work of kind ``name``."""
        self.counters[name] += units

    def merge(self, other: "Ledger" | Mapping[str, float]) -> None:
        """Add another ledger's counters into this one."""
        counters = other.counters if isinstance(other, Ledger) else other
        for name, units in counters.items():
            self.counters[name] += units

    def cost_us(self, model: CostModel) -> float:
        """Price this ledger under ``model``."""
        return model.cost_us(self.counters)

    def total_units(self) -> float:
        """Sum of all counter units (model-independent work volume)."""
        return sum(self.counters.values())

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of the counters."""
        return dict(self.counters)

    def clear(self) -> None:
        self.counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        top = sorted(self.counters.items(), key=lambda kv: -kv[1])[:4]
        inner = ", ".join(f"{k}={v:g}" for k, v in top)
        return f"Ledger({inner}{'...' if len(self.counters) > 4 else ''})"


def charge(name: str, units: float = 1.0) -> None:
    """Charge ``units`` of counter ``name`` to every active ledger.

    A no-op when no ledger is active, so engine code can charge
    unconditionally.
    """
    for ledger in _ACTIVE:
        ledger.counters[name] += units


@contextmanager
def isolated() -> Iterator[Ledger]:
    """A fresh ledger that is the *only* active one for the block.

    Ambient ledgers are suspended: charges inside the block land on the
    yielded ledger and nowhere else.  The cluster scatter/gather driver
    uses this to meter each shard's sub-operation independently, then
    charges the ambient ledgers the *critical path* (the slowest shard)
    rather than the sum — that is what turns N shards into parallelism
    instead of N-fold cost.
    """
    saved = _ACTIVE[:]
    _ACTIVE.clear()
    ledger = Ledger()
    _ACTIVE.append(ledger)
    try:
        yield ledger
    finally:
        _ACTIVE.clear()
        _ACTIVE.extend(saved)


@contextmanager
def metered(ledger: Ledger) -> Iterator[Ledger]:
    """Make ``ledger`` active for the duration of the block."""
    _ACTIVE.append(ledger)
    try:
        yield ledger
    finally:
        _ACTIVE.remove(ledger)


@contextmanager
def meter() -> Iterator[Ledger]:
    """Create a fresh ledger and make it active for the block."""
    with metered(Ledger()) as ledger:
        yield ledger


def active_ledgers() -> int:
    """Number of ledgers currently on the stack (for tests/diagnostics)."""
    return len(_ACTIVE)
