"""repro - a from-scratch reproduction of Do We Need Specialized Graph
Databases? Benchmarking Real-Time Social Networking Applications
(Pacaci, Zhou, Lin, Ozsu; GRADES @ SIGMOD 2017).

Public entry points:

* :mod:`repro.core`   - the benchmark API: connectors for the eight
  systems under test, latency suites, metrics, and reports.
* :mod:`repro.snb`    - the LDBC SNB datagen analogue.
* :mod:`repro.driver` - workload driver: loaders, schedulers, and the
  real-time interactive runner.

See README.md for a tour and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"
