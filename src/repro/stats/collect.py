"""Statistics containers and collectors.

Each engine's ``ANALYZE`` builds one of the containers below with a full
scan (the datasets in scope are small enough that sampling would add
noise without saving anything).  Containers are plain data: they never
reach back into the stores, so stale statistics can only mislead the
planners, never break answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


#: equi-width histogram resolution for numeric columns
HISTOGRAM_BUCKETS = 32


@dataclass
class EquiWidthHistogram:
    """Equi-width bucket counts over a numeric column's value range.

    Gives range predicates (``creationdate > ?``-style) a data-driven
    selectivity instead of the System R 1/3 default: full buckets below
    the constant count entirely, the containing bucket contributes a
    linear fraction (uniformity within a bucket).
    """

    low: float
    high: float
    counts: list[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, value: float) -> float:
        """Fraction of values strictly below ``value`` (approximate)."""
        total = self.total
        if total == 0:
            return 0.0
        if value <= self.low:
            return 0.0
        if value > self.high:
            return 1.0
        width = (self.high - self.low) / len(self.counts)
        if width <= 0:
            return 0.0
        position = (value - self.low) / width
        bucket = min(int(position), len(self.counts) - 1)
        below = sum(self.counts[:bucket])
        within = (position - bucket) * self.counts[bucket]
        return min(1.0, (below + within) / total)

    def selectivity(self, op: str, value: float) -> float:
        """Selectivity of ``col <op> value`` for ``< <= > >=``."""
        below = self.fraction_below(value)
        if op in ("<", "<="):
            estimate = below
        else:
            estimate = 1.0 - below
        # never return a hard zero: the planner multiplies these
        return min(1.0, max(estimate, 1e-4))


@dataclass
class ColumnStats:
    """Per-column distribution summary."""

    distinct: int = 0
    null_count: int = 0
    minimum: Any = None
    maximum: Any = None
    #: present for numeric columns with at least two distinct values
    histogram: EquiWidthHistogram | None = None


@dataclass
class TableStats:
    """Row count plus per-column stats for one SQL table."""

    name: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def distinct(self, column: str) -> int | None:
        stats = self.columns.get(column)
        return stats.distinct if stats is not None else None


class SqlStatistics:
    """ANALYZE output for a relational catalog."""

    def __init__(self) -> None:
        self.tables: dict[str, TableStats] = {}

    def table(self, name: str) -> TableStats | None:
        return self.tables.get(name.lower())


def collect_sql_statistics(catalog: Any) -> SqlStatistics:
    """Full-scan statistics for every table in a relational catalog."""
    stats = SqlStatistics()
    for name in catalog.table_names():
        table = catalog.table(name)
        columns = list(table.column_names)
        values: list[set] = [set() for _ in columns]
        nulls = [0] * len(columns)
        minima: list[Any] = [None] * len(columns)
        maxima: list[Any] = [None] * len(columns)
        numeric: list[list[float] | None] = [[] for _ in columns]
        rows = 0
        for _handle, row in table.scan():
            rows += 1
            for i, value in enumerate(row):
                if value is None:
                    nulls[i] += 1
                    continue
                values[i].add(value)
                bucket_values = numeric[i]
                if bucket_values is not None:
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        bucket_values.append(float(value))
                    else:
                        numeric[i] = None  # non-numeric: no histogram
                try:
                    if minima[i] is None or value < minima[i]:
                        minima[i] = value
                    if maxima[i] is None or value > maxima[i]:
                        maxima[i] = value
                except TypeError:
                    pass  # mixed-type column: keep distinct counts only
        stats.tables[name.lower()] = TableStats(
            name=name.lower(),
            row_count=rows,
            columns={
                column: ColumnStats(
                    distinct=len(values[i]),
                    null_count=nulls[i],
                    minimum=minima[i],
                    maximum=maxima[i],
                    histogram=_build_histogram(numeric[i]),
                )
                for i, column in enumerate(columns)
            },
        )
    return stats


def _build_histogram(
    values: list[float] | None,
) -> EquiWidthHistogram | None:
    """Bucket the column's numeric values (None if not worth having)."""
    if not values:
        return None
    low, high = min(values), max(values)
    if low == high:
        return None
    counts = [0] * HISTOGRAM_BUCKETS
    width = (high - low) / HISTOGRAM_BUCKETS
    for value in values:
        bucket = min(int((value - low) / width), HISTOGRAM_BUCKETS - 1)
        counts[bucket] += 1
    return EquiWidthHistogram(low=low, high=high, counts=counts)


@dataclass
class GraphStatistics:
    """ANALYZE output for a property-graph store.

    ``rel_degrees`` maps relationship type to ``(count, distinct start
    nodes, distinct end nodes)`` — enough to estimate average out/in
    fan-out per type.  ``prop_distinct`` maps indexed ``(label, prop)``
    pairs to their distinct value counts.
    """

    node_count: int = 0
    rel_count: int = 0
    label_counts: dict[str, int] = field(default_factory=dict)
    rel_degrees: dict[str, tuple[int, int, int]] = field(
        default_factory=dict
    )
    prop_distinct: dict[tuple[str, str], int] = field(default_factory=dict)

    def label_count(self, label: str) -> int | None:
        return self.label_counts.get(label)

    def avg_degree(self, rel_type: str | None, direction: str) -> float:
        """Average fan-out per node following ``rel_type`` edges.

        ``direction`` is ``out``/``in``/``both``; an unknown type falls
        back to the overall edge/node ratio.
        """
        if rel_type is None or rel_type not in self.rel_degrees:
            if not self.node_count:
                return 1.0
            return max(1.0, 2.0 * self.rel_count / self.node_count)
        count, starts, ends = self.rel_degrees[rel_type]
        if direction == "out":
            return count / max(starts, 1)
        if direction == "in":
            return count / max(ends, 1)
        return count / max(starts, 1) + count / max(ends, 1)


@dataclass
class TripleStatistics:
    """ANALYZE output for a triple store.

    Per-predicate triple counts plus distinct subject/object counts give
    the matching-triple estimate for every bound-position combination of
    a triple pattern.
    """

    triple_count: int = 0
    predicate_counts: dict[Any, int] = field(default_factory=dict)
    distinct_subjects: dict[Any, int] = field(default_factory=dict)
    distinct_objects: dict[Any, int] = field(default_factory=dict)
    total_subjects: int = 0
    total_objects: int = 0

    def pattern_count(
        self, s_bound: bool, predicate: Any, o_bound: bool
    ) -> float:
        """Estimated triples matching one pattern given its bound slots."""
        if predicate is not None:
            total = float(self.predicate_counts.get(predicate, 0))
            if s_bound:
                total /= max(self.distinct_subjects.get(predicate, 1), 1)
            if o_bound:
                total /= max(self.distinct_objects.get(predicate, 1), 1)
            return total
        total = float(self.triple_count)
        if s_bound:
            total /= max(self.total_subjects, 1)
        if o_bound:
            total /= max(self.total_objects, 1)
        return total
