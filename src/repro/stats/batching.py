"""Cardinality-driven batch sizing for the vectorized executor.

The compiled engines (:mod:`repro.exec`) process operators batch-at-a-
time; each dispatched batch pays a fixed ``vector_setup`` cost, so the
sweet spot depends on how many rows the optimizer expects to flow
through the operator.  Tiny inputs should not pay for a 1024-slot batch
and huge inputs should not dispatch thousands of 64-slot ones.
"""

from __future__ import annotations

MIN_BATCH_SIZE = 64
MAX_BATCH_SIZE = 1024


def choose_batch_size(est_rows: float | None) -> int:
    """Pick a power-of-two batch size from a cardinality estimate.

    The estimate is the planner's ``est_rows`` for the operator's input
    (``None`` when statistics have not been collected).  The result is
    the smallest power of two covering the estimate, clamped to
    [``MIN_BATCH_SIZE``, ``MAX_BATCH_SIZE``] — statistics-free plans get
    the maximum size, which wastes nothing because batches are filled
    lazily.
    """
    if est_rows is None:
        return MAX_BATCH_SIZE
    size = MIN_BATCH_SIZE
    while size < est_rows and size < MAX_BATCH_SIZE:
        size <<= 1
    return size
