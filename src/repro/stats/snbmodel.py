"""Closed-form SNB cardinality model for static analysis.

The lint passes run without a loaded database, so they cannot ask live
statistics how big a scan would be.  This model predicts row counts at
paper scale (divisor 1) from the generator's closed-form person count
plus per-person multipliers calibrated against the generator at
SF10/divisor 1000 (seed 42); the generator is linear in the divisor, so
the ratios hold at full scale.  Dimension tables (tags, places,
organisations, tag classes) are effectively constant.
"""

from __future__ import annotations

LINT_SCALE_FACTOR = 10.0

#: rows per person, calibrated against the generator (see module docstring)
_PER_PERSON: dict[str, float] = {
    "person": 1.0,
    "knows": 25.6,  # stored both directions in the SQL schema
    "post": 7.0,
    "comment": 16.4,
    "forum": 1.4,
    "forum_member": 35.4,
    "likes": 55.1,
    "person_speaks": 2.0,
    "person_email": 1.7,
    "person_interest": 12.0,
    "person_studyat": 0.5,
    "person_workat": 0.5,
    "post_tag": 7.0,
    "comment_tag": 8.0,
    "forum_tag": 2.8,
}

#: small dimension tables: near-constant row counts
_CONSTANT: dict[str, int] = {
    "tag": 56,
    "tagclass": 20,
    "place": 101,
    "organisation": 144,
}

#: schema-catalog entity kind -> table carrying it
_ENTITY_TABLE: dict[str, str] = {
    "person": "person",
    "post": "post",
    "comment": "comment",
    "forum": "forum",
    "tag": "tag",
    "tagclass": "tagclass",
    "place": "place",
    "organisation": "organisation",
}


def person_count(scale_factor: float = LINT_SCALE_FACTOR) -> int:
    """The generator's closed-form person count at divisor 1."""
    return max(30, round(250.0 * (scale_factor / 3.0) * 1000.0))


def expected_table_rows(
    table: str, scale_factor: float = LINT_SCALE_FACTOR
) -> int | None:
    """Predicted SQL table rows at paper scale (None when unknown)."""
    name = table.lower()
    if name in _CONSTANT:
        return _CONSTANT[name]
    multiplier = _PER_PERSON.get(name)
    if multiplier is None:
        return None
    return round(multiplier * person_count(scale_factor))


def expected_entity_rows(
    entities: frozenset[str] | set[str],
    scale_factor: float = LINT_SCALE_FACTOR,
) -> int | None:
    """Predicted instances across a set of entity kinds (Cypher/Gremlin)."""
    total = 0
    known = False
    for entity in entities:
        table = _ENTITY_TABLE.get(entity.lower())
        rows = (
            expected_table_rows(table, scale_factor)
            if table is not None
            else None
        )
        if rows is not None:
            total += rows
            known = True
    return total if known else None


def expected_vertex_count(
    label: str | None = None, scale_factor: float = LINT_SCALE_FACTOR
) -> int:
    """Predicted vertices under one label (or all labels for None)."""
    if label is not None:
        rows = expected_entity_rows({label}, scale_factor)
        if rows is not None:
            return rows
    return sum(
        expected_table_rows(t, scale_factor) or 0
        for t in _ENTITY_TABLE.values()
    )


def format_rows(rows: int) -> str:
    """Human-scale row count for diagnostics (``~2.1M``, ``~833k``)."""
    if rows >= 1_000_000:
        return f"~{rows / 1_000_000:.1f}M"
    if rows >= 1_000:
        return f"~{rows / 1_000:.0f}k"
    return f"~{rows}"
