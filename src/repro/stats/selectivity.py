"""Shared selectivity arithmetic (the System R defaults).

Every engine-specific planner reduces its estimation problem to these
formulas; keeping them in one place keeps the engines' cost models
comparable, which matters when the benchmark attributes latency
differences to plan quality.

Range predicates prefer the column's equi-width histogram when ANALYZE
recorded one; the 1/3 System R default remains the fallback for unknown
columns and parameter markers (whose value is unknown at plan time).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.stats.collect import ColumnStats

#: selectivity of a range predicate (<, <=, >, >=) without histograms
RANGE_SELECTIVITY = 1.0 / 3.0

#: selectivity of an equality against a column of unknown cardinality
DEFAULT_EQ_SELECTIVITY = 0.1

#: rows assumed for a relation with no statistics and no live count
DEFAULT_ROWS = 1000.0


class Selectivity:
    """Static estimation helpers; all results are > 0."""

    @staticmethod
    def equality(distinct: int | None) -> float:
        """``col = const``: uniform over the distinct values."""
        if distinct is None or distinct <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return 1.0 / distinct

    @staticmethod
    def inequality(distinct: int | None) -> float:
        """``col <> const``: everything but one value."""
        if distinct is None or distinct <= 1:
            return 1.0
        return (distinct - 1.0) / distinct

    @staticmethod
    def range(
        column: "ColumnStats | None" = None,
        op: str | None = None,
        value: Any = None,
    ) -> float:
        """``col <op> const``: histogram estimate when available.

        With no arguments (or no histogram / non-numeric constant) this
        is the System R 1/3 default.
        """
        if (
            column is not None
            and column.histogram is not None
            and op in ("<", "<=", ">", ">=")
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        ):
            return column.histogram.selectivity(op, float(value))
        return RANGE_SELECTIVITY

    @staticmethod
    def join(
        left_rows: float,
        right_rows: float,
        left_distinct: int | None,
        right_distinct: int | None,
    ) -> float:
        """Equi-join output estimate: ``|L|·|R| / max(d(L.a), d(R.b))``."""
        denominator = max(
            left_distinct or 0,
            right_distinct or 0,
            1,
        )
        return max(left_rows * right_rows / denominator, 1.0)
