"""Statistics subsystem shared by the four query engines.

``ANALYZE`` entry points on the engine facades collect the containers in
:mod:`repro.stats.collect`; planners consult them through the
:class:`~repro.stats.selectivity.Selectivity` estimator.  The static
analysis passes use :mod:`repro.stats.snbmodel` (the closed-form SNB
cardinality model) to attach expected row counts to their warnings.
"""

from repro.stats.batching import (
    MAX_BATCH_SIZE,
    MIN_BATCH_SIZE,
    choose_batch_size,
)
from repro.stats.collect import (
    ColumnStats,
    EquiWidthHistogram,
    GraphStatistics,
    SqlStatistics,
    TableStats,
    TripleStatistics,
    collect_sql_statistics,
)
from repro.stats.selectivity import Selectivity
from repro.stats.snbmodel import (
    expected_entity_rows,
    expected_table_rows,
    expected_vertex_count,
    format_rows,
)

__all__ = [
    "MAX_BATCH_SIZE",
    "MIN_BATCH_SIZE",
    "choose_batch_size",
    "ColumnStats",
    "EquiWidthHistogram",
    "GraphStatistics",
    "Selectivity",
    "SqlStatistics",
    "TableStats",
    "TripleStatistics",
    "collect_sql_statistics",
    "expected_entity_rows",
    "expected_table_rows",
    "expected_vertex_count",
    "format_rows",
]
