"""Tables: schema + storage engine + secondary indexes.

A :class:`Table` hides the storage layout behind a handle-based API:

* ``row``    — rows serialized by :class:`RowCodec` into a :class:`HeapFile`;
  handles are RIDs and may move when an update grows the record.
* ``column`` — rows live in a :class:`ColumnTable`; handles are stable
  positions, but every touched column charges columnar update costs.

Indexes map column values to handles.  The primary key always gets a unique
hash index (the paper indexes vertex IDs in every system); ``CREATE INDEX``
adds B+tree or hash secondaries.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from repro.sanitizer import runtime
from repro.simclock.ledger import charge
from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.codec import ColumnType, RowCodec
from repro.storage.column import ColumnTable
from repro.storage.hashindex import HashIndex
from repro.storage.heap import HeapFile
from repro.storage.mvcc import VersionStore
from repro.storage.wal import WriteAheadLog
from repro.txn import oracle

_TYPE_ALIASES = {
    "int": ColumnType.INT,
    "integer": ColumnType.INT,
    "bigint": ColumnType.INT,
    "timestamp": ColumnType.INT,
    "float": ColumnType.FLOAT,
    "double": ColumnType.FLOAT,
    "real": ColumnType.FLOAT,
    "text": ColumnType.TEXT,
    "varchar": ColumnType.TEXT,
    "string": ColumnType.TEXT,
    "bool": ColumnType.BOOL,
    "boolean": ColumnType.BOOL,
}


def column_type_from_sql(type_name: str) -> ColumnType:
    try:
        return _TYPE_ALIASES[type_name.lower()]
    except KeyError:
        raise ValueError(f"unsupported SQL type: {type_name!r}") from None


class Table:
    """One relation with either row or columnar storage."""

    def __init__(
        self,
        name: str,
        columns: Sequence[tuple[str, ColumnType]],
        *,
        primary_key: str | None = None,
        storage: str = "row",
        pool: BufferPool | None = None,
        wal: WriteAheadLog | None = None,
    ) -> None:
        if storage not in ("row", "column"):
            raise ValueError(f"unknown storage engine: {storage!r}")
        if storage == "row" and pool is None:
            raise ValueError("row storage requires a buffer pool")
        self.name = name
        self.columns = list(columns)
        self.column_names = [c for c, _ in columns]
        self._col_pos = {c: i for i, c in enumerate(self.column_names)}
        self.primary_key = primary_key
        self.storage = storage
        self.wal = wal
        self._indexes: dict[str, BPlusTree | HashIndex] = {}
        #: row versions keyed by handle; deletes observed by an active
        #: snapshot are deferred here and reclaimed at the GC watermark
        self.mvcc = VersionStore(
            f"{name}-mvcc", on_reclaim=self._reclaim_tombstone
        )

        if storage == "row":
            self._codec = RowCodec([t for _, t in columns])
            self._heap = HeapFile(pool, name)  # type: ignore[arg-type]
        else:
            self._cols = ColumnTable(name, columns)

        if primary_key is not None:
            if primary_key not in self._col_pos:
                raise ValueError(
                    f"primary key {primary_key!r} is not a column of {name!r}"
                )
            self._indexes[primary_key] = HashIndex(
                unique=True, name=f"{name}_pk"
            )

    # -- metadata ----------------------------------------------------------------

    def __len__(self) -> int:
        if self.storage == "row":
            return self._heap.record_count
        return len(self._cols)

    def column_position(self, column: str) -> int:
        try:
            return self._col_pos[column]
        except KeyError:
            raise KeyError(
                f"no column {column!r} in table {self.name!r}"
            ) from None

    def has_index(self, column: str) -> bool:
        return column in self._indexes

    def index_supports_range(self, column: str) -> bool:
        return isinstance(self._indexes.get(column), BPlusTree)

    def create_index(self, column: str, method: str = "btree") -> None:
        """Build a secondary index over existing rows."""
        if column in self._indexes:
            return
        pos = self.column_position(column)
        index: BPlusTree | HashIndex
        if method == "btree":
            index = BPlusTree(name=f"{self.name}_{column}")
        elif method == "hash":
            index = HashIndex(name=f"{self.name}_{column}")
        else:
            raise ValueError(f"unknown index method: {method!r}")
        # index every physical row, tombstoned ones included: visibility
        # is filtered at lookup time, and the GC reclaim path unindexes
        # deferred deletes from *all* indexes uniformly
        for handle, row in self._scan_raw():
            if row[pos] is not None:
                index.insert(row[pos], handle)
        self._indexes[column] = index

    # -- write path --------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> Any:
        """Insert a row; returns its handle."""
        row = tuple(values)
        if len(row) != len(self.column_names):
            raise ValueError(
                f"row has {len(row)} values, table {self.name!r} has "
                f"{len(self.column_names)} columns"
            )
        if self.primary_key is not None:
            pk_value = row[self._col_pos[self.primary_key]]
            if pk_value is None:
                raise ValueError(f"primary key of {self.name!r} cannot be NULL")
        if self.storage == "row":
            handle = self._heap.insert(self._codec.encode(row))
        else:
            handle = self._cols.append(row)
        for column, index in self._indexes.items():
            value = row[self._col_pos[column]]
            if value is not None:
                index.insert(value, handle)
        self.mvcc.stamp(handle)
        if self.wal is not None:
            self.wal.append(_wal_record("insert", self.name, list(row)))
        if runtime.TRACE is not None:
            runtime.TRACE.write((self.name, handle))
        return handle

    def update(self, handle: Any, changes: Mapping[str, Any]) -> Any:
        """Apply ``changes``; returns the (possibly moved) handle."""
        old_row = self._fetch_raw(handle)
        new_row = list(old_row)
        for column, value in changes.items():
            new_row[self.column_position(column)] = value
        self.mvcc.record_update(handle, old_row)
        if self.storage == "row":
            new_handle = self._heap.update(
                handle, self._codec.encode(tuple(new_row))
            )
        else:
            self._cols.update(handle, dict(changes))
            new_handle = handle
        if new_handle != handle:
            self.mvcc.move(handle, new_handle)
        for column, index in self._indexes.items():
            pos = self._col_pos[column]
            changed = old_row[pos] != new_row[pos]
            moved = new_handle != handle
            if changed or moved:
                if old_row[pos] is not None:
                    index.delete(old_row[pos], handle)
                if new_row[pos] is not None:
                    index.insert(new_row[pos], new_handle)
        if self.wal is not None:
            self.wal.append(
                _wal_record(
                    "update", self.name, [list(old_row), new_row]
                )
            )
        if runtime.TRACE is not None:
            runtime.TRACE.write((self.name, handle))
        return new_handle

    def delete(self, handle: Any) -> None:
        row = self._fetch_raw(handle)
        if self.mvcc.record_delete(handle):
            # an active snapshot may still see this row: keep it (and
            # its index entries) in place, filtered by visibility, until
            # the GC watermark passes the tombstone
            pass
        else:
            self._remove_physical(handle, row)
        if self.wal is not None:
            self.wal.append(_wal_record("delete", self.name, list(row)))
        if runtime.TRACE is not None:
            runtime.TRACE.write((self.name, handle))

    def undo_delete(self, handle: Any, row: Sequence[Any]) -> Any:
        """Transaction-abort undo of :meth:`delete`; returns the handle.

        A tombstoned row is still physically present — dropping the
        tombstone restores it in place; a physically removed row is
        re-inserted (fresh handle).
        """
        if self.mvcc.undelete(handle):
            return handle
        return self.insert(row)

    def _remove_physical(self, handle: Any, row: tuple) -> None:
        if self.storage == "row":
            self._heap.delete(handle)
        else:
            self._cols.delete(handle)
        for column, index in self._indexes.items():
            value = row[self._col_pos[column]]
            if value is not None:
                index.delete(value, handle)

    def _reclaim_tombstone(self, handle: Any) -> None:
        """GC callback: a deferred delete is now invisible to everyone."""
        self._remove_physical(handle, self._fetch_raw(handle))

    # -- read path ---------------------------------------------------------------

    def _fetch_raw(self, handle: Any) -> tuple:
        """The latest committed row, ignoring any snapshot (write paths)."""
        if self.storage == "row":
            return self._codec.decode(self._heap.fetch(handle))
        return self._cols.read_row(handle)

    def fetch(self, handle: Any) -> tuple:
        row = self._fetch_raw(handle)
        if runtime.TRACE is not None:
            runtime.TRACE.read((self.name, handle))
        if oracle.CURRENT is not None:
            return self.mvcc.read(handle, row)
        return row

    def fetch_batch(
        self, handles: Sequence[Any], needed: Sequence[str] | None = None
    ) -> list[tuple]:
        """Fetch many rows at once, full schema width.

        Row storage decodes each record (no batching possible on a heap);
        columnar storage uses the vectorized batch path and fills columns
        outside ``needed`` with NULL — the planner passes exactly the
        columns the query references.
        """
        if self.storage == "row" or not handles:
            return [self.fetch(h) for h in handles]
        if any(self.mvcc.stale(h) for h in handles):
            # the batch spans versions the snapshot must not see: fall
            # back to per-record chain walks
            return [self.fetch(h) for h in handles]
        charge("vector_setup")
        names = list(needed) if needed is not None else self.column_names
        narrow = self._cols.read_batch(list(handles), names)
        if names == self.column_names:
            return narrow
        width = len(self.column_names)
        positions = [self._col_pos[n] for n in names]
        rows = []
        for values in narrow:
            row: list[Any] = [None] * width
            for pos, value in zip(positions, values):
                row[pos] = value
            rows.append(tuple(row))
        return rows

    def fetch_values_batch(
        self, handles: Sequence[Any], columns: Sequence[str]
    ) -> list[tuple]:
        """Projection fetch for a whole batch of handles.

        Columnar storage reads each requested column once for the whole
        batch (one ``vector_setup``); row storage decodes per record,
        exactly like :meth:`fetch_values`.
        """
        if self.storage == "row" or not handles:
            return [self.fetch_values(h, columns) for h in handles]
        if any(self.mvcc.stale(h) for h in handles):
            return [self.fetch_values(h, columns) for h in handles]
        charge("vector_setup")
        return self._cols.read_batch(list(handles), list(columns))

    def lookup_batch(
        self, column: str, values: Sequence[Any]
    ) -> dict[Any, list[Any]]:
        """Index probes for a deduplicated batch of keys.

        Duplicate keys are probed once — the batch executor's join
        kernels routinely see repeated outer keys within one batch.
        """
        index = self._indexes.get(column)
        if index is None:
            raise KeyError(f"no index on {self.name}.{column}")
        return {
            value: self._snapshot_index_fixup(
                column,
                self.mvcc.filter_visible(index.search(value)),
                lambda v, want=value: v == want,
            )
            for value in dict.fromkeys(values)
        }

    def fetch_values(self, handle: Any, columns: Sequence[str]) -> tuple:
        """Projection fetch.

        Row storage must decode the whole record; columnar storage touches
        only the requested columns — the layout difference the paper's
        traversal-heavy queries expose.
        """
        if self.storage == "row" or self.mvcc.stale(handle):
            row = self.fetch(handle)
            return tuple(row[self.column_position(c)] for c in columns)
        if runtime.TRACE is not None:
            runtime.TRACE.read((self.name, handle))
        return self._cols.read_values(handle, list(columns))

    def _scan_raw(self) -> Iterator[tuple[Any, tuple]]:
        """All physical rows, tombstoned ones included (index builds)."""
        if self.storage == "row":
            for rid, record in self._heap.scan():
                yield rid, self._codec.decode(record)
        else:
            yield from self._cols.scan()

    def scan(self) -> Iterator[tuple[Any, tuple]]:
        for handle, row in self._scan_raw():
            if self.mvcc.visible(handle):
                yield handle, self.mvcc.read(handle, row)

    def lookup(self, column: str, value: Any) -> list[Any]:
        """Handles of rows where ``column == value`` via the index."""
        index = self._indexes.get(column)
        if index is None:
            raise KeyError(f"no index on {self.name}.{column}")
        hits = self.mvcc.filter_visible(index.search(value))
        return self._snapshot_index_fixup(column, hits, lambda v: v == value)

    def _snapshot_index_fixup(
        self,
        column: str,
        hits: list[Any],
        matches: Any,
    ) -> list[Any]:
        """Re-check index hits against the snapshot-visible column value.

        Index entries are unversioned: an update after the snapshot began
        re-files the entry under the new value, so a probe by the old
        value misses the row (false negative) and a probe by the new
        value returns a handle whose snapshot row doesn't match (false
        positive).  The keys at risk are exactly ``mvcc.stale_keys()`` —
        every hit among them is value-checked against its snapshot row,
        and every stale visible row missing from ``hits`` is recovered if
        its snapshot value satisfies the predicate.
        """
        stale = self.mvcc.stale_keys()
        if not stale:
            return hits
        pos = self._col_pos[column]
        kept = []
        for handle in hits:
            if self.mvcc.stale(handle):
                row = self.mvcc.read(handle, self._fetch_raw(handle))
                if not matches(row[pos]):
                    continue
            kept.append(handle)
        seen = set(kept)
        for handle in stale:
            if handle in seen or not self.mvcc.visible(handle):
                continue
            row = self.mvcc.read(handle, self._fetch_raw(handle))
            if row[pos] is not None and matches(row[pos]):
                kept.append(handle)
        return kept

    def range_lookup(
        self, column: str, lo: Any, hi: Any, *, hi_inclusive: bool = True
    ) -> Iterator[Any]:
        index = self._indexes.get(column)
        if not isinstance(index, BPlusTree):
            raise KeyError(f"no range index on {self.name}.{column}")
        hits = [
            handle
            for _key, handle in index.range_scan(
                lo, hi, hi_inclusive=hi_inclusive
            )
            if self.mvcc.visible(handle)
        ]
        if hi_inclusive:
            in_range = lambda v: lo <= v <= hi  # noqa: E731
        else:
            in_range = lambda v: lo <= v < hi  # noqa: E731
        yield from self._snapshot_index_fixup(column, hits, in_range)

    # -- stats --------------------------------------------------------------------

    def size_bytes(self) -> int:
        if self.storage == "row":
            base = self._heap.size_bytes()
        else:
            base = self._cols.size_bytes()
        # rough index footprint: 16 bytes/entry
        index_bytes = sum(16 * len(i) for i in self._indexes.values())
        return base + index_bytes

    def charge_row(self) -> None:
        """Executor hook: per-row cost at the storage boundary."""
        charge("tuple_cpu")


def _wal_record(op: str, table: str, payload: list) -> bytes:
    """A logical WAL record: JSON ``[op, table, payload]``."""
    return json.dumps([op, table, payload]).encode("utf-8")
