"""The relational database facade: ``Database.execute(sql, params)``.

Statements are parsed and planned once per SQL text (prepared-statement
style; the LDBC workloads parameterize with ``?``, so the cache hits).
DML auto-commits unless wrapped in :meth:`Database.transaction`.

When ``transitive_support=True`` (the Virtuoso-like configuration) the SQL
built-in ``shortest_path_len(table, src_col, dst_col, src, dst)`` runs a
bidirectional BFS directly over the table's indexes — the engine-internal
"optimized transitivity support" the paper credits for Virtuoso's fast
shortest-path queries.  Without it (PostgreSQL-like), clients must use
``WITH RECURSIVE``, which evaluates breadth-first frontiers as joins.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.exec.sqlc import CompiledQuery

from repro.cache import CacheStats, EpochKeyedCache, LRUCache
from repro.relational.catalog import Catalog
from repro.relational.sql import ast
from repro.relational.sql.executor import (
    ExecContext,
    Schema,
    compile_expr,
)
from repro.relational.sql.parser import parse
from repro.relational.sql.planner import Planner
from repro.relational.table import Table, column_type_from_sql
from repro.simclock.ledger import charge
from repro.stats import SqlStatistics, collect_sql_statistics
from repro.storage.wal import WriteAheadLog
from repro.txn import oracle
from repro.txn.locks import LockMode
from repro.txn.manager import Transaction, TransactionManager


class Database:
    """A single-node SQL database over row or columnar storage."""

    def __init__(
        self,
        storage: str = "row",
        *,
        name: str = "db",
        transitive_support: bool = False,
        buffer_capacity: int = 1 << 16,
        cache_statements: bool = True,
        execution_mode: str = "compiled",
    ) -> None:
        if execution_mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {execution_mode!r}")
        self.name = name
        self.execution_mode = execution_mode
        #: read statements run under per-statement MVCC snapshots by
        #: default; "read-committed" skips versioning and sees the
        #: latest committed state
        self.isolation_level = "snapshot"
        self.wal = WriteAheadLog(f"{name}-wal")
        self.catalog = Catalog(
            storage, buffer_capacity=buffer_capacity, wal=self.wal
        )
        self.txns = TransactionManager(wal=self.wal)
        funcs = {}
        if transitive_support:
            funcs["shortest_path_len"] = self._shortest_path_len
        self.transitive_support = transitive_support
        self.planner = Planner(self.catalog, funcs)
        self._cache_statements = cache_statements
        self._stmt_cache = LRUCache(4096, name="sql-statements")
        #: sql -> (stats/schema epoch, plan); stale epochs force a replan
        self._plan_cache = EpochKeyedCache(4096, name="sql-plans")
        #: sql -> compiled closure; invalidated in lockstep with plans
        self._closure_cache = EpochKeyedCache(4096, name="sql-closures")
        self._active_txn: Transaction | None = None
        self.statements_executed = 0

    # -- public API ----------------------------------------------------------

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> list[tuple] | int:
        """Run one statement.

        Returns result rows for queries, affected-row count for DML, and 0
        for DDL.
        """
        self.statements_executed += 1
        charge("sql_exec")
        stmt = self._parse_cached(sql)
        if isinstance(stmt, (ast.Select, ast.RecursiveCTE)):
            return self._execute_query(sql, stmt, params)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt, params)
        if isinstance(stmt, ast.Update):
            return self._execute_update(stmt, params)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(stmt, params)
        if isinstance(stmt, ast.CreateTable):
            return self._execute_create_table(stmt)
        if isinstance(stmt, ast.CreateIndex):
            return self._execute_create_index(stmt)
        if isinstance(stmt, ast.Analyze):
            self.analyze()
            return 0
        raise TypeError(f"unhandled statement: {type(stmt).__name__}")

    def analyze(self) -> SqlStatistics:
        """Refresh planner statistics and invalidate cached plans."""
        charge("sql_analyze")
        stats = collect_sql_statistics(self.catalog)
        self.planner.stats = stats
        self._invalidate_plans()
        return stats

    @property
    def stats(self) -> SqlStatistics | None:
        return self.planner.stats

    @property
    def _stats_epoch(self) -> int:
        """The plan cache's epoch (bumped by DDL / ANALYZE / reorder)."""
        return self._plan_cache.epoch

    @_stats_epoch.setter
    def _stats_epoch(self, value: int) -> None:
        self._plan_cache.epoch = value
        self._closure_cache.epoch = value

    def cache_stats(self) -> list[CacheStats]:
        """Uniform cache counters (shared facade across all dialects)."""
        return [
            self._stmt_cache.stats(),
            self._plan_cache.stats(),
            self._closure_cache.stats(),
        ]

    def set_join_reordering(self, enabled: bool) -> None:
        """Toggle cost-based join reordering (benchmark A/B switch)."""
        self.planner.reorder_enabled = enabled
        self._invalidate_plans()

    def set_execution_mode(self, mode: str) -> None:
        """Switch between ``interpreted`` and ``compiled`` execution.

        Compiled closures specialize the same cached plans, so switching
        modes needs no invalidation — both caches stay coherent.
        """
        if mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {mode!r}")
        self.execution_mode = mode

    def set_isolation_level(self, level: str) -> None:
        """Choose the read isolation: ``snapshot`` or ``read-committed``."""
        self.isolation_level = oracle.check_isolation_level(level)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Like :meth:`execute` but guarantees a row list."""
        result = self.execute(sql, params)
        if not isinstance(result, list):
            raise TypeError(f"{sql[:40]!r}... is not a query")
        return result

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Group several statements into one atomic, single-fsync unit."""
        if self._active_txn is not None:
            raise RuntimeError("nested transactions are not supported")
        txn = self.txns.begin()
        self._active_txn = txn
        try:
            yield txn
        except BaseException:
            self._active_txn = None
            txn.abort()
            raise
        self._active_txn = None
        txn.commit()

    def explain(self, sql: str) -> str:
        """The physical plan as text (diagnostics and tests)."""
        stmt = self._parse_cached(sql)
        if not isinstance(stmt, (ast.Select, ast.RecursiveCTE)):
            raise TypeError("EXPLAIN supports queries only")
        return self._plan_cached(sql, stmt).explain()

    def size_bytes(self) -> int:
        return self.catalog.size_bytes()

    # -- query path ------------------------------------------------------------------

    def _parse_cached(self, sql: str) -> ast.Statement:
        """Prepared-statement cache.

        Disabled for the Sqlg configuration: Sqlg 1.x generated SQL with
        inlined literals, so nothing could be reused and every little
        request re-parsed and re-planned.
        """
        stmt = self._stmt_cache.get(sql)
        if stmt is None:
            charge("sql_parse")
            stmt = parse(sql)
            if self._cache_statements:
                self._stmt_cache.put(sql, stmt)
        return stmt

    def _plan_cached(self, sql: str, stmt: ast.Statement) -> Any:
        plan = self._plan_cache.lookup(sql)
        if plan is not None:
            return plan
        plan = self.planner.plan(stmt)  # charges sql_plan
        if self._cache_statements:
            self._plan_cache.store(sql, plan)
        return plan

    def _execute_query(
        self, sql: str, stmt: ast.Statement, params: Sequence[Any]
    ) -> list[tuple]:
        # readers never lock: the whole statement runs against one MVCC
        # snapshot (or the latest committed state under read-committed)
        with oracle.read_view(self.isolation_level):
            if self.execution_mode == "compiled":
                fn = self._compile_cached(sql, stmt)
                charge("compiled_exec")
                rows = fn(ExecContext(params))
            else:
                plan = self._plan_cached(sql, stmt)
                rows = list(plan.rows(ExecContext(params)))
        charge("sql_row", len(rows))
        return rows

    def _compile_cached(
        self, sql: str, stmt: ast.Statement
    ) -> "CompiledQuery":
        """Plan-to-closure compilation, cached alongside the plan."""
        # deferred import: repro.exec.sqlc compiles this package's plans,
        # so a module-level import would be circular
        from repro.exec.sqlc import compile_plan

        fn = self._closure_cache.lookup(sql)
        if fn is not None:
            return fn
        plan = self._plan_cached(sql, stmt)
        charge("closure_compile")
        fn = compile_plan(plan)
        if self._cache_statements:
            self._closure_cache.store(sql, fn)
        return fn

    # -- DML --------------------------------------------------------------------------

    def _dml_boundary(self, table: Table, key: Any) -> Transaction | None:
        """Lock and return the enclosing txn (None => autocommit)."""
        txn = self._active_txn
        if txn is None:
            txn = self.txns.begin()
            autocommit = True
        else:
            autocommit = False
        self.txns.locks.acquire(
            txn.txn_id, (table.name, key), LockMode.EXCLUSIVE
        )
        return txn if autocommit else None

    def _execute_insert(self, stmt: ast.Insert, params: Sequence[Any]) -> int:
        table = self.catalog.table(stmt.table)
        empty = Schema([])
        values = tuple(
            compile_expr(e, empty)( (), tuple(params) ) for e in stmt.values
        )
        pk = (
            values[table.column_position(table.primary_key)]
            if table.primary_key
            else None
        )
        auto = self._dml_boundary(table, pk)
        try:
            handle = table.insert(values)
            txn = auto or self._active_txn
            if txn is not None:
                txn.on_abort(lambda: table.delete(handle))
        except BaseException:
            # an autocommit txn has no enclosing transaction() manager
            # to release its row lock; abort here or leak it
            if auto is not None:
                auto.abort()
            raise
        if auto is not None:
            auto.commit()
        return 1

    def _execute_update(self, stmt: ast.Update, params: Sequence[Any]) -> int:
        table = self.catalog.table(stmt.table)
        schema = Schema.for_table(table, stmt.table)
        assign_fns = [
            (col, compile_expr(e, schema)) for col, e in stmt.assignments
        ]
        matches = self._matching(table, stmt.table, stmt.where, params)
        self._lock_rows(table, matches)
        affected = 0
        for handle, row in matches:
            changes = {
                col: fn(row, tuple(params)) for col, fn in assign_fns
            }
            auto = self._dml_boundary(table, handle)
            try:
                old = {c: row[table.column_position(c)] for c in changes}
                new_handle = table.update(handle, changes)
                txn = auto or self._active_txn
                if txn is not None:
                    txn.on_abort(
                        lambda t=table, h=new_handle, o=dict(old):
                            t.update(h, o)
                    )
            except BaseException:
                if auto is not None:
                    auto.abort()
                raise
            if auto is not None:
                auto.commit()
            affected += 1
        return affected

    def _execute_delete(self, stmt: ast.Delete, params: Sequence[Any]) -> int:
        table = self.catalog.table(stmt.table)
        matches = self._matching(table, stmt.table, stmt.where, params)
        self._lock_rows(table, matches)
        affected = 0
        for handle, row in matches:
            auto = self._dml_boundary(table, handle)
            try:
                table.delete(handle)
                txn = auto or self._active_txn
                if txn is not None:
                    # a tombstoned delete is undone in place; a physical
                    # one is re-inserted (plain insert would collide
                    # with the tombstone's surviving pk index entry)
                    txn.on_abort(
                        lambda t=table, h=handle, r=row: t.undo_delete(h, r)
                    )
            except BaseException:
                if auto is not None:
                    auto.abort()
                raise
            if auto is not None:
                auto.commit()
            affected += 1
        return affected

    def _lock_rows(
        self, table: Table, matches: list[tuple[Any, tuple]]
    ) -> None:
        """Pre-acquire all row locks of a multi-row DML in sorted order.

        Inside an explicit transaction the per-row ``_dml_boundary``
        acquisitions would otherwise follow scan order, and two
        transactions scanning in different orders could deadlock.
        """
        if self._active_txn is None or len(matches) < 2:
            return
        self.txns.locks.acquire_many(
            self._active_txn.txn_id,
            [(table.name, handle) for handle, _ in matches],
            LockMode.EXCLUSIVE,
        )

    def _matching(
        self,
        table: Table,
        binding: str,
        where: ast.Expr | None,
        params: Sequence[Any],
    ) -> list[tuple[Any, tuple]]:
        """(handle, row) pairs matching ``where``, via index when possible."""
        schema = Schema.for_table(table, binding)
        conjuncts = self._where_conjuncts(where)
        index_pick = None
        for i, conjunct in enumerate(conjuncts):
            pick = self.planner._index_eq_candidate(conjunct, binding, table)
            if pick is not None:
                index_pick = (i, pick)
                break
        params_t = tuple(params)
        if index_pick is not None:
            i, (column, key_expr) = index_pick
            key = compile_expr(key_expr, Schema([]))((), params_t)
            residual = conjuncts[:i] + conjuncts[i + 1 :]
            candidates = [
                (h, table.fetch(h)) for h in table.lookup(column, key)
            ]
        else:
            residual = conjuncts
            candidates = list(table.scan())
        if not residual:
            return candidates
        fns = [compile_expr(c, schema) for c in residual]
        return [
            (h, row)
            for h, row in candidates
            if all(fn(row, params_t) for fn in fns)
        ]

    @staticmethod
    def _where_conjuncts(where: ast.Expr | None) -> list[ast.Expr]:
        if where is None:
            return []
        if isinstance(where, ast.BinaryOp) and where.op == "AND":
            return Database._where_conjuncts(
                where.left
            ) + Database._where_conjuncts(where.right)
        return [where]

    # -- DDL --------------------------------------------------------------------------

    def _execute_create_table(self, stmt: ast.CreateTable) -> int:
        columns = [
            (c.name, column_type_from_sql(c.type_name)) for c in stmt.columns
        ]
        primary = next(
            (c.name for c in stmt.columns if c.primary_key), None
        )
        self.catalog.create_table(stmt.name, columns, primary_key=primary)
        self.wal.append(
            json.dumps(
                [
                    "create_table",
                    stmt.name.lower(),
                    [[c, t.value] for c, t in columns],
                    primary,
                ]
            ).encode()
        )
        self.wal.commit()
        self._invalidate_plans()
        return 0

    def _execute_create_index(self, stmt: ast.CreateIndex) -> int:
        self.catalog.table(stmt.table).create_index(stmt.column, stmt.method)
        self.wal.append(
            json.dumps(
                ["create_index", stmt.table.lower(), stmt.column, stmt.method]
            ).encode()
        )
        self.wal.commit()
        self._invalidate_plans()
        return 0

    def _invalidate_plans(self) -> None:
        self._plan_cache.bump_epoch()
        self._closure_cache.bump_epoch()

    # -- crash recovery --------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        wal: WriteAheadLog,
        *,
        storage: str = "row",
        transitive_support: bool = False,
        name: str = "recovered",
    ) -> "Database":
        """Rebuild a database from a write-ahead log.

        Replays every *durable* record (DDL and logical row changes) into
        a fresh instance; appended-but-unsynced records are lost, as on a
        real crash.  ``storage``/``transitive_support`` must match the
        original configuration (a real system reads them from the control
        file).
        """
        db = cls(
            storage,
            name=name,
            transitive_support=transitive_support,
        )
        from repro.storage.codec import ColumnType

        for raw in wal.durable_records():
            record = json.loads(raw.decode("utf-8"))
            op = record[0]
            if op == "create_table":
                _op, tname, columns, primary = record
                db.catalog.create_table(
                    tname,
                    [(c, ColumnType(t)) for c, t in columns],
                    primary_key=primary,
                )
                # re-log so the recovered instance is itself recoverable
                db.wal.append(raw)
            elif op == "create_index":
                _op, tname, column, method = record
                db.catalog.table(tname).create_index(column, method)
                db.wal.append(raw)
            elif op == "insert":
                _op, tname, row = record
                db.catalog.table(tname).insert(tuple(row))
            elif op == "update":
                _op, tname, (old_row, new_row) = record
                table = db.catalog.table(tname)
                handle = _find_row(table, tuple(old_row))
                changes = {
                    column: value
                    for column, value in zip(table.column_names, new_row)
                }
                table.update(handle, changes)
            elif op == "delete":
                _op, tname, row = record
                table = db.catalog.table(tname)
                table.delete(_find_row(table, tuple(row)))
            else:
                raise ValueError(f"unknown WAL record {op!r}")
        db.wal.commit()
        return db

    # -- graph-aware transitivity (Virtuoso) ----------------------------------------

    def _shortest_path_len(
        self,
        table_name: str,
        src_col: str,
        dst_col: str,
        source: Any,
        target: Any,
    ) -> int | None:
        """Level-synchronous BFS over an edge table using its index.

        This is Virtuoso's transitive derived-table evaluation: frontier
        expansion from the source only (the engine does not build a
        reverse frontier), with early exit when the target appears.  The
        per-edge cost is an index probe plus a positional column fetch —
        much cheaper than the recursive-CTE join pipeline PostgreSQL must
        run, yet far more than Neo4j's pointer-chasing bidirectional
        shortestPath, exactly the paper's three-way ordering.
        """
        if source == target:
            return 0
        table = self.catalog.table(table_name)
        seen = {source}
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            if depth > 64:
                return None
            next_frontier: list[Any] = []
            for vertex in frontier:
                charge("tuple_cpu")
                for handle in table.lookup(src_col, vertex):
                    neighbour = table.fetch_values(handle, [dst_col])[0]
                    charge("transitive_row")
                    if neighbour == target:
                        return depth
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return None


def _find_row(table: Table, row: tuple) -> object:
    """Locate a row's handle during WAL replay (prefers the PK index)."""
    if table.primary_key is not None:
        pk_value = row[table.column_position(table.primary_key)]
        for handle in table.lookup(table.primary_key, pk_value):
            if table.fetch(handle) == row:
                return handle
    for handle, current in table.scan():
        if current == row:
            return handle
    raise KeyError(f"row {row!r} not found in {table.name!r} during replay")
