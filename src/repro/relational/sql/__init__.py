"""SQL front end: lexer, AST, parser, planner, and executor."""

from repro.relational.sql.lexer import SqlLexError, tokenize
from repro.relational.sql.parser import SqlParseError, parse

__all__ = ["tokenize", "parse", "SqlLexError", "SqlParseError"]
