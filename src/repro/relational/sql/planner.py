"""Rule-based planner: AST -> physical plan.

Access-path rules (deliberately simple, in the spirit of the paper's
"indexes only on vertex IDs" setup):

* equality predicate on an indexed column of the base table -> IndexEqScan
* join with an equality onto an indexed inner column -> IndexNLJoin
* other equality joins -> HashJoin; anything else -> NLJoin
* single-binding WHERE conjuncts are pushed below joins

Join order: when statistics are available (``ANALYZE``) and every join is
an inner equi-join over base tables, the planner reorders greedily —
start from the relation with the smallest estimated filtered
cardinality, then repeatedly attach the relation whose System R join
estimate is smallest.  Ties (and statistics-free planning) preserve the
textual order of the FROM clause, so plans stay deterministic.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import replace
from typing import Any

from repro.relational.catalog import Catalog
from repro.relational.sql import ast
from repro.relational.sql.executor import (
    Aggregate,
    Distinct,
    ExecContext,
    ExprFn,
    Filter,
    HashJoin,
    IndexEqScan,
    IndexNLJoin,
    Limit,
    MaterializedScan,
    NLJoin,
    PlanNode,
    VectorizedIndexNLJoin,
    Project,
    RowsHolder,
    Schema,
    SeqScan,
    SingleRow,
    Sort,
    SqlRuntimeError,
    compile_expr,
)
from repro.simclock.ledger import charge
from repro.stats import ColumnStats, Selectivity, SqlStatistics
from repro.stats.selectivity import DEFAULT_ROWS, RANGE_SELECTIVITY

AGGREGATE_FUNCS = {"count", "sum", "min", "max", "avg"}

_RANGE_OPS = {"<", "<=", ">", ">="}

MAX_RECURSION_ITERATIONS = 256
MAX_RECURSION_ROWS = 2_000_000


class PlanError(Exception):
    pass


def _conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _column_refs(expr: ast.Expr) -> list[ast.ColumnRef]:
    refs: list[ast.ColumnRef] = []

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.ColumnRef):
            refs.append(node)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)
        elif isinstance(node, ast.IsNull):
            walk(node.operand)
        elif isinstance(node, ast.InList):
            walk(node.needle)
            for item in node.items:
                walk(item)
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return refs


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if expr.name in AGGREGATE_FUNCS:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.needle) or any(
            _contains_aggregate(i) for i in expr.items
        )
    return False


def _resolvable(expr: ast.Expr, schema: Schema) -> bool:
    try:
        for ref in _column_refs(expr):
            schema.resolve(ref.table, ref.column)
        return True
    except SqlRuntimeError:
        return False


def _is_constant(expr: ast.Expr) -> bool:
    """True when the expression references no columns."""
    return not _column_refs(expr)


def _select_exprs(select: ast.Select) -> Iterator[ast.Expr]:
    for item in select.items:
        yield item.expr
    if select.where is not None:
        yield select.where
    for join in select.joins:
        yield join.condition
    for expr in select.group_by:
        yield expr
    for order in select.order_by:
        yield order.expr


def _needed_columns(select: ast.Select, binding: str, table: Any) -> list[str]:
    """Columns of ``binding`` the query references (projection pushdown).

    ``*`` (bare or qualified to this binding) means every column.
    """
    needed: set[str] = set()
    for expr in _select_exprs(select):
        for ref in _column_refs(expr):
            if ref.column == "*":
                if ref.table in (None, binding):
                    return list(table.column_names)
                continue
            if ref.table == binding or (
                ref.table is None and ref.column in table.column_names
            ):
                needed.add(ref.column)
    return [c for c in table.column_names if c in needed]


class _CTEBinding:
    """A named transient relation available during CTE planning."""

    def __init__(self, columns: tuple[str, ...], holder: RowsHolder) -> None:
        self.columns = columns
        self.holder = holder


class Planner:
    def __init__(
        self,
        catalog: Catalog,
        funcs: dict[str, Callable[..., Any]] | None = None,
        stats: SqlStatistics | None = None,
    ) -> None:
        self.catalog = catalog
        self.funcs = funcs or {}
        self.stats = stats
        self.reorder_enabled = True

    # -- entry points --------------------------------------------------------

    def plan(self, stmt: ast.Select | ast.RecursiveCTE) -> PlanNode:
        charge("sql_plan")
        if isinstance(stmt, ast.Select):
            plan = self.plan_select(stmt)
        elif isinstance(stmt, ast.RecursiveCTE):
            plan = self.plan_recursive(stmt)
        else:
            raise PlanError(f"cannot plan {type(stmt).__name__}")
        self._annotate(plan)
        return plan

    # -- scans -----------------------------------------------------------------

    def _base_plan(
        self,
        ref: ast.TableRef,
        pending: list[ast.Expr],
        ctes: dict[str, _CTEBinding],
        select: ast.Select,
    ) -> PlanNode:
        binding = ref.binding
        if ref.name in ctes:
            cte = ctes[ref.name]
            return MaterializedScan(cte.holder, binding, cte.columns)
        table = self.catalog.table(ref.name)
        needed = (
            _needed_columns(select, binding, table)
            if table.storage == "column"
            else None
        )
        # look for an index-usable equality conjunct on this binding
        for i, conjunct in enumerate(pending):
            candidate = self._index_eq_candidate(conjunct, binding, table)
            if candidate is not None:
                column, key_expr = candidate
                key_fn = compile_expr(key_expr, Schema([]), self.funcs)
                pending.pop(i)
                return IndexEqScan(table, binding, column, key_fn, needed)
        return SeqScan(table, binding)

    def _index_eq_candidate(
        self, conjunct: ast.Expr, binding: str, table: Any
    ) -> tuple[str, ast.Expr] | None:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        for col_side, key_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(col_side, ast.ColumnRef)
                and (col_side.table in (None, binding))
                and col_side.column in table.column_names
                and table.has_index(col_side.column)
                and _is_constant(key_side)
            ):
                return col_side.column, key_side
        return None

    # -- select ------------------------------------------------------------------

    def plan_select(
        self,
        select: ast.Select,
        ctes: dict[str, _CTEBinding] | None = None,
    ) -> PlanNode:
        ctes = ctes or {}
        select = self._maybe_reorder(select, ctes)
        pending = _conjuncts(select.where)

        if select.from_table is None:
            plan: PlanNode = SingleRow()
        else:
            plan = self._base_plan(select.from_table, pending, ctes, select)

        plan = self._apply_resolvable(plan, pending)

        for join in select.joins:
            plan = self._plan_join(plan, join, pending, ctes, select)
            plan = self._apply_resolvable(plan, pending)

        if pending:
            raise PlanError(
                f"unresolvable WHERE predicates: {pending!r}"
            )

        has_aggregates = any(
            _contains_aggregate(item.expr) for item in select.items
        )
        if has_aggregates or select.group_by:
            plan, out_schema = self._plan_aggregate(plan, select)
            plan = self._finish(plan, select, projected=True)
            return plan

        # plain projection
        exprs: list[ExprFn] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expr, ast.ColumnRef) and item.expr.column == "*":
                star_binding = item.expr.table
                for pos, (binding, column) in enumerate(plan.schema.columns):
                    if star_binding is None or binding == star_binding:
                        exprs.append(
                            (lambda p: lambda row, params: row[p])(pos)
                        )
                        names.append(column)
                continue
            exprs.append(compile_expr(item.expr, plan.schema, self.funcs))
            names.append(item.alias or _default_name(item.expr, len(names)))

        # ORDER BY may reference pre-projection columns; prefer that schema
        pre_sort = None
        if select.order_by and all(
            _resolvable(o.expr, plan.schema) for o in select.order_by
        ):
            pre_sort = Sort(
                plan,
                [
                    compile_expr(o.expr, plan.schema, self.funcs)
                    for o in select.order_by
                ],
                [o.descending for o in select.order_by],
            )
            plan = pre_sort

        plan = Project(plan, exprs, names)

        if select.distinct:
            plan = Distinct(plan)

        if select.order_by and pre_sort is None:
            plan = Sort(
                plan,
                [
                    compile_expr(o.expr, plan.schema, self.funcs)
                    for o in select.order_by
                ],
                [o.descending for o in select.order_by],
            )

        if select.limit is not None:
            plan = Limit(plan, select.limit)
        return plan

    def _apply_resolvable(
        self, plan: PlanNode, pending: list[ast.Expr]
    ) -> PlanNode:
        applicable = [c for c in pending if _resolvable(c, plan.schema)]
        for conjunct in applicable:
            pending.remove(conjunct)
        if applicable:
            predicate = _and_all(applicable, plan.schema, self.funcs)
            filtered = Filter(plan, predicate)
            if isinstance(plan, (SeqScan, IndexEqScan)):
                selectivity = 1.0
                for conjunct in applicable:
                    selectivity *= self._conjunct_selectivity(
                        conjunct, plan.table
                    )
                filtered.selectivity = min(max(selectivity, 1e-6), 1.0)
            return filtered
        return plan

    def _plan_join(
        self,
        outer: PlanNode,
        join: ast.Join,
        pending: list[ast.Expr],
        ctes: dict[str, _CTEBinding],
        select: ast.Select,
    ) -> PlanNode:
        binding = join.table.binding
        condition_conjuncts = _conjuncts(join.condition)
        is_cte = join.table.name in ctes
        table = None if is_cte else self.catalog.table(join.table.name)

        # try index nested-loop: equality with inner indexed column
        if table is not None:
            for i, conjunct in enumerate(condition_conjuncts):
                pick = self._join_eq_pick(conjunct, outer.schema, binding, table)
                if pick is None:
                    continue
                inner_column, outer_key_expr = pick
                if not table.has_index(inner_column):
                    continue
                outer_key_fn = compile_expr(
                    outer_key_expr, outer.schema, self.funcs
                )
                residual_conjuncts = (
                    condition_conjuncts[:i] + condition_conjuncts[i + 1 :]
                )
                joined_schema = outer.schema.concat(
                    Schema.for_table(table, binding)
                )
                residual = (
                    _and_all(residual_conjuncts, joined_schema, self.funcs)
                    if residual_conjuncts
                    else None
                )
                if table.storage == "column":
                    return VectorizedIndexNLJoin(
                        outer,
                        table,
                        binding,
                        inner_column,
                        outer_key_fn,
                        join.kind,
                        residual,
                        _needed_columns(select, binding, table),
                    )
                return IndexNLJoin(
                    outer,
                    table,
                    binding,
                    inner_column,
                    outer_key_fn,
                    join.kind,
                    residual,
                )

        # inner plan: scan (table or CTE)
        if is_cte:
            cte = ctes[join.table.name]
            inner: PlanNode = MaterializedScan(cte.holder, binding, cte.columns)
        else:
            inner = SeqScan(table, binding)  # type: ignore[arg-type]

        # hash join on any equality with one side per input
        for i, conjunct in enumerate(condition_conjuncts):
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            for left_expr, right_expr in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if _resolvable(left_expr, outer.schema) and _resolvable(
                    right_expr, inner.schema
                ):
                    residual_conjuncts = (
                        condition_conjuncts[:i] + condition_conjuncts[i + 1 :]
                    )
                    joined_schema = outer.schema.concat(inner.schema)
                    residual = (
                        _and_all(residual_conjuncts, joined_schema, self.funcs)
                        if residual_conjuncts
                        else None
                    )
                    return HashJoin(
                        outer,
                        inner,
                        compile_expr(left_expr, outer.schema, self.funcs),
                        compile_expr(right_expr, inner.schema, self.funcs),
                        join.kind,
                        residual,
                    )

        joined_schema = outer.schema.concat(inner.schema)
        predicate = _and_all(condition_conjuncts, joined_schema, self.funcs)
        return NLJoin(outer, inner, predicate, join.kind)

    def _join_eq_pick(
        self,
        conjunct: ast.Expr,
        outer_schema: Schema,
        inner_binding: str,
        table: Any,
    ) -> tuple[str, ast.Expr] | None:
        """Match ``outer_expr = inner_binding.col`` (either side)."""
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        for col_side, key_side in (
            (conjunct.right, conjunct.left),
            (conjunct.left, conjunct.right),
        ):
            if (
                isinstance(col_side, ast.ColumnRef)
                and col_side.table == inner_binding
                and col_side.column in table.column_names
                and _resolvable(key_side, outer_schema)
            ):
                return col_side.column, key_side
        return None

    # -- cost-based join reordering ----------------------------------------------

    def _maybe_reorder(
        self, select: ast.Select, ctes: dict[str, _CTEBinding]
    ) -> ast.Select:
        """Greedy smallest-intermediate-first reordering of inner joins.

        Bails out (returning the select unchanged, i.e. textual order)
        whenever reordering could change semantics or column order: outer
        joins, CTE sources, bare ``SELECT *``, duplicate bindings, or
        unqualified column references that do not resolve uniquely.
        """
        if not self.reorder_enabled or not select.joins:
            return select
        if select.from_table is None:
            return select
        if any(join.kind != "inner" for join in select.joins):
            return select
        refs = [select.from_table] + [join.table for join in select.joins]
        if any(ref.name in ctes for ref in refs):
            return select
        for item in select.items:
            # a bare `*` takes its column order from the relation order
            if (
                isinstance(item.expr, ast.ColumnRef)
                and item.expr.column == "*"
                and item.expr.table is None
            ):
                return select
        bindings = [ref.binding for ref in refs]
        if len(set(bindings)) != len(bindings):
            return select
        try:
            tables = {
                ref.binding: self.catalog.table(ref.name) for ref in refs
            }
        except Exception:
            return select

        # pool: WHERE conjuncts + every join condition's conjuncts
        pool = _conjuncts(select.where)
        for join in select.joins:
            pool.extend(_conjuncts(join.condition))

        # which bindings does each conjunct touch?  None -> bail out.
        conjunct_bindings: list[frozenset[str] | None] = []
        for conjunct in pool:
            touched: set[str] = set()
            ok = True
            for ref in _column_refs(conjunct):
                if ref.column == "*":
                    ok = False
                    break
                if ref.table is not None:
                    if ref.table not in tables:
                        ok = False
                        break
                    touched.add(ref.table)
                    continue
                owners = [
                    b
                    for b in bindings
                    if ref.column in tables[b].column_names
                ]
                if len(owners) != 1:
                    ok = False
                    break
                touched.add(owners[0])
            if not ok:
                return select
            conjunct_bindings.append(frozenset(touched))

        singles: list[ast.Expr] = []
        multis: list[tuple[ast.Expr, frozenset[str]]] = []
        single_by_binding: dict[str, list[ast.Expr]] = {b: [] for b in bindings}
        for conjunct, touched in zip(pool, conjunct_bindings):
            if len(touched) <= 1:
                singles.append(conjunct)
                if touched:
                    single_by_binding[next(iter(touched))].append(conjunct)
            else:
                multis.append((conjunct, touched))

        base_rows = {
            b: self._filtered_rows(tables[b], b, single_by_binding[b])
            for b in bindings
        }

        # start with the smallest filtered relation; strict < keeps ties
        # in textual order (and makes stats-free planning a no-op)
        start = bindings[0]
        for b in bindings[1:]:
            if base_rows[b] < base_rows[start]:
                start = b

        placed = {start}
        order = [start]
        cur_rows = base_rows[start]
        attached: dict[str, list[ast.Expr]] = {b: [] for b in bindings}
        unused = list(multis)
        remaining = [b for b in bindings if b != start]
        while remaining:
            best: str | None = None
            best_rows = 0.0
            best_connected = False
            for b in remaining:
                usable = [
                    c
                    for c, touched in unused
                    if b in touched and touched <= placed | {b}
                ]
                rows = self._join_step_estimate(
                    cur_rows, base_rows[b], tables, usable
                )
                connected = bool(usable)
                # connected candidates always beat cross products
                if best is None or (connected, -rows) > (
                    best_connected,
                    -best_rows,
                ):
                    best, best_rows, best_connected = b, rows, connected
            assert best is not None
            placed.add(best)
            order.append(best)
            cur_rows = best_rows
            still_unused = []
            for c, touched in unused:
                if touched <= placed:
                    attached[best].append(c)
                else:
                    still_unused.append((c, touched))
            unused = still_unused
            remaining.remove(best)

        if order == bindings:
            return select

        ref_by_binding = {ref.binding: ref for ref in refs}
        new_joins = []
        for b in order[1:]:
            condition = _and_expr(attached[b])
            new_joins.append(ast.Join(ref_by_binding[b], condition, "inner"))
        return replace(
            select,
            from_table=ref_by_binding[order[0]],
            joins=tuple(new_joins),
            where=_and_expr(singles) if singles else None,
        )

    # -- cardinality estimation ---------------------------------------------------

    def _table_rows(self, table: Any) -> float:
        if self.stats is not None:
            table_stats = self.stats.table(table.name)
            if table_stats is not None:
                return float(max(table_stats.row_count, 1))
        live = len(table)
        return float(live) if live else DEFAULT_ROWS

    def _distinct(self, table: Any, column: str) -> int | None:
        if self.stats is not None:
            table_stats = self.stats.table(table.name)
            if table_stats is not None:
                distinct = table_stats.distinct(column)
                if distinct:
                    return distinct
        if table.has_index(column):
            # indexed columns are keys or near-keys in this schema
            return max(int(self._table_rows(table)) // 2, 1)
        return None

    def _filtered_rows(
        self, table: Any, binding: str, conjuncts: list[ast.Expr]
    ) -> float:
        rows = self._table_rows(table)
        for conjunct in conjuncts:
            rows *= self._conjunct_selectivity(conjunct, table)
        return max(rows, 1.0)

    def _conjunct_selectivity(self, conjunct: ast.Expr, table: Any) -> float:
        if isinstance(conjunct, ast.InList):
            if isinstance(conjunct.needle, ast.ColumnRef):
                eq = Selectivity.equality(
                    self._distinct(table, conjunct.needle.column)
                )
                return min(len(conjunct.items) * eq, 1.0)
            return 0.5
        if not isinstance(conjunct, ast.BinaryOp):
            return 1.0
        for col_side, key_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(col_side, ast.ColumnRef)
                and col_side.column in table.column_names
                and _is_constant(key_side)
            ):
                distinct = self._distinct(table, col_side.column)
                if conjunct.op == "=":
                    return Selectivity.equality(distinct)
                if conjunct.op in ("<>", "!="):
                    return Selectivity.inequality(distinct)
                if conjunct.op in _RANGE_OPS:
                    value = (
                        key_side.value
                        if isinstance(key_side, ast.Literal)
                        else None  # Param: value unknown at plan time
                    )
                    return Selectivity.range(
                        self._column_stats(table, col_side.column),
                        conjunct.op,
                        value,
                    )
        return 1.0

    def _column_stats(
        self, table: Any, column: str
    ) -> ColumnStats | None:
        if self.stats is None:
            return None
        table_stats = self.stats.table(table.name)
        if table_stats is None:
            return None
        return table_stats.columns.get(column)

    def _join_step_estimate(
        self,
        cur_rows: float,
        next_rows: float,
        tables: dict[str, Any],
        conjuncts: list[ast.Expr],
    ) -> float:
        if not conjuncts:
            return max(cur_rows * next_rows, 1.0)
        rows = cur_rows * next_rows
        for conjunct in conjuncts:
            rows *= self._join_conjunct_selectivity(conjunct, tables)
        return max(rows, 1.0)

    def _join_conjunct_selectivity(
        self, conjunct: ast.Expr, tables: dict[str, Any]
    ) -> float:
        if not isinstance(conjunct, ast.BinaryOp):
            return 1.0
        if conjunct.op == "=":
            distincts = []
            rows = []
            for side in (conjunct.left, conjunct.right):
                if not isinstance(side, ast.ColumnRef):
                    continue
                table = tables.get(side.table) if side.table else None
                if table is None:
                    continue
                rows.append(self._table_rows(table))
                d = self._distinct(table, side.column)
                if d:
                    distincts.append(d)
            if distincts:
                return 1.0 / max(distincts)
            if rows:
                # FK-join assumption: key side is unique
                return 1.0 / max(max(rows), 1.0)
            return 0.1
        if conjunct.op in _RANGE_OPS:
            return RANGE_SELECTIVITY
        return 1.0

    # -- plan annotation ----------------------------------------------------------

    def _annotate(self, node: PlanNode) -> None:
        """Attach ``est_rows`` to every plan node, children first."""
        for child in node._children():
            self._annotate(child)
        node.est_rows = self._node_estimate(node)

    def _node_estimate(self, node: PlanNode) -> float:
        if isinstance(node, SingleRow):
            return 1.0
        if isinstance(node, SeqScan):
            return self._table_rows(node.table)
        if isinstance(node, IndexEqScan):
            return max(
                self._table_rows(node.table)
                * Selectivity.equality(
                    self._distinct(node.table, node.column)
                ),
                1.0,
            )
        if isinstance(node, MaterializedScan):
            return 64.0  # CTE working set: unknowable statically
        if isinstance(node, (IndexNLJoin, VectorizedIndexNLJoin)):
            outer = node.outer.est_rows or 1.0
            per_probe = self._table_rows(node.table) * Selectivity.equality(
                self._distinct(node.table, node.inner_column)
            )
            est = max(outer * per_probe, 1.0)
            return max(est, outer) if node.kind == "left" else est
        if isinstance(node, HashJoin):
            left = node.left.est_rows or 1.0
            right = node.right.est_rows or 1.0
            est = max(left, right)  # FK-join assumption
            return max(est, left) if node.kind == "left" else est
        if isinstance(node, NLJoin):
            outer = node.outer.est_rows or 1.0
            inner = node.inner.est_rows or 1.0
            factor = RANGE_SELECTIVITY if node.predicate is not None else 1.0
            est = max(outer * inner * factor, 1.0)
            return max(est, outer) if node.kind == "left" else est
        if isinstance(node, Filter):
            factor = (
                node.selectivity
                if node.selectivity is not None
                else RANGE_SELECTIVITY
            )
            return max((node.child.est_rows or 1.0) * factor, 1.0)
        if isinstance(node, Aggregate):
            if not node.group_fns:
                return 1.0
            return max((node.child.est_rows or 1.0) ** 0.5, 1.0)
        if isinstance(node, Limit):
            return max(min(node.child.est_rows or 1.0, node.limit), 0.0)
        if isinstance(node, RecursiveCTEPlan):
            return node.body.est_rows or DEFAULT_ROWS
        children = node._children()
        if children:
            return children[0].est_rows or 1.0
        return DEFAULT_ROWS

    # -- aggregation -----------------------------------------------------------------

    def _plan_aggregate(
        self, plan: PlanNode, select: ast.Select
    ) -> tuple[PlanNode, Schema]:
        group_exprs = list(select.group_by)
        group_fns = [
            compile_expr(e, plan.schema, self.funcs) for e in group_exprs
        ]
        agg_specs: list[tuple[str, ExprFn | None, bool]] = []
        out_names: list[str] = []
        item_positions: list[int] = []

        # group columns occupy positions 0..len(group)-1 in aggregate output
        for item in select.items:
            if item.expr in group_exprs:
                pos = group_exprs.index(item.expr)
                item_positions.append(pos)
                out_names_candidate = item.alias or _default_name(
                    item.expr, len(out_names)
                )
                out_names.append(out_names_candidate)
            elif isinstance(item.expr, ast.FuncCall) and (
                item.expr.name in AGGREGATE_FUNCS
            ):
                func = item.expr
                arg_fn = None
                if not func.star:
                    if len(func.args) != 1:
                        raise PlanError(
                            f"aggregate {func.name} takes one argument"
                        )
                    arg_fn = compile_expr(
                        func.args[0], plan.schema, self.funcs
                    )
                pos = len(group_exprs) + len(agg_specs)
                agg_specs.append((func.name, arg_fn, func.distinct))
                item_positions.append(pos)
                out_names.append(item.alias or func.name)
            else:
                raise PlanError(
                    f"select item {item.expr!r} must be an aggregate or "
                    f"appear in GROUP BY"
                )

        group_names = [
            _default_name(e, i) for i, e in enumerate(group_exprs)
        ]
        agg_names = [spec[0] for spec in agg_specs]
        aggregate = Aggregate(
            plan, group_fns, agg_specs, group_names + agg_names
        )

        # project aggregate output into select-item order
        exprs = [
            (lambda p: lambda row, params: row[p])(pos)
            for pos in item_positions
        ]
        projected = Project(aggregate, exprs, out_names)
        return projected, projected.schema

    def _finish(
        self, plan: PlanNode, select: ast.Select, projected: bool
    ) -> PlanNode:
        if select.distinct:
            plan = Distinct(plan)
        if select.order_by:
            plan = Sort(
                plan,
                [
                    compile_expr(o.expr, plan.schema, self.funcs)
                    for o in select.order_by
                ],
                [o.descending for o in select.order_by],
            )
        if select.limit is not None:
            plan = Limit(plan, select.limit)
        return plan

    # -- recursive CTE ------------------------------------------------------------

    def plan_recursive(self, cte: ast.RecursiveCTE) -> PlanNode:
        working = RowsHolder()
        result = RowsHolder()
        bindings_step = {cte.name: _CTEBinding(cte.columns, working)}
        bindings_body = {cte.name: _CTEBinding(cte.columns, result)}
        base_plan = self.plan_select(cte.base)
        step_plan = self.plan_select(cte.step, bindings_step)
        body_plan = self.plan_select(cte.body, bindings_body)
        if len(base_plan.schema) != len(cte.columns):
            raise PlanError(
                f"CTE {cte.name!r} declares {len(cte.columns)} columns but "
                f"its base query produces {len(base_plan.schema)}"
            )
        return RecursiveCTEPlan(
            cte.name,
            base_plan,
            step_plan,
            body_plan,
            working,
            result,
            distinct=cte.distinct,
        )


class RecursiveCTEPlan(PlanNode):
    """Semi-naive evaluation of ``WITH RECURSIVE`` (PostgreSQL semantics).

    The step query sees only the previous iteration's *delta*; with
    ``UNION`` (distinct) rows are deduplicated globally, which guarantees
    termination on cyclic data.
    """

    def __init__(
        self,
        name: str,
        base: PlanNode,
        step: PlanNode,
        body: PlanNode,
        working: RowsHolder,
        result: RowsHolder,
        distinct: bool,
    ) -> None:
        self.name = name
        self.base = base
        self.step = step
        self.body = body
        self.working = working
        self.result = result
        self.distinct = distinct
        self.schema = body.schema

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        seen: set[tuple] = set()
        all_rows: list[tuple] = []

        def absorb(rows: list[tuple]) -> list[tuple]:
            if not self.distinct:
                all_rows.extend(rows)
                return rows
            fresh = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    fresh.append(row)
            all_rows.extend(fresh)
            return fresh

        delta = absorb(list(self.base.rows(ctx)))
        iterations = 0
        while delta:
            iterations += 1
            if iterations > MAX_RECURSION_ITERATIONS:
                raise SqlRuntimeError(
                    f"recursive CTE {self.name!r} exceeded "
                    f"{MAX_RECURSION_ITERATIONS} iterations"
                )
            if len(all_rows) > MAX_RECURSION_ROWS:
                raise SqlRuntimeError(
                    f"recursive CTE {self.name!r} exceeded "
                    f"{MAX_RECURSION_ROWS} rows"
                )
            self.working.rows = delta
            delta = absorb(list(self.step.rows(ctx)))
        self.result.rows = all_rows
        yield from self.body.rows(ctx)

    def _children(self) -> list[PlanNode]:
        return [self.base, self.step, self.body]


def _default_name(expr: ast.Expr, position: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.column
    if isinstance(expr, ast.FuncCall):
        return expr.name
    return f"col{position}"


def _and_expr(conjuncts: list[ast.Expr]) -> ast.Expr:
    """Rebuild an AND tree (``TRUE`` for an empty conjunction)."""
    if not conjuncts:
        return ast.Literal(True)
    expr = conjuncts[0]
    for conjunct in conjuncts[1:]:
        expr = ast.BinaryOp("AND", expr, conjunct)
    return expr


def _and_all(
    conjuncts: list[ast.Expr],
    schema: Schema,
    funcs: dict[str, Callable[..., Any]],
) -> ExprFn:
    fns = [compile_expr(c, schema, funcs) for c in conjuncts]
    if len(fns) == 1:
        return fns[0]

    def run(row: tuple, params: tuple) -> bool:
        return all(fn(row, params) for fn in fns)

    return run
