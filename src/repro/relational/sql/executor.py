"""Physical operators and expression compilation (iterator model).

Rows are plain tuples.  A :class:`Schema` maps ``binding.column`` names to
tuple positions; expressions compile to closures over ``(row, params)``.

NULL semantics are simplified two-valued logic: comparisons involving NULL
are false, arithmetic with NULL yields NULL, ``IS [NOT] NULL`` behaves as
in SQL.  This is documented engine behaviour and consistent across every
connector, so it does not distort cross-system comparisons.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from typing import Any

from repro.simclock.ledger import charge
from repro.relational.sql import ast
from repro.relational.table import Table


class SqlRuntimeError(Exception):
    pass


class ExecContext:
    """Per-execution state: statement parameters."""

    __slots__ = ("params",)

    def __init__(self, params: Sequence[Any] = ()) -> None:
        self.params = tuple(params)


class Schema:
    """Ordered (binding, column) pairs describing operator output rows."""

    def __init__(self, columns: Sequence[tuple[str | None, str]]) -> None:
        self.columns = list(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def resolve(self, table: str | None, column: str) -> int:
        matches = [
            i
            for i, (binding, name) in enumerate(self.columns)
            if name == column and (table is None or binding == table)
        ]
        if not matches:
            target = f"{table}.{column}" if table else column
            raise SqlRuntimeError(f"unknown column {target!r}")
        if len(matches) > 1:
            target = f"{table}.{column}" if table else column
            raise SqlRuntimeError(f"ambiguous column {target!r}")
        return matches[0]

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.columns + other.columns)

    def names(self) -> list[str]:
        return [name for _, name in self.columns]

    @staticmethod
    def for_table(table: Table, binding: str) -> "Schema":
        return Schema([(binding, c) for c in table.column_names])


ExprFn = Callable[[tuple, tuple], Any]


def compile_expr(
    expr: ast.Expr,
    schema: Schema,
    funcs: dict[str, Callable[..., Any]] | None = None,
) -> ExprFn:
    """Compile an expression into ``fn(row, params) -> value``.

    ``funcs`` maps scalar built-in names (e.g. the Virtuoso-like engine's
    ``shortest_path_len``) to Python callables receiving evaluated
    arguments.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row, params: value
    if isinstance(expr, ast.Param):
        index = expr.index
        return lambda row, params: params[index]
    if isinstance(expr, ast.ColumnRef):
        pos = schema.resolve(expr.table, expr.column)
        return lambda row, params: row[pos]
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand, schema, funcs)
        if expr.op == "NOT":
            return lambda row, params: not operand(row, params)
        if expr.op == "-":
            return lambda row, params: _negate(operand(row, params))
        raise SqlRuntimeError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, schema, funcs)
    if isinstance(expr, ast.IsNull):
        operand = compile_expr(expr.operand, schema, funcs)
        if expr.negated:
            return lambda row, params: operand(row, params) is not None
        return lambda row, params: operand(row, params) is None
    if isinstance(expr, ast.InList):
        needle = compile_expr(expr.needle, schema, funcs)
        items = [compile_expr(e, schema, funcs) for e in expr.items]
        negated = expr.negated

        def run_in(row: tuple, params: tuple) -> bool:
            value = needle(row, params)
            if value is None:
                return False
            found = any(value == item(row, params) for item in items)
            return not found if negated else found

        return run_in
    if isinstance(expr, ast.FuncCall):
        if funcs is not None and expr.name in funcs:
            fn = funcs[expr.name]
            arg_fns = [compile_expr(a, schema, funcs) for a in expr.args]
            return lambda row, params: fn(
                *(arg(row, params) for arg in arg_fns)
            )
        raise SqlRuntimeError(
            f"function {expr.name!r} is not valid in this context"
        )
    raise SqlRuntimeError(f"cannot compile expression {expr!r}")


def _negate(value: Any) -> Any:
    return None if value is None else -value


def _compile_binary(
    expr: ast.BinaryOp,
    schema: Schema,
    funcs: dict[str, Callable[..., Any]] | None = None,
) -> ExprFn:
    left = compile_expr(expr.left, schema, funcs)
    right = compile_expr(expr.right, schema, funcs)
    op = expr.op
    if op == "AND":
        return lambda row, params: bool(left(row, params)) and bool(
            right(row, params)
        )
    if op == "OR":
        return lambda row, params: bool(left(row, params)) or bool(
            right(row, params)
        )

    def compare(fn: Callable[[Any, Any], Any]) -> ExprFn:
        def run(row: tuple, params: tuple) -> Any:
            lv, rv = left(row, params), right(row, params)
            if lv is None or rv is None:
                return False
            return fn(lv, rv)

        return run

    def arith(fn: Callable[[Any, Any], Any]) -> ExprFn:
        def run(row: tuple, params: tuple) -> Any:
            lv, rv = left(row, params), right(row, params)
            if lv is None or rv is None:
                return None
            return fn(lv, rv)

        return run

    table = {
        "=": compare(lambda a, b: a == b),
        "<>": compare(lambda a, b: a != b),
        "<": compare(lambda a, b: a < b),
        "<=": compare(lambda a, b: a <= b),
        ">": compare(lambda a, b: a > b),
        ">=": compare(lambda a, b: a >= b),
        "+": arith(lambda a, b: a + b),
        "-": arith(lambda a, b: a - b),
        "*": arith(lambda a, b: a * b),
        "/": arith(lambda a, b: a / b),
    }
    try:
        return table[op]
    except KeyError:
        raise SqlRuntimeError(f"unknown operator {op!r}") from None


# --- physical operators ---------------------------------------------------------


class PlanNode:
    """Base class: every operator exposes a schema and a row iterator."""

    schema: Schema
    #: estimated output rows, annotated by the planner's cost pass
    est_rows: float | None = None

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        line = "  " * depth + self._describe()
        if self.est_rows is not None:
            line += f"  [est_rows={self.est_rows:.0f}]"
        lines = [line]
        for child in self._children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> list["PlanNode"]:
        return []


class SingleRow(PlanNode):
    """FROM-less SELECT: one empty row."""

    def __init__(self) -> None:
        self.schema = Schema([])

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        yield ()


class SeqScan(PlanNode):
    def __init__(self, table: Table, binding: str) -> None:
        self.table = table
        self.binding = binding
        self.schema = Schema.for_table(table, binding)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        for _handle, row in self.table.scan():
            charge("tuple_cpu")
            yield row

    def _describe(self) -> str:
        return f"SeqScan({self.table.name} as {self.binding})"


class IndexEqScan(PlanNode):
    """Index lookup with a key known at runtime (constant or parameter)."""

    def __init__(
        self,
        table: Table,
        binding: str,
        column: str,
        key_fn: ExprFn,
        needed: list[str] | None = None,
    ) -> None:
        self.table = table
        self.binding = binding
        self.column = column
        self.key_fn = key_fn
        self.needed = needed
        self.schema = Schema.for_table(table, binding)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        key = self.key_fn((), ctx.params)
        handles = self.table.lookup(self.column, key)
        for row in self.table.fetch_batch(handles, self.needed):
            charge("tuple_cpu")
            yield row

    def _describe(self) -> str:
        return (
            f"IndexEqScan({self.table.name} as {self.binding} "
            f"on {self.column})"
        )


class Filter(PlanNode):
    #: planner-estimated fraction of child rows surviving the predicate
    #: (None -> the System R range default during annotation)
    selectivity: float | None = None

    def __init__(self, child: PlanNode, predicate: ExprFn) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        predicate = self.predicate
        for row in self.child.rows(ctx):
            charge("tuple_cpu")
            if predicate(row, ctx.params):
                yield row

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Project(PlanNode):
    def __init__(
        self, child: PlanNode, exprs: list[ExprFn], names: list[str]
    ) -> None:
        self.child = child
        self.exprs = exprs
        self.schema = Schema([(None, n) for n in names])

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        params = ctx.params
        for row in self.child.rows(ctx):
            charge("tuple_cpu")
            yield tuple(fn(row, params) for fn in self.exprs)

    def _children(self) -> list[PlanNode]:
        return [self.child]


class IndexNLJoin(PlanNode):
    """For each outer row, probe the inner table's index."""

    def __init__(
        self,
        outer: PlanNode,
        table: Table,
        binding: str,
        inner_column: str,
        outer_key_fn: ExprFn,
        kind: str = "inner",
        residual: ExprFn | None = None,
    ) -> None:
        self.outer = outer
        self.table = table
        self.binding = binding
        self.inner_column = inner_column
        self.outer_key_fn = outer_key_fn
        self.kind = kind
        self.residual = residual
        self.schema = outer.schema.concat(Schema.for_table(table, binding))
        self._null_row = (None,) * len(table.column_names)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        params = ctx.params
        for outer_row in self.outer.rows(ctx):
            key = self.outer_key_fn(outer_row, params)
            matched = False
            if key is not None:
                for handle in self.table.lookup(self.inner_column, key):
                    charge("tuple_cpu")
                    combined = outer_row + self.table.fetch(handle)
                    if self.residual is not None and not self.residual(
                        combined, params
                    ):
                        continue
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield outer_row + self._null_row

    def _describe(self) -> str:
        return (
            f"IndexNLJoin[{self.kind}]({self.table.name} as {self.binding} "
            f"on {self.inner_column})"
        )

    def _children(self) -> list[PlanNode]:
        return [self.outer]


class VectorizedIndexNLJoin(PlanNode):
    """Index nested-loop join with vectorized inner fetches.

    Used when the inner table is columnar (the Virtuoso engine): the outer
    input is drained, all matching inner handles are collected, and the
    needed columns are fetched in one batch per column — amortizing
    positional access, at the price of a per-batch setup cost.
    """

    def __init__(
        self,
        outer: PlanNode,
        table: Table,
        binding: str,
        inner_column: str,
        outer_key_fn: ExprFn,
        kind: str = "inner",
        residual: ExprFn | None = None,
        needed: list[str] | None = None,
    ) -> None:
        self.outer = outer
        self.table = table
        self.binding = binding
        self.inner_column = inner_column
        self.outer_key_fn = outer_key_fn
        self.kind = kind
        self.residual = residual
        self.needed = needed
        self.schema = outer.schema.concat(Schema.for_table(table, binding))
        self._null_row = (None,) * len(table.column_names)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        params = ctx.params
        outer_rows = list(self.outer.rows(ctx))
        per_outer: list[list] = []
        all_handles: list = []
        for outer_row in outer_rows:
            key = self.outer_key_fn(outer_row, params)
            handles = (
                self.table.lookup(self.inner_column, key)
                if key is not None
                else []
            )
            per_outer.append(handles)
            all_handles.extend(handles)
        fetched = self.table.fetch_batch(all_handles, self.needed)
        charge("tuple_vec", len(fetched))
        cursor = 0
        for outer_row, handles in zip(outer_rows, per_outer):
            matched = False
            for _ in handles:
                inner_row = fetched[cursor]
                cursor += 1
                combined = outer_row + inner_row
                if self.residual is not None and not self.residual(
                    combined, params
                ):
                    continue
                matched = True
                yield combined
            if not matched and self.kind == "left":
                yield outer_row + self._null_row

    def _describe(self) -> str:
        return (
            f"VectorizedIndexNLJoin[{self.kind}]({self.table.name} as "
            f"{self.binding} on {self.inner_column})"
        )

    def _children(self) -> list[PlanNode]:
        return [self.outer]


class HashJoin(PlanNode):
    """Build on the right input, probe from the left."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key_fn: ExprFn,
        right_key_fn: ExprFn,
        kind: str = "inner",
        residual: ExprFn | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.left_key_fn = left_key_fn
        self.right_key_fn = right_key_fn
        self.kind = kind
        self.residual = residual
        self.schema = left.schema.concat(right.schema)
        self._null_row = (None,) * len(right.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        params = ctx.params
        build: dict[Any, list[tuple]] = {}
        for row in self.right.rows(ctx):
            charge("tuple_cpu")
            key = self.right_key_fn(row, params)
            if key is not None:
                build.setdefault(key, []).append(row)
        for left_row in self.left.rows(ctx):
            charge("hash_probe")
            key = self.left_key_fn(left_row, params)
            matched = False
            for right_row in build.get(key, ()) if key is not None else ():
                charge("tuple_cpu")
                combined = left_row + right_row
                if self.residual is not None and not self.residual(
                    combined, params
                ):
                    continue
                matched = True
                yield combined
            if not matched and self.kind == "left":
                yield left_row + self._null_row

    def _children(self) -> list[PlanNode]:
        return [self.left, self.right]


class NLJoin(PlanNode):
    """Nested-loop fallback for non-equality conditions."""

    def __init__(
        self,
        outer: PlanNode,
        inner: PlanNode,
        predicate: ExprFn | None,
        kind: str = "inner",
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.predicate = predicate
        self.kind = kind
        self.schema = outer.schema.concat(inner.schema)
        self._null_row = (None,) * len(inner.schema)

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        params = ctx.params
        inner_rows = list(self.inner.rows(ctx))
        for outer_row in self.outer.rows(ctx):
            matched = False
            for inner_row in inner_rows:
                charge("tuple_cpu")
                combined = outer_row + inner_row
                if self.predicate is None or self.predicate(combined, params):
                    matched = True
                    yield combined
            if not matched and self.kind == "left":
                yield outer_row + self._null_row

    def _children(self) -> list[PlanNode]:
        return [self.outer, self.inner]


class Aggregate(PlanNode):
    """Hash aggregation.

    ``group_fns`` compute the grouping key; ``agg_specs`` are
    ``(func_name, arg_fn or None, distinct)`` tuples.  Output rows are
    group values followed by aggregate values.
    """

    def __init__(
        self,
        child: PlanNode,
        group_fns: list[ExprFn],
        agg_specs: list[tuple[str, ExprFn | None, bool]],
        out_names: list[str],
    ) -> None:
        self.child = child
        self.group_fns = group_fns
        self.agg_specs = agg_specs
        self.schema = Schema([(None, n) for n in out_names])

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        params = ctx.params
        groups: dict[tuple, list[_AggState]] = {}
        saw_any = False
        for row in self.child.rows(ctx):
            charge("tuple_cpu")
            saw_any = True
            key = tuple(fn(row, params) for fn in self.group_fns)
            states = groups.get(key)
            if states is None:
                states = [_AggState(name, distinct) for name, _, distinct in self.agg_specs]
                groups[key] = states
            for state, (_, arg_fn, _) in zip(states, self.agg_specs):
                state.feed(
                    arg_fn(row, params) if arg_fn is not None else 1
                )
        if not groups and not self.group_fns and not saw_any:
            # global aggregate over empty input still yields one row
            states = [_AggState(name, distinct) for name, _, distinct in self.agg_specs]
            yield tuple(s.result() for s in states)
            return
        for key, states in groups.items():
            yield key + tuple(s.result() for s in states)

    def _children(self) -> list[PlanNode]:
        return [self.child]


class _AggState:
    __slots__ = ("func", "distinct", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, func: str, distinct: bool) -> None:
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: set | None = set() if distinct else None

    def feed(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        self.total = value if self.total is None else self.total + value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        if self.func == "avg":
            return None if self.count == 0 else self.total / self.count
        raise SqlRuntimeError(f"unknown aggregate {self.func!r}")


class Sort(PlanNode):
    def __init__(
        self,
        child: PlanNode,
        key_fns: list[ExprFn],
        descending: list[bool],
    ) -> None:
        self.child = child
        self.key_fns = key_fns
        self.descending = descending
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        params = ctx.params
        materialized = list(self.child.rows(ctx))
        charge("tuple_cpu", len(materialized))

        # stable multi-key sort: apply keys right-to-left; NULLs sort first
        for key_fn, desc in reversed(list(zip(self.key_fns, self.descending))):
            materialized.sort(
                key=lambda row: _sort_key(key_fn(row, params)),
                reverse=desc,
            )
        yield from materialized

    def _children(self) -> list[PlanNode]:
        return [self.child]


def _sort_key(value: Any) -> tuple:
    # bool < int comparisons are fine; strings never mix with numbers in a
    # single column, so tagging by NULL-ness suffices
    return (value is not None, value)


class Limit(PlanNode):
    def __init__(self, child: PlanNode, limit: int) -> None:
        self.child = child
        self.limit = limit
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.rows(ctx):
            yield row
            emitted += 1
            if emitted >= self.limit:
                return

    def _children(self) -> list[PlanNode]:
        return [self.child]


class Distinct(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.schema = child.schema

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child.rows(ctx):
            charge("hash_probe")
            if row not in seen:
                seen.add(row)
                yield row

    def _children(self) -> list[PlanNode]:
        return [self.child]


class RowsHolder:
    """A mutable container of rows shared by materialized scans."""

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows: list[tuple] = []


class MaterializedScan(PlanNode):
    """Scan over a shared in-memory row list (recursive CTE tables)."""

    def __init__(
        self, holder: RowsHolder, binding: str, columns: Sequence[str]
    ) -> None:
        self.holder = holder
        self.binding = binding
        self.schema = Schema([(binding, c) for c in columns])

    def rows(self, ctx: ExecContext) -> Iterator[tuple]:
        for row in self.holder.rows:
            charge("tuple_cpu")
            yield row

    def _describe(self) -> str:
        return f"MaterializedScan({self.binding})"
