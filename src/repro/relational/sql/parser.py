"""Recursive-descent parser producing :mod:`repro.relational.sql.ast` nodes."""

from __future__ import annotations

from repro.relational.sql import ast
from repro.relational.sql.lexer import Token, tokenize


class SqlParseError(Exception):
    pass


def parse(text: str) -> ast.Statement:
    """Parse a single SQL statement."""
    parser = _Parser(tokenize(text))
    stmt = parser.statement()
    parser.accept("semicolon")
    parser.expect("eof")
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def check(self, kind: str, value: object = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: object = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        if not self.check(kind, value):
            token = self.current
            want = value if value is not None else kind
            raise SqlParseError(
                f"expected {want!r}, got {token.kind} {token.value!r} "
                f"at position {token.pos}"
            )
        return self.advance()

    def keyword(self, word: str) -> bool:
        return self.accept("keyword", word) is not None

    def expect_keyword(self, word: str) -> None:
        self.expect("keyword", word)

    def ident(self) -> str:
        return str(self.expect("ident").value)

    # -- statements -------------------------------------------------------------

    def statement(self) -> ast.Statement:
        if self.check("keyword", "select"):
            return self.select()
        if self.check("keyword", "with"):
            return self.recursive_cte()
        if self.keyword("insert"):
            return self.insert()
        if self.keyword("update"):
            return self.update()
        if self.keyword("delete"):
            return self.delete()
        if self.keyword("analyze"):
            table = self.ident() if self.check("ident") else None
            return ast.Analyze(table)
        if self.keyword("create"):
            if self.keyword("table"):
                return self.create_table()
            if self.keyword("index"):
                return self.create_index()
            raise SqlParseError("expected TABLE or INDEX after CREATE")
        token = self.current
        raise SqlParseError(
            f"cannot parse statement starting with {token.value!r}"
        )

    def select(self) -> ast.Select:
        self.expect_keyword("select")
        distinct = self.keyword("distinct")
        items = [self.select_item()]
        while self.accept("comma"):
            items.append(self.select_item())

        from_table = None
        joins: list[ast.Join] = []
        if self.keyword("from"):
            from_table = self.table_ref()
            while True:
                if self.check("keyword", "join") or self.check(
                    "keyword", "inner"
                ):
                    self.keyword("inner")
                    self.expect_keyword("join")
                    kind = "inner"
                elif self.check("keyword", "left"):
                    self.advance()
                    self.keyword("outer")
                    self.expect_keyword("join")
                    kind = "left"
                else:
                    break
                table = self.table_ref()
                self.expect_keyword("on")
                condition = self.expression()
                joins.append(ast.Join(table, condition, kind))

        where = self.expression() if self.keyword("where") else None

        group_by: list[ast.Expr] = []
        if self.keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.expression())
            while self.accept("comma"):
                group_by.append(self.expression())

        order_by: list[ast.OrderItem] = []
        if self.keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.order_item())
            while self.accept("comma"):
                order_by.append(self.order_item())

        limit = None
        if self.keyword("limit"):
            limit = int(self.expect("number").value)

        return ast.Select(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def recursive_cte(self) -> ast.RecursiveCTE:
        self.expect_keyword("with")
        self.expect_keyword("recursive")
        name = self.ident()
        self.expect("lparen")
        columns = [self.ident()]
        while self.accept("comma"):
            columns.append(self.ident())
        self.expect("rparen")
        self.expect_keyword("as")
        self.expect("lparen")
        base = self.select()
        self.expect_keyword("union")
        distinct = not self.keyword("all")
        step = self.select()
        self.expect("rparen")
        body = self.select()
        return ast.RecursiveCTE(
            name, tuple(columns), base, step, body, distinct
        )

    def insert(self) -> ast.Insert:
        self.expect_keyword("into")
        table = self.ident()
        self.expect_keyword("values")
        self.expect("lparen")
        values = [self.expression()]
        while self.accept("comma"):
            values.append(self.expression())
        self.expect("rparen")
        return ast.Insert(table, tuple(values))

    def update(self) -> ast.Update:
        table = self.ident()
        self.expect_keyword("set")
        assignments = [self.assignment()]
        while self.accept("comma"):
            assignments.append(self.assignment())
        where = self.expression() if self.keyword("where") else None
        return ast.Update(table, tuple(assignments), where)

    def assignment(self) -> tuple[str, ast.Expr]:
        column = self.ident()
        self.expect("op", "=")
        return column, self.expression()

    def delete(self) -> ast.Delete:
        self.expect_keyword("from")
        table = self.ident()
        where = self.expression() if self.keyword("where") else None
        return ast.Delete(table, where)

    def create_table(self) -> ast.CreateTable:
        name = self.ident()
        self.expect("lparen")
        columns = [self.column_def()]
        while self.accept("comma"):
            columns.append(self.column_def())
        self.expect("rparen")
        return ast.CreateTable(name, tuple(columns))

    def column_def(self) -> ast.ColumnDef:
        name = self.ident()
        type_name = str(self.expect("ident").value).lower()
        primary = False
        if self.keyword("primary"):
            self.expect_keyword("key")
            primary = True
        return ast.ColumnDef(name, type_name, primary)

    def create_index(self) -> ast.CreateIndex:
        index_name = None
        if self.check("ident"):
            index_name = self.ident()
        self.expect_keyword("on")
        table = self.ident()
        self.expect("lparen")
        column = self.ident()
        self.expect("rparen")
        method = "btree"
        if self.keyword("using"):
            method = self.ident().lower()
            if method not in ("btree", "hash"):
                raise SqlParseError(f"unknown index method {method!r}")
        return ast.CreateIndex(table, column, index_name, method)

    # -- select helpers ---------------------------------------------------------

    def select_item(self) -> ast.SelectItem:
        if self.check("star"):
            self.advance()
            return ast.SelectItem(ast.ColumnRef(None, "*"))
        expr = self.expression()
        alias = None
        if self.keyword("as"):
            alias = self.ident()
        elif self.check("ident"):
            alias = self.ident()
        return ast.SelectItem(expr, alias)

    def table_ref(self) -> ast.TableRef:
        name = self.ident()
        alias = None
        if self.keyword("as"):
            alias = self.ident()
        elif self.check("ident"):
            alias = self.ident()
        return ast.TableRef(name, alias)

    def order_item(self) -> ast.OrderItem:
        expr = self.expression()
        descending = False
        if self.keyword("desc"):
            descending = True
        else:
            self.keyword("asc")
        return ast.OrderItem(expr, descending)

    # -- expressions (precedence climbing) ------------------------------------------

    def expression(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self.keyword("or"):
            left = ast.BinaryOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> ast.Expr:
        left = self.not_expr()
        while self.keyword("and"):
            left = ast.BinaryOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> ast.Expr:
        if self.keyword("not"):
            return ast.UnaryOp("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expr:
        left = self.additive()
        if self.check("op"):
            op = str(self.advance().value)
            return ast.BinaryOp(op, left, self.additive())
        if self.check("keyword", "is"):
            self.advance()
            negated = self.keyword("not")
            self.expect_keyword("null")
            return ast.IsNull(left, negated)
        negated = False
        if self.check("keyword", "not"):
            # NOT IN
            self.advance()
            negated = True
            self.expect_keyword("in")
            return self.in_list(left, negated)
        if self.keyword("in"):
            return self.in_list(left, negated)
        return left

    def in_list(self, needle: ast.Expr, negated: bool) -> ast.InList:
        self.expect("lparen")
        items = [self.expression()]
        while self.accept("comma"):
            items.append(self.expression())
        self.expect("rparen")
        return ast.InList(needle, tuple(items), negated)

    def additive(self) -> ast.Expr:
        left = self.multiplicative()
        while True:
            if self.accept("plus"):
                left = ast.BinaryOp("+", left, self.multiplicative())
            elif self.accept("minus"):
                left = ast.BinaryOp("-", left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> ast.Expr:
        left = self.unary()
        while True:
            if self.accept("star"):
                left = ast.BinaryOp("*", left, self.unary())
            elif self.accept("slash"):
                left = ast.BinaryOp("/", left, self.unary())
            else:
                return left

    def unary(self) -> ast.Expr:
        if self.accept("minus"):
            return ast.UnaryOp("-", self.unary())
        return self.primary()

    def primary(self) -> ast.Expr:
        if self.accept("lparen"):
            expr = self.expression()
            self.expect("rparen")
            return expr
        if self.check("number"):
            return ast.Literal(self.advance().value)
        if self.check("string"):
            return ast.Literal(self.advance().value)
        if self.check("param"):
            self.advance()
            param = ast.Param(self._param_count)
            self._param_count += 1
            return param
        if self.keyword("null"):
            return ast.Literal(None)
        if self.keyword("true"):
            return ast.Literal(True)
        if self.keyword("false"):
            return ast.Literal(False)
        if self.check("ident"):
            name = self.ident()
            if self.accept("lparen"):
                return self.func_call(name)
            if self.accept("dot"):
                if self.accept("star"):
                    return ast.ColumnRef(name, "*")
                return ast.ColumnRef(name, self.ident())
            return ast.ColumnRef(None, name)
        token = self.current
        raise SqlParseError(
            f"unexpected token {token.value!r} at position {token.pos}"
        )

    def func_call(self, name: str) -> ast.FuncCall:
        lname = name.lower()
        if self.accept("star"):
            self.expect("rparen")
            return ast.FuncCall(lname, (), star=True)
        if self.accept("rparen"):
            return ast.FuncCall(lname, ())
        distinct = self.keyword("distinct")
        args = [self.expression()]
        while self.accept("comma"):
            args.append(self.expression())
        self.expect("rparen")
        return ast.FuncCall(lname, tuple(args), distinct=distinct)
