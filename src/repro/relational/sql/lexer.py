"""Tokenizer for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

KEYWORDS = {
    "select", "distinct", "from", "join", "left", "outer", "inner", "on",
    "where", "group", "order", "by", "asc", "desc", "limit", "and", "or",
    "not", "in", "is", "null", "true", "false", "insert", "into", "values",
    "update", "set", "delete", "create", "table", "index", "primary", "key",
    "using", "with", "recursive", "as", "union", "all", "analyze",
}

_PUNCT = {
    "(": "lparen",
    ")": "rparen",
    ",": "comma",
    ".": "dot",
    "*": "star",
    "+": "plus",
    "-": "minus",
    "/": "slash",
    "?": "param",
    ";": "semicolon",
}


class SqlLexError(Exception):
    pass


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | one of _PUNCT values | eof
    value: Any
    pos: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlLexError(f"unterminated string at {i}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (text[j].isdigit() or text[j] == "."):
                if text[j] == ".":
                    if is_float:
                        break
                    is_float = True
                j += 1
            raw = text[i:j]
            tokens.append(
                Token("number", float(raw) if is_float else int(raw), i)
            )
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lower = word.lower()
            if lower in KEYWORDS:
                tokens.append(Token("keyword", lower, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        if text.startswith(("<=", ">=", "<>", "!="), i):
            op = text[i : i + 2]
            tokens.append(Token("op", "<>" if op == "!=" else op, i))
            i += 2
            continue
        if ch in "=<>":
            tokens.append(Token("op", ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", None, n))
    return tokens
