"""Abstract syntax tree for the supported SQL dialect.

Supported statements::

    CREATE TABLE t (col TYPE [PRIMARY KEY], ...)
    CREATE INDEX [name] ON t (col) [USING HASH|BTREE]
    INSERT INTO t VALUES (expr, ...)
    UPDATE t SET col = expr, ... [WHERE pred]
    DELETE FROM t [WHERE pred]
    SELECT [DISTINCT] exprs FROM t [alias]
        [ [LEFT] JOIN t2 [alias] ON pred ]...
        [WHERE pred] [GROUP BY cols] [ORDER BY expr [ASC|DESC], ...]
        [LIMIT n]
    WITH RECURSIVE name (cols) AS (base UNION ALL step) SELECT ...

Expressions: qualified column refs, literals, parameters (``?``),
comparison / arithmetic / boolean operators, ``IN (list)``, ``IS [NOT]
NULL``, and function calls (aggregates plus engine built-ins such as
``shortest_path_len``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

# --- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class Param(Expr):
    """A positional ``?`` placeholder."""

    index: int


@dataclass(frozen=True)
class ColumnRef(Expr):
    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # = <> < <= > >= + - * / AND OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # NOT, -
    operand: Expr


@dataclass(frozen=True)
class InList(Expr):
    needle: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lower-cased
    args: tuple[Expr, ...]
    star: bool = False  # COUNT(*)
    distinct: bool = False  # COUNT(DISTINCT x)


# --- select machinery ---------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Expr
    kind: str = "inner"  # inner | left


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    from_table: TableRef | None
    joins: tuple[Join, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class RecursiveCTE:
    """``WITH RECURSIVE name (cols) AS (base UNION [ALL] step) body``.

    ``distinct`` is true for plain ``UNION``, which deduplicates rows
    globally — the form that terminates on cyclic graphs (PostgreSQL
    semantics).
    """

    name: str
    columns: tuple[str, ...]
    base: Select
    step: Select
    body: Select
    distinct: bool = False


# --- DML / DDL ------------------------------------------------------------------------


@dataclass(frozen=True)
class Insert:
    table: str
    values: tuple[Expr, ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Expr | None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # INT | BIGINT | FLOAT | TEXT | VARCHAR | BOOL | TIMESTAMP
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class CreateIndex:
    table: str
    column: str
    name: str | None = None
    method: str = "btree"  # btree | hash


@dataclass(frozen=True)
class Analyze:
    """``ANALYZE [table]`` — refresh planner statistics."""

    table: str | None = None


Statement = (
    Select
    | RecursiveCTE
    | Insert
    | Update
    | Delete
    | CreateTable
    | CreateIndex
    | Analyze
)
