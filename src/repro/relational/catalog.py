"""The catalog: tables and indexes of one database instance."""

from __future__ import annotations

from collections.abc import Sequence

from repro.storage.buffer import BufferPool, DiskManager
from repro.storage.codec import ColumnType
from repro.storage.wal import WriteAheadLog
from repro.relational.table import Table


class Catalog:
    """Owns every table of a database and their shared storage services."""

    def __init__(
        self,
        storage: str = "row",
        *,
        buffer_capacity: int = 1 << 16,
        wal: WriteAheadLog | None = None,
    ) -> None:
        if storage not in ("row", "column"):
            raise ValueError(f"unknown storage engine: {storage!r}")
        self.storage = storage
        self.disk = DiskManager()
        self.pool = BufferPool(self.disk, capacity=buffer_capacity)
        self.wal = wal
        self._tables: dict[str, Table] = {}

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, ColumnType]],
        primary_key: str | None = None,
    ) -> Table:
        key = name.lower()
        if key in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(
            key,
            columns,
            primary_key=primary_key,
            storage=self.storage,
            pool=self.pool,
            wal=self.wal,
        )
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise KeyError(f"no table {name!r}") from None

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise KeyError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def size_bytes(self) -> int:
        return sum(t.size_bytes() for t in self._tables.values())
