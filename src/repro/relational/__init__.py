"""Relational engine: catalog, tables, and a SQL lexer/parser/planner/executor.

Two storage layouts are supported, matching the paper's two RDBMSes:

* ``row``    — slotted-page heap files (PostgreSQL-like)
* ``column`` — dictionary-encoded column vectors (Virtuoso-like), plus a
  built-in graph-aware shortest-path table function (Virtuoso's
  "optimized transitivity support")

The public entry point is :class:`repro.relational.engine.Database`.
"""

from repro.relational.catalog import Catalog
from repro.relational.engine import Database
from repro.relational.table import Table

__all__ = ["Database", "Catalog", "Table"]
