"""Native graph database (the Neo4j-like engine).

Storage follows Neo4j's record-store design: fixed-size node and
relationship records where each node heads a linked chain of relationship
records — *index-free adjacency*, so traversing a relationship costs one
record read regardless of graph size (the property behind the paper's
observation that Neo4j/Cypher latency is nearly independent of scale
factor).

Queried through a Cypher subset (:mod:`repro.graphdb.cypher`) or directly
through the :class:`GraphStore` API (which the TinkerPop adapter uses).
"""

from repro.graphdb.store import Direction, GraphStore
from repro.graphdb.engine import GraphDatabase

__all__ = ["GraphStore", "GraphDatabase", "Direction"]
