"""Record stores: nodes, relationships, properties.

Layout mirrors Neo4j:

* node record: first relationship id + labels + property pointer
* relationship record: type, start node, end node, and *two* "next"
  pointers threading the record into the start node's chain and the end
  node's chain

Walking a node's relationships follows its chain, one ``record_read`` per
hop — no index involved.  Property access charges ``value_cpu`` per value.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.cache import CacheStats, DependencyTrackingCache
from repro.sanitizer import runtime
from repro.simclock.ledger import charge
from repro.stats import GraphStatistics
from repro.storage.hashindex import HashIndex
from repro.storage.mvcc import VersionStore
from repro.txn import oracle

NO_REL = -1


class Direction(enum.Enum):
    OUT = "out"
    IN = "in"
    BOTH = "both"


@dataclass
class _NodeRecord:
    first_rel: int = NO_REL
    labels: tuple[str, ...] = ()
    props: dict[str, Any] = field(default_factory=dict)
    deleted: bool = False


@dataclass
class _RelRecord:
    rel_type: str
    start: int
    end: int
    start_next: int = NO_REL
    end_next: int = NO_REL
    props: dict[str, Any] = field(default_factory=dict)
    deleted: bool = False


class GraphStore:
    """The property-graph store with index-free adjacency."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: list[_NodeRecord] = []
        self._rels: list[_RelRecord] = []
        # (label, property) -> HashIndex(value -> node ids)
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        # label -> live node ids (maintained on every node write)
        self._label_index: dict[str, set[int]] = {}
        # opt-in adjacency/neighborhood cache (None => disabled); entries
        # carry the node ids they were derived from, so a single edge
        # insert evicts only the neighborhoods containing an endpoint
        self._neighborhood_cache: DependencyTrackingCache | None = None
        # version metadata keyed by node id (int) / ("rel", rel_id);
        # deferred node deletes reclaim through _remove_physical
        self.mvcc = VersionStore(
            f"{name}-mvcc", on_reclaim=self._reclaim_tombstone
        )
        self.node_count = 0
        self.rel_count = 0

    # -- neighborhood cache ---------------------------------------------------

    def enable_neighborhood_cache(self, capacity: int = 4096) -> None:
        """Turn on adjacency caching (off by default; opt-in hot path)."""
        self._neighborhood_cache = DependencyTrackingCache(
            capacity, name=f"{self.name}-neighborhood"
        )

    def disable_neighborhood_cache(self) -> None:
        self._neighborhood_cache = None

    def cache_stats(self) -> list[CacheStats]:
        if self._neighborhood_cache is None:
            return []
        return [self._neighborhood_cache.stats()]

    def _invalidate_neighborhoods(self, members: tuple[int, ...]) -> None:
        if self._neighborhood_cache is not None:
            self._neighborhood_cache.invalidate_members(members)

    def invalidate_caches(self) -> None:
        """Whole-cache epoch fallback (bulk load, ANALYZE, index builds)."""
        if self._neighborhood_cache is not None:
            self._neighborhood_cache.invalidate_all()

    # -- schema indexes ------------------------------------------------------

    def create_index(self, label: str, prop: str) -> None:
        key = (label, prop)
        if key in self._indexes:
            return
        index = HashIndex(name=f"{label}.{prop}")
        for node_id, record in enumerate(self._nodes):
            if record.deleted or label not in record.labels:
                continue
            value = record.props.get(prop)
            if value is not None:
                index.insert(value, node_id)
        self._indexes[key] = index

    def lookup(self, label: str, prop: str, value: Any) -> list[int]:
        """Node ids with ``label`` and ``prop == value`` (index required).

        Index entries are unversioned, so under a held snapshot a
        ``set_node_prop`` that moved an entry could make the probe miss
        the row the snapshot still sees (or surface one it must not).
        The at-risk node ids are exactly the stamped-after-snapshot keys
        (``mvcc.stale_keys()``): hits among them are re-checked against
        their snapshot property map, and stale visible nodes whose
        snapshot value matches are recovered.
        """
        index = self._indexes.get((label, prop))
        if index is None:
            raise KeyError(f"no index on :{label}({prop})")
        hits = self.mvcc.filter_visible(index.search(value))
        stale = [k for k in self.mvcc.stale_keys() if isinstance(k, int)]
        if not stale:
            return hits
        kept = []
        for node_id in hits:
            if self.mvcc.stale(node_id):
                props = self.mvcc.read(node_id, self._nodes[node_id].props)
                if props.get(prop) != value:
                    continue
            kept.append(node_id)
        seen = set(kept)
        for node_id in stale:
            if node_id in seen or not self.mvcc.visible(node_id):
                continue
            record = self._nodes[node_id]
            if label not in record.labels:  # labels are immutable
                continue
            props = self.mvcc.read(node_id, record.props)
            if props.get(prop) == value:
                kept.append(node_id)
        return kept

    def has_index(self, label: str, prop: str) -> bool:
        return (label, prop) in self._indexes

    # -- write path ------------------------------------------------------------

    def create_node(
        self, labels: tuple[str, ...] | list[str], props: dict[str, Any]
    ) -> int:
        charge("record_write")
        node_id = len(self._nodes)
        self._nodes.append(_NodeRecord(labels=tuple(labels), props=dict(props)))
        self.mvcc.stamp(node_id)
        self.node_count += 1
        for label in labels:
            self._label_index.setdefault(label, set()).add(node_id)
        for (label, prop), index in self._indexes.items():
            if label in labels and props.get(prop) is not None:
                index.insert(props[prop], node_id)
        if runtime.TRACE is not None:
            runtime.TRACE.write(("node", node_id))
        return node_id

    def create_rel(
        self,
        rel_type: str,
        start: int,
        end: int,
        props: dict[str, Any] | None = None,
    ) -> int:
        start_record = self._node(start)
        end_record = self._node(end)
        charge("record_write", 3)  # rel record + two chain head updates
        rel_id = len(self._rels)
        record = _RelRecord(
            rel_type=rel_type,
            start=start,
            end=end,
            start_next=start_record.first_rel,
            end_next=end_record.first_rel,
            props=dict(props or {}),
        )
        self._rels.append(record)
        self.mvcc.stamp(("rel", rel_id))
        start_record.first_rel = rel_id
        end_record.first_rel = rel_id
        self.rel_count += 1
        self._invalidate_neighborhoods((start, end))
        if runtime.TRACE is not None:
            runtime.TRACE.write(("node", start))
            runtime.TRACE.write(("node", end))
        return rel_id

    def delete_node(self, node_id: int) -> None:
        """Delete a node (must have no relationships, as in Neo4j)."""
        record = self._node(node_id)
        if any(True for _ in self.relationships(node_id)):
            raise ValueError(f"node {node_id} still has relationships")
        charge("record_write")
        self.node_count -= 1
        self._invalidate_neighborhoods((node_id,))
        if not self.mvcc.record_delete(node_id):
            # no snapshot could still need the record: remove it now;
            # otherwise it stays (tombstoned) until GC reclaims it
            self._remove_physical(node_id, record)
        if runtime.TRACE is not None:
            runtime.TRACE.write(("node", node_id))

    def _remove_physical(self, node_id: int, record: _NodeRecord) -> None:
        record.deleted = True
        for label in record.labels:
            ids = self._label_index.get(label)
            if ids is not None:
                ids.discard(node_id)
        for (label, prop), index in self._indexes.items():
            if label in record.labels and record.props.get(prop) is not None:
                index.delete(record.props[prop], node_id)

    def _reclaim_tombstone(self, key: Any) -> None:
        """GC decided a deferred node delete is unobservable: finish it."""
        if not isinstance(key, int):
            return  # relationships are never tombstoned
        record = self._nodes[key]
        if not record.deleted:
            self._remove_physical(key, record)

    def set_node_prop(self, node_id: int, key: str, value: Any) -> None:
        record = self._node(node_id)
        charge("record_write")
        self.mvcc.record_update(node_id, dict(record.props))
        old = record.props.get(key)
        record.props[key] = value
        for (label, prop), index in self._indexes.items():
            if label in record.labels and prop == key:
                if old is not None:
                    index.delete(old, node_id)
                if value is not None:
                    index.insert(value, node_id)
        if runtime.TRACE is not None:
            runtime.TRACE.write(("node", node_id))

    # -- read path ----------------------------------------------------------------

    def _node(self, node_id: int) -> _NodeRecord:
        record = self._nodes[node_id]
        if record.deleted or not self.mvcc.visible(node_id):
            raise KeyError(f"node {node_id} is deleted")
        return record

    def node_labels(self, node_id: int) -> tuple[str, ...]:
        charge("record_read")
        return self._node(node_id).labels

    def node_props(self, node_id: int) -> dict[str, Any]:
        record = self._node(node_id)
        charge("record_read")
        if runtime.TRACE is not None:
            runtime.TRACE.read(("node", node_id))
        props = self.mvcc.read(node_id, record.props)
        charge("value_cpu", len(props))
        return dict(props)

    def node_prop(self, node_id: int, key: str) -> Any:
        record = self._node(node_id)
        charge("record_read")
        charge("value_cpu")
        if runtime.TRACE is not None:
            runtime.TRACE.read(("node", node_id))
        return self.mvcc.read(node_id, record.props).get(key)

    def _rel(self, rel_id: int) -> _RelRecord:
        record = self._rels[rel_id]
        if record.deleted or not self.mvcc.visible(("rel", rel_id)):
            raise KeyError(f"relationship {rel_id} is deleted")
        return record

    def rel_props(self, rel_id: int) -> dict[str, Any]:
        record = self._rel(rel_id)
        charge("record_read")
        charge("value_cpu", len(record.props))
        return dict(record.props)

    def rel_endpoints(self, rel_id: int) -> tuple[str, int, int]:
        record = self._rel(rel_id)
        charge("record_read")
        return record.rel_type, record.start, record.end

    def relationships(
        self,
        node_id: int,
        rel_type: str | None = None,
        direction: Direction = Direction.BOTH,
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(rel_id, other_node_id)`` by walking the record chain."""
        self._node(node_id)  # existence + visibility check
        if runtime.TRACE is not None:
            runtime.TRACE.read(("node", node_id))
        rel_id = self._nodes[node_id].first_rel
        while rel_id != NO_REL:
            record = self._rels[rel_id]
            charge("record_read")
            is_loop = record.start == node_id and record.end == node_id
            if record.start == node_id:
                next_id = record.start_next
                is_out = True
                other = record.end
            else:
                next_id = record.end_next
                is_out = False
                other = record.start
            if (
                not record.deleted
                and (rel_type is None or record.rel_type == rel_type)
                and self.mvcc.visible(("rel", rel_id))
            ):
                if is_loop or (
                    direction is Direction.BOTH
                    or (direction is Direction.OUT and is_out)
                    or (direction is Direction.IN and not is_out)
                ):
                    yield rel_id, other
            rel_id = next_id

    def degree(
        self,
        node_id: int,
        rel_type: str | None = None,
        direction: Direction = Direction.BOTH,
    ) -> int:
        return sum(1 for _ in self.relationships(node_id, rel_type, direction))

    def neighbors(
        self,
        node_id: int,
        rel_type: str | None = None,
        direction: Direction = Direction.BOTH,
    ) -> Iterable[tuple[int, int]]:
        """``relationships()`` served through the neighborhood cache.

        With the cache disabled this is exactly the lazy chain walk.
        With it enabled, a hit serves the whole adjacency list for one
        ``cache_hit`` instead of one ``record_read`` per chain hop.
        Entries depend on the anchor node only: relationship *inserts*
        touch both endpoints' entries (see :meth:`create_rel`), and
        property writes don't affect adjacency, so that single
        dependency is exact.
        """
        cache = self._neighborhood_cache
        if cache is None or oracle.stale_reads():
            # a stale snapshot must not see (or poison) cached adjacency
            # derived from newer state than its read timestamp
            return self.relationships(node_id, rel_type, direction)
        key = (node_id, rel_type, direction.value)
        cached = cache.get(key)
        if cached is not None:
            charge("cache_hit")
            return cached  # type: ignore[no-any-return]
        result = tuple(self.relationships(node_id, rel_type, direction))
        cache.put(key, result, (node_id,))
        return result

    def friends_of_friends(
        self,
        node_id: int,
        rel_type: str | None = None,
        direction: Direction = Direction.BOTH,
    ) -> tuple[int, ...]:
        """Distinct two-hop neighbors (the paper's dominant read pattern).

        Cached with a dependency set of the anchor plus its one-hop
        neighbors: an edge insert at any of those nodes changes the
        two-hop frontier, and the write path invalidates by endpoint.
        """
        cache = (
            None if oracle.stale_reads() else self._neighborhood_cache
        )
        key = (node_id, rel_type, direction.value, 2)
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                charge("cache_hit")
                return cached  # type: ignore[no-any-return]
        friends = {
            other for _, other in self.neighbors(node_id, rel_type, direction)
        }
        fof: set[int] = set()
        for friend in friends:
            for _, other in self.neighbors(friend, rel_type, direction):
                if other != node_id and other not in friends:
                    fof.add(other)
        result = tuple(sorted(fof))
        if cache is not None:
            cache.put(key, result, {node_id, *friends})
        return result

    # -- batch read path (vectorized executor) -----------------------------------

    def neighbors_batch(
        self,
        node_ids: Iterable[int],
        rel_type: str | None = None,
        direction: Direction = Direction.BOTH,
    ) -> dict[int, tuple[tuple[int, int], ...]]:
        """Adjacency lists for a whole frontier at once.

        Duplicate ids in ``node_ids`` are fetched once — the batch
        executor's frontiers routinely revisit nodes, and a real
        vectorized engine would never re-walk the same record chain
        within one operator invocation.  Per unique node the cost is
        exactly :meth:`neighbors` (cache-aware when enabled).
        """
        return {
            node_id: tuple(self.neighbors(node_id, rel_type, direction))
            for node_id in dict.fromkeys(node_ids)
        }

    def node_props_batch(
        self, node_ids: Iterable[int]
    ) -> dict[int, dict[str, Any]]:
        """Property maps for a deduplicated batch of nodes."""
        return {
            node_id: self.node_props(node_id)
            for node_id in dict.fromkeys(node_ids)
        }

    def node_labels_batch(
        self, node_ids: Iterable[int]
    ) -> dict[int, tuple[str, ...]]:
        """Label tuples for a deduplicated batch of nodes."""
        return {
            node_id: self.node_labels(node_id)
            for node_id in dict.fromkeys(node_ids)
        }

    def rel_props_batch(
        self, rel_ids: Iterable[int]
    ) -> dict[int, dict[str, Any]]:
        """Property maps for a deduplicated batch of relationships."""
        return {
            rel_id: self.rel_props(rel_id) for rel_id in dict.fromkeys(rel_ids)
        }

    def nodes_with_label(self, label: str) -> Iterator[int]:
        """Label index scan: only touches nodes carrying the label.

        Ids come out ascending (insertion order) so results stay
        deterministic, matching what the old linear scan produced.
        """
        charge("index_probe")
        for node_id in sorted(self._label_index.get(label, ())):
            charge("record_read")
            if self.mvcc.visible(node_id):
                yield node_id

    def label_count(self, label: str) -> int:
        """Live nodes carrying ``label`` (no scan)."""
        return len(self._label_index.get(label, ()))

    def all_nodes(self) -> Iterator[int]:
        for node_id, record in enumerate(self._nodes):
            charge("record_read")
            if not record.deleted and self.mvcc.visible(node_id):
                yield node_id

    # -- stats -----------------------------------------------------------------------

    def collect_statistics(self) -> GraphStatistics:
        """One pass over the relationship store plus index cardinalities.

        Walks records directly (no per-record ``charge``); the caller
        charges a flat ``graph_analyze`` for the refresh.
        """
        rel_counts: dict[str, int] = {}
        starts: dict[str, set[int]] = {}
        ends: dict[str, set[int]] = {}
        for record in self._rels:
            if record.deleted:
                continue
            rel_counts[record.rel_type] = (
                rel_counts.get(record.rel_type, 0) + 1
            )
            starts.setdefault(record.rel_type, set()).add(record.start)
            ends.setdefault(record.rel_type, set()).add(record.end)
        return GraphStatistics(
            node_count=self.node_count,
            rel_count=self.rel_count,
            label_counts={
                label: len(ids) for label, ids in self._label_index.items()
            },
            rel_degrees={
                rel_type: (
                    count,
                    len(starts.get(rel_type, ())),
                    len(ends.get(rel_type, ())),
                )
                for rel_type, count in rel_counts.items()
            },
            prop_distinct={
                key: index.distinct_keys()
                for key, index in self._indexes.items()
            },
        )

    def size_bytes(self) -> int:
        """Approximate store footprint (records + property data)."""
        node_bytes = 15 * len(self._nodes)  # Neo4j node record size
        rel_bytes = 34 * len(self._rels)  # Neo4j relationship record size
        prop_bytes = 0
        for record in self._nodes:
            prop_bytes += sum(
                8 + _value_bytes(v) for v in record.props.values()
            )
        for rel in self._rels:
            prop_bytes += sum(8 + _value_bytes(v) for v in rel.props.values())
        index_bytes = sum(16 * len(i) for i in self._indexes.values())
        return node_bytes + rel_bytes + prop_bytes + index_bytes


def _value_bytes(value: Any) -> int:
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        return sum(_value_bytes(v) for v in value)
    return 8
