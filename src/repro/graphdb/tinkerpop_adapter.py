"""TinkerPop provider over the native graph store (Neo4j-Gremlin).

The same storage engine as the Cypher path, reached through the TinkerPop
SPI instead — the pairing the paper uses to isolate the cost of the
Gremlin layer ("for Neo4j, the Gremlin interface introduces up to two
orders of magnitude of performance degradation compared to the native
Cypher interface").
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.graphdb.store import Direction, GraphStore
from repro.tinkerpop.structure import GraphProvider

_DIRECTION = {
    "out": Direction.OUT,
    "in": Direction.IN,
    "both": Direction.BOTH,
}


class Neo4jProvider(GraphProvider):
    name = "neo4j-gremlin"

    def __init__(self, store: GraphStore | None = None) -> None:
        self.store = store or GraphStore("neo4j")

    # -- reads ------------------------------------------------------------------

    def vertices(self, label: str | None = None) -> Iterator[Any]:
        if label is None:
            yield from self.store.all_nodes()
        else:
            yield from self.store.nodes_with_label(label)

    def vertex_label(self, vid: Any) -> str:
        labels = self.store.node_labels(vid)
        return labels[0] if labels else ""

    def vertex_props(self, vid: Any) -> dict[str, Any]:
        return self.store.node_props(vid)

    def edge_props(self, eid: Any) -> dict[str, Any]:
        return self.store.rel_props(eid)

    def edge_label(self, eid: Any) -> str:
        return self.store.rel_endpoints(eid)[0]

    def edge_endpoints(self, eid: Any) -> tuple[Any, Any]:
        _type, start, end = self.store.rel_endpoints(eid)
        return start, end

    def adjacent(
        self, vid: Any, direction: str, label: str | None
    ) -> Iterator[tuple[Any, Any]]:
        yield from self.store.relationships(vid, label, _DIRECTION[direction])

    def lookup(self, label: str, key: str, value: Any) -> list[Any]:
        return self.store.lookup(label, key, value)

    def has_lookup_index(self, label: str, key: str) -> bool:
        return self.store.has_index(label, key)

    # -- writes -----------------------------------------------------------------------

    def create_vertex(self, label: str, props: dict[str, Any]) -> Any:
        return self.store.create_node((label,), props)

    def create_edge(
        self, label: str, out_vid: Any, in_vid: Any, props: dict[str, Any]
    ) -> Any:
        return self.store.create_rel(label, out_vid, in_vid, props)

    def set_vertex_prop(self, vid: Any, key: str, value: Any) -> None:
        self.store.set_node_prop(vid, key, value)

    def size_bytes(self) -> int:
        return self.store.size_bytes()
