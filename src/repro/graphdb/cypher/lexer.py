"""Tokenizer for the Cypher subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

KEYWORDS = {
    "match", "optional", "where", "return", "create", "set", "distinct",
    "order", "by", "asc", "desc", "limit", "and", "or", "not", "null",
    "true", "false", "as", "is",
}

_PUNCT = {
    "(": "lparen",
    ")": "rparen",
    "[": "lbracket",
    "]": "rbracket",
    "{": "lbrace",
    "}": "rbrace",
    ",": "comma",
    ".": "dot",
    ":": "colon",
    "*": "star",
    "+": "plus",
    "/": "slash",
    "=": "eq",
    "$": "dollar",
}


class CypherLexError(Exception):
    pass


@dataclass(frozen=True)
class Token:
    kind: str
    value: Any
    pos: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise CypherLexError(f"unterminated string at {i}")
                if text[j] == "\\" and j + 1 < n:
                    parts.append(text[j + 1])
                    j += 2
                    continue
                if text[j] == quote:
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            is_float = False
            while j < n and (text[j].isdigit() or text[j] == "."):
                if text[j] == ".":
                    # ".." range operator, not a decimal point
                    if j + 1 < n and text[j + 1] == ".":
                        break
                    if is_float:
                        break
                    is_float = True
                j += 1
            raw = text[i:j]
            tokens.append(
                Token("number", float(raw) if is_float else int(raw), i)
            )
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lower = word.lower()
            if lower in KEYWORDS:
                tokens.append(Token("keyword", lower, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        if text.startswith("..", i):
            tokens.append(Token("dotdot", "..", i))
            i += 2
            continue
        if text.startswith(("<=", ">=", "<>"), i):
            tokens.append(Token("op", text[i : i + 2], i))
            i += 2
            continue
        if text.startswith("->", i):
            tokens.append(Token("arrow_right", "->", i))
            i += 2
            continue
        if text.startswith("<-", i):
            tokens.append(Token("arrow_left", "<-", i))
            i += 2
            continue
        if ch == "-":
            tokens.append(Token("minus", "-", i))
            i += 1
            continue
        if ch in "<>":
            tokens.append(Token("op", ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        raise CypherLexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", None, n))
    return tokens
