"""Cypher abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# --- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class Param(Expr):
    name: str


@dataclass(frozen=True)
class VarRef(Expr):
    name: str


@dataclass(frozen=True)
class PropAccess(Expr):
    var: str
    key: str


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # lower-cased: count, min, max, length, id, ...
    args: tuple[Expr, ...]
    star: bool = False
    distinct: bool = False


# --- patterns ----------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    var: str | None
    labels: tuple[str, ...] = ()
    props: tuple[tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    """One relationship hop: ``-[r:TYPE*min..max {k: v}]->`` etc."""

    var: str | None
    types: tuple[str, ...] = ()
    direction: str = "both"  # out | in | both
    min_hops: int = 1
    max_hops: int = 1  # -1 = unbounded (shortestPath only)
    props: tuple[tuple[str, Expr], ...] = ()

    @property
    def var_length(self) -> bool:
        return self.min_hops != 1 or self.max_hops != 1


@dataclass(frozen=True)
class PathPattern:
    """A chain node-rel-node-...; optionally named / shortestPath."""

    elements: tuple  # NodePattern, RelPattern, NodePattern, ...
    assign_var: str | None = None
    shortest: bool = False

    @property
    def nodes(self) -> list[NodePattern]:
        return list(self.elements[0::2])

    @property
    def rels(self) -> list[RelPattern]:
        return list(self.elements[1::2])


# --- clauses ------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchClause:
    patterns: tuple[PathPattern, ...]
    where: Expr | None = None
    optional: bool = False


@dataclass(frozen=True)
class CreateClause:
    patterns: tuple[PathPattern, ...]


@dataclass(frozen=True)
class SetItem:
    target: PropAccess
    value: Expr


@dataclass(frozen=True)
class SetClause:
    items: tuple[SetItem, ...]


@dataclass(frozen=True)
class ReturnItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class ReturnClause:
    items: tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None


@dataclass(frozen=True)
class Query:
    clauses: tuple = ()  # MatchClause | CreateClause | SetClause
    returns: ReturnClause | None = None
