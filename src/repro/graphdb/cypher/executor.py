"""Cypher execution: pattern matching, writes, and projection.

Rows are ``dict[var, value]`` where values are :class:`NodeRef`,
:class:`RelRef`, :class:`PathRef`, or scalars.  Matching anchors each chain
at the cheapest node pattern (bound variable > schema index > label scan >
all-nodes scan) and expands outward through the relationship chains of the
record store.

Relationship uniqueness is enforced per path pattern (no relationship is
used twice in one chain), matching Cypher's semantics for the queries in
scope.  Every intermediate row charges ``cypher_row`` — the interpreted
runtime overhead of the Neo4j-2.3-era Cypher engine, visible in the
paper's point-lookup latencies.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.graphdb.cypher import ast
from repro.graphdb.store import Direction, GraphStore
from repro.simclock.ledger import charge
from repro.stats import GraphStatistics

AGGREGATE_FUNCS = {"count", "min", "max", "sum", "avg", "collect"}

_FLIP = {"out": "in", "in": "out", "both": "both"}
_TO_DIRECTION = {
    "out": Direction.OUT,
    "in": Direction.IN,
    "both": Direction.BOTH,
}


class CypherRuntimeError(Exception):
    pass


@dataclass(frozen=True)
class NodeRef:
    id: int


@dataclass(frozen=True)
class RelRef:
    id: int


@dataclass(frozen=True)
class PathRef:
    nodes: tuple[int, ...]
    length: int


@dataclass
class WriteSummary:
    nodes_created: int = 0
    relationships_created: int = 0
    properties_set: int = 0


class CypherExecutor:
    def __init__(self, store: GraphStore) -> None:
        self.store = store
        self.stats: GraphStatistics | None = None

    # -- entry point ------------------------------------------------------------

    def run(
        self, query: ast.Query, params: dict[str, Any] | None = None
    ) -> tuple[list[tuple], WriteSummary]:
        params = params or {}
        summary = WriteSummary()
        rows: list[dict[str, Any]] = [{}]
        for clause in query.clauses:
            if isinstance(clause, ast.MatchClause):
                rows = self._match(rows, clause, params)
            elif isinstance(clause, ast.CreateClause):
                rows = self._create(rows, clause, params, summary)
            elif isinstance(clause, ast.SetClause):
                rows = self._set(rows, clause, params, summary)
            else:
                raise CypherRuntimeError(
                    f"unsupported clause {type(clause).__name__}"
                )
        if query.returns is None:
            return [], summary
        return self._project(rows, query.returns, params), summary

    # -- expressions -------------------------------------------------------------

    def _eval(self, expr: ast.Expr, row: dict, params: dict) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Param):
            try:
                return params[expr.name]
            except KeyError:
                raise CypherRuntimeError(
                    f"missing parameter ${expr.name}"
                ) from None
        if isinstance(expr, ast.VarRef):
            try:
                return row[expr.name]
            except KeyError:
                raise CypherRuntimeError(
                    f"unbound variable {expr.name!r}"
                ) from None
        if isinstance(expr, ast.PropAccess):
            target = row.get(expr.var)
            if isinstance(target, NodeRef):
                return self.store.node_prop(target.id, expr.key)
            if isinstance(target, RelRef):
                return self.store.rel_props(target.id).get(expr.key)
            if target is None:
                return None
            raise CypherRuntimeError(
                f"{expr.var!r} is not a node or relationship"
            )
        if isinstance(expr, ast.UnaryOp):
            value = self._eval(expr.operand, row, params)
            if expr.op == "NOT":
                return not value
            return None if value is None else -value
        if isinstance(expr, ast.IsNull):
            value = self._eval(expr.operand, row, params)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, row, params)
        if isinstance(expr, ast.FuncCall):
            return self._eval_scalar_func(expr, row, params)
        raise CypherRuntimeError(f"cannot evaluate {expr!r}")

    def _eval_binary(self, expr: ast.BinaryOp, row: dict, params: dict) -> Any:
        op = expr.op
        if op == "AND":
            return bool(self._eval(expr.left, row, params)) and bool(
                self._eval(expr.right, row, params)
            )
        if op == "OR":
            return bool(self._eval(expr.left, row, params)) or bool(
                self._eval(expr.right, row, params)
            )
        left = self._eval(expr.left, row, params)
        right = self._eval(expr.right, row, params)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return False
            if isinstance(left, NodeRef) or isinstance(right, NodeRef):
                same = (
                    isinstance(left, NodeRef)
                    and isinstance(right, NodeRef)
                    and left.id == right.id
                )
                if op == "=":
                    return same
                if op == "<>":
                    return not same
                raise CypherRuntimeError("nodes are not ordered")
            return {
                "=": left == right,
                "<>": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        raise CypherRuntimeError(f"unknown operator {op!r}")

    def _eval_scalar_func(
        self, expr: ast.FuncCall, row: dict, params: dict
    ) -> Any:
        if expr.name in AGGREGATE_FUNCS:
            raise CypherRuntimeError(
                f"aggregate {expr.name}() outside RETURN"
            )
        args = [self._eval(a, row, params) for a in expr.args]
        if expr.name == "length":
            (path,) = args
            if not isinstance(path, PathRef):
                raise CypherRuntimeError("length() expects a path")
            return path.length
        if expr.name == "id":
            (ref,) = args
            if isinstance(ref, (NodeRef, RelRef)):
                return ref.id
            raise CypherRuntimeError("id() expects a node or relationship")
        if expr.name == "labels":
            (ref,) = args
            if isinstance(ref, NodeRef):
                return list(self.store.node_labels(ref.id))
            raise CypherRuntimeError("labels() expects a node")
        raise CypherRuntimeError(f"unknown function {expr.name}()")

    # -- MATCH ----------------------------------------------------------------------

    def _match(
        self, rows: list[dict], clause: ast.MatchClause, params: dict
    ) -> list[dict]:
        out: list[dict] = []
        pattern_vars = _pattern_variables(clause.patterns)
        patterns = self._order_patterns(
            list(clause.patterns), set(rows[0]) if rows else set()
        )
        for row in rows:
            matched = False
            for candidate in self._match_patterns(row, patterns, params):
                if clause.where is not None and not self._eval(
                    clause.where, candidate, params
                ):
                    continue
                charge("cypher_row")
                matched = True
                out.append(candidate)
            if not matched and clause.optional:
                padded = dict(row)
                for var in pattern_vars:
                    padded.setdefault(var, None)
                out.append(padded)
        return out

    def _match_patterns(
        self, row: dict, patterns: list[ast.PathPattern], params: dict
    ) -> Iterator[dict]:
        if not patterns:
            yield row
            return
        head, rest = patterns[0], patterns[1:]
        for bound in self._match_one(row, head, params):
            yield from self._match_patterns(bound, rest, params)

    def _match_one(
        self, row: dict, pattern: ast.PathPattern, params: dict
    ) -> Iterator[dict]:
        if pattern.shortest:
            yield from self._match_shortest(row, pattern, params)
            return
        nodes = pattern.nodes
        rels = pattern.rels
        anchor = self._pick_anchor(row, nodes, rels)
        for anchor_id in self._node_candidates(row, nodes[anchor], params):
            base = dict(row)
            if nodes[anchor].var:
                base[nodes[anchor].var] = NodeRef(anchor_id)
            yield from self._expand(
                base, nodes, rels, anchor, anchor_id, frozenset(), params
            )

    def _expand(
        self,
        row: dict,
        nodes: list[ast.NodePattern],
        rels: list[ast.RelPattern],
        anchor: int,
        anchor_id: int,
        used: frozenset,
        params: dict,
    ) -> Iterator[dict]:
        """Expand right of the anchor, then left, backtracking-style."""

        def go_right(
            row: dict, pos: int, node_id: int, used: frozenset
        ) -> Iterator[dict]:
            if pos == len(rels):
                yield from go_left(row, anchor, anchor_node_of(row), used)
                return
            rel = rels[pos]
            target = nodes[pos + 1]
            for new_row, new_used, next_id in self._step(
                row, node_id, rel, target, rel.direction, used, params
            ):
                yield from go_right(new_row, pos + 1, next_id, new_used)

        def anchor_node_of(row: dict) -> int:
            return anchor_id

        def go_left(
            row: dict, pos: int, node_id: int, used: frozenset
        ) -> Iterator[dict]:
            if pos == 0:
                yield row
                return
            rel = rels[pos - 1]
            target = nodes[pos - 1]
            for new_row, new_used, next_id in self._step(
                row, node_id, rel, target, _FLIP[rel.direction], used, params
            ):
                yield from go_left(new_row, pos - 1, next_id, new_used)

        yield from go_right(row, anchor, anchor_id, used)

    def _step(
        self,
        row: dict,
        node_id: int,
        rel: ast.RelPattern,
        target: ast.NodePattern,
        direction: str,
        used: frozenset,
        params: dict,
    ) -> Iterator[tuple[dict, frozenset, int]]:
        """One hop (or var-length expansion) from ``node_id``."""
        rel_type = rel.types[0] if rel.types else None
        store_dir = _TO_DIRECTION[direction]
        if not rel.var_length:
            # neighbors() serves the whole adjacency list from the
            # store's neighborhood cache when it is enabled
            for rel_id, other in self.store.neighbors(
                node_id, rel_type, store_dir
            ):
                if rel_id in used:
                    continue
                if rel.props and not self._props_match(
                    self.store.rel_props(rel_id), rel.props, row, params
                ):
                    continue
                if not self._node_matches(other, target, row, params):
                    continue
                new_row = dict(row)
                if rel.var:
                    new_row[rel.var] = RelRef(rel_id)
                if target.var:
                    new_row[target.var] = NodeRef(other)
                yield new_row, used | {rel_id}, other
            return
        if rel.max_hops < 0:
            raise CypherRuntimeError(
                "unbounded variable-length patterns require shortestPath()"
            )
        if rel.var:
            raise CypherRuntimeError(
                "binding a variable-length relationship is not supported"
            )
        # DFS over simple paths of allowed depth
        stack = [(node_id, 0, used, frozenset({node_id}))]
        while stack:
            current, depth, path_used, visited = stack.pop()
            if depth >= rel.max_hops:
                continue
            for rel_id, other in self.store.relationships(
                current, rel_type, store_dir
            ):
                if rel_id in path_used or other in visited:
                    continue
                next_used = path_used | {rel_id}
                if depth + 1 >= rel.min_hops and self._node_matches(
                    other, target, row, params
                ):
                    new_row = dict(row)
                    if target.var:
                        new_row[target.var] = NodeRef(other)
                    yield new_row, next_used, other
                stack.append(
                    (other, depth + 1, next_used, visited | {other})
                )

    # -- shortestPath ----------------------------------------------------------------

    def _match_shortest(
        self, row: dict, pattern: ast.PathPattern, params: dict
    ) -> Iterator[dict]:
        nodes = pattern.nodes
        rels = pattern.rels
        if len(nodes) != 2 or len(rels) != 1:
            raise CypherRuntimeError(
                "shortestPath() expects a single relationship pattern"
            )
        rel = rels[0]
        sources = self._node_candidates(row, nodes[0], params)
        targets = self._node_candidates(row, nodes[1], params)
        if not sources or not targets:
            return
        if len(sources) > 1 or len(targets) > 1:
            raise CypherRuntimeError(
                "shortestPath() endpoints must be uniquely identified"
            )
        source, target = sources[0], targets[0]
        path = self._bfs_shortest(source, target, rel)
        if path is None:
            return
        new_row = dict(row)
        if nodes[0].var:
            new_row[nodes[0].var] = NodeRef(source)
        if nodes[1].var:
            new_row[nodes[1].var] = NodeRef(target)
        if pattern.assign_var:
            new_row[pattern.assign_var] = PathRef(path, len(path) - 1)
        yield new_row

    def _bfs_shortest(
        self, source: int, target: int, rel: ast.RelPattern
    ) -> tuple[int, ...] | None:
        """Bidirectional BFS over the relationship chains (index-free)."""
        if source == target:
            return (source,)
        rel_type = rel.types[0] if rel.types else None
        max_hops = rel.max_hops if rel.max_hops > 0 else 128
        fwd_dir = _TO_DIRECTION[rel.direction]
        bwd_dir = _TO_DIRECTION[_FLIP[rel.direction]]
        parent_f: dict[int, int | None] = {source: None}
        parent_b: dict[int, int | None] = {target: None}
        frontier_f, frontier_b = [source], [target]
        hops = 0
        while frontier_f and frontier_b and hops < max_hops:
            hops += 1
            if len(frontier_f) <= len(frontier_b):
                frontier, parents, others, direction, forward = (
                    frontier_f, parent_f, parent_b, fwd_dir, True,
                )
            else:
                frontier, parents, others, direction, forward = (
                    frontier_b, parent_b, parent_f, bwd_dir, False,
                )
            next_frontier: list[int] = []
            meet: int | None = None
            for node in frontier:
                for _rel_id, other in self.store.neighbors(
                    node, rel_type, direction
                ):
                    if other not in parents:
                        parents[other] = node
                        next_frontier.append(other)
                    if other in others and meet is None:
                        meet = other
            if meet is not None:
                return self._stitch(meet, parent_f, parent_b)
            if forward:
                frontier_f = next_frontier
            else:
                frontier_b = next_frontier
        return None

    @staticmethod
    def _stitch(
        meet: int,
        parent_f: dict[int, int | None],
        parent_b: dict[int, int | None],
    ) -> tuple[int, ...]:
        left: list[int] = []
        node: int | None = meet
        while node is not None:
            left.append(node)
            node = parent_f[node]
        left.reverse()
        node = parent_b[meet]
        while node is not None:
            left.append(node)
            node = parent_b[node]
        return tuple(left)

    # -- candidates / filters ------------------------------------------------------------

    def _pick_anchor(
        self,
        row: dict,
        nodes: list[ast.NodePattern],
        rels: list[ast.RelPattern],
    ) -> int:
        if self.stats is not None:
            bound = {
                node.var
                for node in nodes
                if node.var and isinstance(row.get(node.var), NodeRef)
            }
            best, best_cost = 0, self._chain_cost(nodes, rels, 0, bound)
            for i in range(1, len(nodes)):
                cost = self._chain_cost(nodes, rels, i, bound)
                if cost < best_cost:
                    best, best_cost = i, cost
            return best
        # stats-free heuristic: bound > indexed > labelled > first
        for i, node in enumerate(nodes):  # already-bound variable
            if node.var and isinstance(row.get(node.var), NodeRef):
                return i
        for i, node in enumerate(nodes):  # indexed label+prop equality
            for label in node.labels:
                for key, _ in node.props:
                    if self.store.has_index(label, key):
                        return i
        for i, node in enumerate(nodes):  # any label to scan
            if node.labels:
                return i
        return 0

    # -- cost estimation (requires ANALYZE) -----------------------------------

    def _order_patterns(
        self, patterns: list[ast.PathPattern], bound: set[str]
    ) -> list[ast.PathPattern]:
        """Cheapest-first ordering of a MATCH clause's path patterns.

        Patterns in one MATCH are an inner join, so order cannot change
        the result set — only how many partial rows get enumerated.
        Greedy: pick the pattern with the smallest estimated row count,
        treating variables bound by already-picked patterns as bound.
        """
        if self.stats is None or len(patterns) < 2:
            return patterns
        bound = set(bound)
        ordered: list[ast.PathPattern] = []
        remaining = list(patterns)
        while remaining:
            best = remaining[0]
            best_cost = self._pattern_cost(best, bound)
            for pattern in remaining[1:]:
                cost = self._pattern_cost(pattern, bound)
                if cost < best_cost:
                    best, best_cost = pattern, cost
            ordered.append(best)
            remaining.remove(best)
            for element in best.elements:
                var = getattr(element, "var", None)
                if var:
                    bound.add(var)
            if best.assign_var:
                bound.add(best.assign_var)
        return ordered

    def _pattern_cost(
        self, pattern: ast.PathPattern, bound: set[str]
    ) -> float:
        if pattern.shortest:
            return 1.0  # endpoints must be uniquely identified anyway
        nodes = list(pattern.nodes)
        rels = list(pattern.rels)
        return min(
            self._chain_cost(nodes, rels, i, bound)
            for i in range(len(nodes))
        )

    def _chain_cost(
        self,
        nodes: list[ast.NodePattern],
        rels: list[ast.RelPattern],
        anchor: int,
        bound: set[str],
    ) -> float:
        """Estimated rows from anchoring at ``nodes[anchor]``.

        Anchor candidate count times the average fan-out of every hop in
        the direction it is traversed (right of the anchor as written,
        left of it flipped).
        """
        assert self.stats is not None
        cost = self._anchor_estimate(nodes[anchor], bound)
        for pos in range(anchor, len(rels)):  # expanding right
            cost *= self._hop_degree(rels[pos], flipped=False)
        for pos in range(anchor - 1, -1, -1):  # expanding left
            cost *= self._hop_degree(rels[pos], flipped=True)
        return cost

    def _anchor_estimate(
        self, node: ast.NodePattern, bound: set[str]
    ) -> float:
        assert self.stats is not None
        if node.var and node.var in bound:
            return 0.5  # a bound ref beats even a unique index lookup
        for label in node.labels:
            label_count = self.stats.label_count(label)
            if label_count is None:
                label_count = self.store.label_count(label)
            for key, _ in node.props:
                if self.store.has_index(label, key):
                    distinct = self.stats.prop_distinct.get((label, key))
                    return max(
                        label_count / max(distinct or label_count, 1), 1.0
                    )
        if node.labels:
            label_count = self.stats.label_count(node.labels[0])
            if label_count is None:
                label_count = self.store.label_count(node.labels[0])
            return float(max(label_count, 1))
        return float(max(self.stats.node_count, 1))

    def _hop_degree(self, rel: ast.RelPattern, flipped: bool) -> float:
        assert self.stats is not None
        rel_type = rel.types[0] if rel.types else None
        direction = _FLIP[rel.direction] if flipped else rel.direction
        degree = max(self.stats.avg_degree(rel_type, direction), 0.1)
        if rel.var_length and rel.max_hops > 1:
            degree = degree ** min(rel.max_hops, 4)
        return degree

    def _node_candidates(
        self, row: dict, node: ast.NodePattern, params: dict
    ) -> list[int]:
        if node.var and isinstance(row.get(node.var), NodeRef):
            candidate = row[node.var].id
            return (
                [candidate]
                if self._node_matches(candidate, node, row, params)
                else []
            )
        for label in node.labels:
            for key, expr in node.props:
                if self.store.has_index(label, key):
                    value = self._eval(expr, row, params)
                    return [
                        nid
                        for nid in self.store.lookup(label, key, value)
                        if self._node_matches(nid, node, row, params)
                    ]
        if node.labels:
            source = self.store.nodes_with_label(node.labels[0])
        else:
            source = self.store.all_nodes()
        return [
            nid for nid in source if self._node_matches(nid, node, row, params)
        ]

    def _node_matches(
        self, node_id: int, pattern: ast.NodePattern, row: dict, params: dict
    ) -> bool:
        if pattern.var:
            bound = row.get(pattern.var)
            if isinstance(bound, NodeRef) and bound.id != node_id:
                return False
        if pattern.labels:
            labels = self.store.node_labels(node_id)
            if not all(label in labels for label in pattern.labels):
                return False
        if pattern.props:
            props = self.store.node_props(node_id)
            if not self._props_match(props, pattern.props, row, params):
                return False
        return True

    def _props_match(
        self,
        props: dict,
        wanted: tuple[tuple[str, ast.Expr], ...],
        row: dict,
        params: dict,
    ) -> bool:
        return all(
            props.get(key) == self._eval(expr, row, params)
            for key, expr in wanted
        )

    # -- CREATE / SET --------------------------------------------------------------------

    def _create(
        self,
        rows: list[dict],
        clause: ast.CreateClause,
        params: dict,
        summary: WriteSummary,
    ) -> list[dict]:
        out = []
        for row in rows:
            new_row = dict(row)
            for pattern in clause.patterns:
                if pattern.shortest:
                    raise CypherRuntimeError("cannot CREATE a shortestPath")
                nodes = pattern.nodes
                rels = pattern.rels
                node_ids: list[int] = []
                for node in nodes:
                    bound = new_row.get(node.var) if node.var else None
                    if isinstance(bound, NodeRef):
                        node_ids.append(bound.id)
                        continue
                    props = {
                        key: self._eval(expr, new_row, params)
                        for key, expr in node.props
                    }
                    node_id = self.store.create_node(node.labels, props)
                    summary.nodes_created += 1
                    if node.var:
                        new_row[node.var] = NodeRef(node_id)
                    node_ids.append(node_id)
                for i, rel in enumerate(rels):
                    if rel.direction == "both":
                        raise CypherRuntimeError(
                            "CREATE requires a directed relationship"
                        )
                    if len(rel.types) != 1:
                        raise CypherRuntimeError(
                            "CREATE requires exactly one relationship type"
                        )
                    props = {
                        key: self._eval(expr, new_row, params)
                        for key, expr in rel.props
                    }
                    start, end = node_ids[i], node_ids[i + 1]
                    if rel.direction == "in":
                        start, end = end, start
                    rel_id = self.store.create_rel(
                        rel.types[0], start, end, props
                    )
                    summary.relationships_created += 1
                    if rel.var:
                        new_row[rel.var] = RelRef(rel_id)
            charge("cypher_row")
            out.append(new_row)
        return out

    def _set(
        self,
        rows: list[dict],
        clause: ast.SetClause,
        params: dict,
        summary: WriteSummary,
    ) -> list[dict]:
        for row in rows:
            for item in clause.items:
                target = row.get(item.target.var)
                if not isinstance(target, NodeRef):
                    raise CypherRuntimeError(
                        f"SET target {item.target.var!r} is not a node"
                    )
                value = self._eval(item.value, row, params)
                self.store.set_node_prop(target.id, item.target.key, value)
                summary.properties_set += 1
        return rows

    # -- RETURN -----------------------------------------------------------------------------

    def _project(
        self, rows: list[dict], returns: ast.ReturnClause, params: dict
    ) -> list[tuple]:
        has_aggregates = any(
            _contains_aggregate(item.expr) for item in returns.items
        )
        aliases = [
            item.alias or _expr_name(item.expr) for item in returns.items
        ]
        if has_aggregates:
            projected = self._aggregate(rows, returns, params)
        else:
            projected = []
            for row in rows:
                charge("cypher_row")
                projected.append(
                    tuple(
                        self._materialize(
                            self._eval(item.expr, row, params)
                        )
                        for item in returns.items
                    )
                )
        if returns.distinct:
            seen = set()
            unique = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique
        if returns.order_by:
            projected = self._order(projected, returns, aliases, params)
        if returns.limit is not None:
            projected = projected[: returns.limit]
        return projected

    def _materialize(self, value: Any) -> Any:
        """Nodes returned whole become property maps (as drivers do)."""
        if isinstance(value, NodeRef):
            return tuple(sorted(self.store.node_props(value.id).items()))
        if isinstance(value, RelRef):
            return tuple(sorted(self.store.rel_props(value.id).items()))
        if isinstance(value, PathRef):
            return value
        if isinstance(value, list):
            return tuple(value)
        return value

    def _aggregate(
        self, rows: list[dict], returns: ast.ReturnClause, params: dict
    ) -> list[tuple]:
        key_items = [
            (i, item)
            for i, item in enumerate(returns.items)
            if not _contains_aggregate(item.expr)
        ]
        agg_items = [
            (i, item)
            for i, item in enumerate(returns.items)
            if _contains_aggregate(item.expr)
        ]
        groups: dict[tuple, list] = {}
        for row in rows:
            charge("cypher_row")
            key = tuple(
                self._materialize(self._eval(item.expr, row, params))
                for _, item in key_items
            )
            states = groups.get(key)
            if states is None:
                states = [_AggState(item.expr) for _, item in agg_items]
                groups[key] = states
            for state in states:
                state.feed(self, row, params)
        if not groups and not key_items:
            states = [_AggState(item.expr) for _, item in agg_items]
            groups[()] = states
        out = []
        for key, states in groups.items():
            values: list[Any] = [None] * len(returns.items)
            for (i, _), value in zip(key_items, key):
                values[i] = value
            for (i, _), state in zip(agg_items, states):
                values[i] = state.result()
            out.append(tuple(values))
        return out

    def _order(
        self,
        projected: list[tuple],
        returns: ast.ReturnClause,
        aliases: list[str],
        params: dict,
    ) -> list[tuple]:
        def key_for(order_item: ast.OrderItem) -> Callable[[tuple], Any]:
            expr = order_item.expr
            if isinstance(expr, ast.VarRef) and expr.name in aliases:
                idx = aliases.index(expr.name)
                return lambda row: _null_safe(row[idx])
            if isinstance(expr, ast.PropAccess):
                name = f"{expr.var}.{expr.key}"
                if name in aliases:
                    idx = aliases.index(name)
                    return lambda row: _null_safe(row[idx])
            raise CypherRuntimeError(
                "ORDER BY must reference a returned column or its alias"
            )

        ordered = list(projected)
        for order_item in reversed(returns.order_by):
            ordered.sort(
                key=key_for(order_item), reverse=order_item.descending
            )
        return ordered


class _AggState:
    def __init__(self, expr: ast.Expr) -> None:
        if not isinstance(expr, ast.FuncCall):
            raise CypherRuntimeError(
                "aggregates cannot be nested in expressions"
            )
        self.func = expr.name
        self.expr = expr
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.items: list = []
        self.seen: set | None = set() if expr.distinct else None

    def feed(self, executor: CypherExecutor, row: dict, params: dict) -> None:
        if self.expr.star:
            self.count += 1
            return
        value = executor._eval(self.expr.args[0], row, params)
        value = executor._materialize(value)
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        self.items.append(value)
        self.total = value if self.total is None else self.total + value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        if self.func == "avg":
            return None if not self.count else self.total / self.count
        if self.func == "collect":
            return tuple(self.items)
        raise CypherRuntimeError(f"unknown aggregate {self.func}()")


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.FuncCall):
        if expr.name in AGGREGATE_FUNCS:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(
            expr.right
        )
    if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        return _contains_aggregate(expr.operand)
    return False


def _expr_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.PropAccess):
        return f"{expr.var}.{expr.key}"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return f"{expr.name}(...)"
    return "expr"


def _null_safe(value: Any) -> tuple:
    return (value is not None, value)


def _pattern_variables(patterns: tuple[ast.PathPattern, ...]) -> list[str]:
    out = []
    for pattern in patterns:
        if pattern.assign_var:
            out.append(pattern.assign_var)
        for element in pattern.elements:
            if getattr(element, "var", None):
                out.append(element.var)
    return out
