"""Cypher front end for the native graph engine.

Supported surface (the subset the LDBC SNB interactive queries need)::

    MATCH (p:Person {id: $id})-[:KNOWS*1..2]-(f:Person)
    WHERE f.id <> $id
    RETURN DISTINCT f.id AS id, f.firstName AS name
    ORDER BY name LIMIT 20

    MATCH path = shortestPath((a:Person {id:$a})-[:KNOWS*]-(b:Person {id:$b}))
    RETURN length(path)

    MATCH (f:Forum {id: $f}), (p:Person {id: $p})
    CREATE (f)-[:HAS_MEMBER {joinDate: $d}]->(p)

Aggregation uses Cypher's implicit grouping (non-aggregated return items
form the group key).
"""

from repro.graphdb.cypher.parser import CypherParseError, parse
from repro.graphdb.cypher.executor import CypherExecutor, CypherRuntimeError

__all__ = ["parse", "CypherParseError", "CypherExecutor", "CypherRuntimeError"]
