"""Recursive-descent parser for the Cypher subset."""

from __future__ import annotations

from repro.graphdb.cypher import ast
from repro.graphdb.cypher.lexer import Token, tokenize


class CypherParseError(Exception):
    pass


def parse(text: str) -> ast.Query:
    parser = _Parser(tokenize(text))
    query = parser.query()
    parser.expect("eof")
    return query


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def check(self, kind: str, value: object = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: object = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        if not self.check(kind, value):
            token = self.current
            want = value if value is not None else kind
            raise CypherParseError(
                f"expected {want!r}, got {token.kind} {token.value!r} "
                f"at position {token.pos}"
            )
        return self.advance()

    def keyword(self, word: str) -> bool:
        return self.accept("keyword", word) is not None

    def ident(self) -> str:
        return str(self.expect("ident").value)

    # -- query structure ----------------------------------------------------

    def query(self) -> ast.Query:
        clauses: list = []
        returns = None
        while True:
            if self.check("keyword", "optional") or self.check(
                "keyword", "match"
            ):
                optional = self.keyword("optional")
                self.expect("keyword", "match")
                patterns = self.pattern_list()
                where = self.expression() if self.keyword("where") else None
                clauses.append(
                    ast.MatchClause(tuple(patterns), where, optional)
                )
            elif self.keyword("create"):
                clauses.append(ast.CreateClause(tuple(self.pattern_list())))
            elif self.keyword("set"):
                clauses.append(self.set_clause())
            elif self.keyword("return"):
                returns = self.return_clause()
                break
            else:
                break
        if not clauses and returns is None:
            raise CypherParseError("empty query")
        return ast.Query(tuple(clauses), returns)

    def set_clause(self) -> ast.SetClause:
        items = [self.set_item()]
        while self.accept("comma"):
            items.append(self.set_item())
        return ast.SetClause(tuple(items))

    def set_item(self) -> ast.SetItem:
        var = self.ident()
        self.expect("dot")
        key = self.ident()
        self.expect("eq")
        return ast.SetItem(ast.PropAccess(var, key), self.expression())

    def return_clause(self) -> ast.ReturnClause:
        distinct = self.keyword("distinct")
        items = [self.return_item()]
        while self.accept("comma"):
            items.append(self.return_item())
        order_by: list[ast.OrderItem] = []
        if self.keyword("order"):
            self.expect("keyword", "by")
            order_by.append(self.order_item())
            while self.accept("comma"):
                order_by.append(self.order_item())
        limit = None
        if self.keyword("limit"):
            limit = int(self.expect("number").value)
        return ast.ReturnClause(
            tuple(items), distinct, tuple(order_by), limit
        )

    def return_item(self) -> ast.ReturnItem:
        expr = self.expression()
        alias = None
        if self.keyword("as"):
            alias = self.ident()
        return ast.ReturnItem(expr, alias)

    def order_item(self) -> ast.OrderItem:
        expr = self.expression()
        descending = False
        if self.keyword("desc"):
            descending = True
        else:
            self.keyword("asc")
        return ast.OrderItem(expr, descending)

    # -- patterns ---------------------------------------------------------------

    def pattern_list(self) -> list[ast.PathPattern]:
        patterns = [self.path_pattern()]
        while self.accept("comma"):
            patterns.append(self.path_pattern())
        return patterns

    def path_pattern(self) -> ast.PathPattern:
        assign_var = None
        # "p = shortestPath((a)-[...]-(b))" or "p = (a)-[...]-(b)"
        if (
            self.check("ident")
            and self._tokens[self._pos + 1].kind == "eq"
        ):
            assign_var = self.ident()
            self.advance()  # eq
        shortest = False
        if self.check("ident") and str(self.current.value).lower() in (
            "shortestpath",
            "allshortestpaths",
        ):
            self.advance()
            shortest = True
            self.expect("lparen")
            elements = self.chain()
            self.expect("rparen")
        else:
            elements = self.chain()
        return ast.PathPattern(tuple(elements), assign_var, shortest)

    def chain(self) -> list:
        elements: list = [self.node_pattern()]
        while self.check("minus") or self.check("arrow_left"):
            elements.append(self.rel_pattern())
            elements.append(self.node_pattern())
        return elements

    def node_pattern(self) -> ast.NodePattern:
        self.expect("lparen")
        var = None
        if self.check("ident"):
            var = self.ident()
        labels: list[str] = []
        while self.accept("colon"):
            labels.append(self.ident())
        props = self.prop_map() if self.check("lbrace") else ()
        self.expect("rparen")
        return ast.NodePattern(var, tuple(labels), props)

    def rel_pattern(self) -> ast.RelPattern:
        if self.accept("arrow_left"):
            incoming = True
        else:
            self.expect("minus")
            incoming = False
        var = None
        types: list[str] = []
        min_hops, max_hops = 1, 1
        props: tuple = ()
        if self.accept("lbracket"):
            if self.check("ident"):
                var = self.ident()
            while self.accept("colon"):
                types.append(self.ident())
            if self.accept("star"):
                min_hops, max_hops = self._hop_range()
            if self.check("lbrace"):
                props = self.prop_map()
            self.expect("rbracket")
        if self.accept("arrow_right"):
            outgoing = True
        else:
            self.expect("minus")
            outgoing = False
        if incoming and outgoing:
            raise CypherParseError("relationship cannot point both ways")
        direction = "in" if incoming else "out" if outgoing else "both"
        return ast.RelPattern(
            var, tuple(types), direction, min_hops, max_hops, props
        )

    def _hop_range(self) -> tuple[int, int]:
        # after '*': [n][..[m]] ; bare '*' means 1..unbounded
        if self.check("number"):
            lo = int(self.advance().value)
            if self.accept("dotdot"):
                if self.check("number"):
                    return lo, int(self.advance().value)
                return lo, -1
            return lo, lo
        if self.accept("dotdot"):
            if self.check("number"):
                return 1, int(self.advance().value)
            return 1, -1
        return 1, -1

    def prop_map(self) -> tuple[tuple[str, ast.Expr], ...]:
        self.expect("lbrace")
        items: list[tuple[str, ast.Expr]] = []
        if not self.check("rbrace"):
            while True:
                key = self.ident()
                self.expect("colon")
                items.append((key, self.expression()))
                if not self.accept("comma"):
                    break
        self.expect("rbrace")
        return tuple(items)

    # -- expressions --------------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self.keyword("or"):
            left = ast.BinaryOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> ast.Expr:
        left = self.not_expr()
        while self.keyword("and"):
            left = ast.BinaryOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> ast.Expr:
        if self.keyword("not"):
            return ast.UnaryOp("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expr:
        left = self.additive()
        if self.check("op"):
            op = str(self.advance().value)
            return ast.BinaryOp(op, left, self.additive())
        if self.accept("eq"):
            return ast.BinaryOp("=", left, self.additive())
        if self.keyword("is"):
            negated = self.keyword("not")
            self.expect("keyword", "null")
            return ast.IsNull(left, negated)
        return left

    def additive(self) -> ast.Expr:
        left = self.multiplicative()
        while True:
            if self.accept("plus"):
                left = ast.BinaryOp("+", left, self.multiplicative())
            elif self.accept("minus"):
                left = ast.BinaryOp("-", left, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> ast.Expr:
        left = self.unary()
        while True:
            if self.accept("star"):
                left = ast.BinaryOp("*", left, self.unary())
            elif self.accept("slash"):
                left = ast.BinaryOp("/", left, self.unary())
            else:
                return left

    def unary(self) -> ast.Expr:
        if self.accept("minus"):
            return ast.UnaryOp("-", self.unary())
        return self.primary()

    def primary(self) -> ast.Expr:
        if self.accept("lparen"):
            expr = self.expression()
            self.expect("rparen")
            return expr
        if self.check("number") or self.check("string"):
            return ast.Literal(self.advance().value)
        if self.accept("dollar"):
            return ast.Param(self.ident())
        if self.keyword("null"):
            return ast.Literal(None)
        if self.keyword("true"):
            return ast.Literal(True)
        if self.keyword("false"):
            return ast.Literal(False)
        if self.check("ident"):
            name = self.ident()
            if self.accept("lparen"):
                return self.func_call(name)
            if self.accept("dot"):
                return ast.PropAccess(name, self.ident())
            return ast.VarRef(name)
        token = self.current
        raise CypherParseError(
            f"unexpected token {token.value!r} at position {token.pos}"
        )

    def func_call(self, name: str) -> ast.FuncCall:
        lname = name.lower()
        if self.accept("star"):
            self.expect("rparen")
            return ast.FuncCall(lname, (), star=True)
        if self.accept("rparen"):
            return ast.FuncCall(lname, ())
        distinct = self.keyword("distinct")
        args = [self.expression()]
        while self.accept("comma"):
            args.append(self.expression())
        self.expect("rparen")
        return ast.FuncCall(lname, tuple(args), distinct=distinct)
