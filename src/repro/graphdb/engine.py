"""The Neo4j-like database facade: Cypher in, rows out.

Adds the operational envelope around the store + executor:

* statement cache (parse once per query text; ``cypher_parse`` /
  ``cypher_plan`` charged on miss),
* WAL appends per write + group-commit fsync per statement,
* a dirty-record counter consumed by the periodic checkpointer — the
  Figure 3 harness turns each checkpoint into a write stall, reproducing
  the paper's "sudden drops due to checkpointing".
"""

from __future__ import annotations

from typing import Any

from repro.graphdb.cypher import ast as cypher_ast
from repro.graphdb.cypher.executor import CypherExecutor, WriteSummary
from repro.graphdb.cypher.parser import parse
from repro.graphdb.store import GraphStore
from repro.simclock.ledger import charge
from repro.storage.wal import WriteAheadLog


class GraphDatabase:
    def __init__(self, name: str = "neo4j") -> None:
        self.name = name
        self.store = GraphStore(name)
        self.wal = WriteAheadLog(f"{name}-wal")
        self.executor = CypherExecutor(self.store)
        self._stmt_cache: dict[str, cypher_ast.Query] = {}
        self.dirty_records = 0
        self.checkpoint_count = 0
        self.statements_executed = 0

    # -- Cypher ------------------------------------------------------------------

    def execute(
        self, cypher: str, params: dict[str, Any] | None = None
    ) -> list[tuple]:
        """Run one Cypher statement; returns result rows (empty for writes)."""
        self.statements_executed += 1
        charge("cypher_exec")
        query = self._stmt_cache.get(cypher)
        if query is None:
            charge("cypher_parse")
            charge("cypher_plan")
            query = parse(cypher)
            self._stmt_cache[cypher] = query
        rows, summary = self.executor.run(query, params)
        self._log_writes(summary)
        return rows

    def _log_writes(self, summary: WriteSummary) -> None:
        writes = (
            summary.nodes_created
            + summary.relationships_created
            + summary.properties_set
        )
        if not writes:
            return
        for _ in range(writes):
            self.wal.append(b"w")
        self.wal.commit()  # group commit: one fsync per statement
        self.dirty_records += writes

    # -- operations -----------------------------------------------------------------

    def create_index(self, label: str, prop: str) -> None:
        self.store.create_index(label, prop)
        if self.executor.stats is not None:
            # keep index cardinalities in sync with the new access path
            self.analyze()

    def analyze(self) -> None:
        """Refresh graph statistics used by MATCH anchor/order selection."""
        charge("graph_analyze")
        self.executor.stats = self.store.collect_statistics()

    def checkpoint(self) -> int:
        """Flush dirty records; returns how many were written back."""
        flushed = self.dirty_records
        charge("page_write", max(1, flushed // 100))
        self.dirty_records = 0
        self.checkpoint_count += 1
        return flushed

    def size_bytes(self) -> int:
        return self.store.size_bytes()
