"""The Neo4j-like database facade: Cypher in, rows out.

Adds the operational envelope around the store + executor:

* statement cache (parse once per query text; ``cypher_parse`` /
  ``cypher_plan`` charged on miss).  The cached object bundles the plan,
  which depends on indexes and statistics, so the cache is epoch-keyed:
  ``create_index`` / ``analyze`` bump the epoch and force a re-plan,
* WAL appends per write + group-commit fsync per statement (or per
  batch, under :meth:`write_batch`),
* a dirty-record counter consumed by the periodic checkpointer — the
  Figure 3 harness turns each checkpoint into a write stall, reproducing
  the paper's "sudden drops due to checkpointing".
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.cache import CacheStats, EpochKeyedCache
from repro.exec.errors import CompileError
from repro.graphdb.cypher import ast
from repro.graphdb.cypher.executor import CypherExecutor, WriteSummary
from repro.graphdb.cypher.parser import parse
from repro.graphdb.store import GraphStore
from repro.simclock.ledger import charge
from repro.storage.wal import WriteAheadLog
from repro.txn import oracle

#: closure-cache sentinel: this statement cannot be compiled (a write,
#: shortestPath, ...) — skip straight to the interpreter on every run
_INTERPRET = object()


def _is_read_only(query: Any) -> bool:
    """Whether the parsed query carries no write clauses."""
    return not any(
        isinstance(clause, (ast.CreateClause, ast.SetClause))
        for clause in query.clauses
    )


class GraphDatabase:
    def __init__(
        self, name: str = "neo4j", execution_mode: str = "compiled"
    ) -> None:
        if execution_mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {execution_mode!r}")
        self.name = name
        self.execution_mode = execution_mode
        self.isolation_level = "snapshot"
        self.store = GraphStore(name)
        self.wal = WriteAheadLog(f"{name}-wal")
        self.executor = CypherExecutor(self.store)
        #: cypher text -> (epoch, parsed+planned query); the plan half
        #: depends on indexes + stats, so DDL/ANALYZE bump the epoch
        self._stmt_cache = EpochKeyedCache(4096, name="cypher-plans")
        #: cypher text -> compiled closure (or the interpreter sentinel);
        #: invalidated in lockstep with the statement cache
        self._closure_cache = EpochKeyedCache(4096, name="cypher-closures")
        self.dirty_records = 0
        self.checkpoint_count = 0
        self.statements_executed = 0

    # -- Cypher ------------------------------------------------------------------

    def execute(
        self, cypher: str, params: dict[str, Any] | None = None
    ) -> list[tuple]:
        """Run one Cypher statement; returns result rows (empty for writes)."""
        self.statements_executed += 1
        if self.execution_mode == "compiled":
            # deferred: repro.exec.cypherc imports this package's AST,
            # so a top-level import would be circular
            from repro.exec.cypherc import compile_query

            fn = self._closure_cache.lookup(cypher)
            if fn is None:
                query = self._parse_cached(cypher)
                charge("closure_compile")
                try:
                    fn = compile_query(query, self.store, self.executor.stats)
                except CompileError:
                    fn = _INTERPRET
                self._closure_cache.store(cypher, fn)
            if fn is not _INTERPRET:
                # compiled closures are read-only by construction (write
                # clauses fall back to the interpreter), so every run
                # gets a snapshot view
                charge("compiled_exec")
                with oracle.read_view(self.isolation_level):
                    rows, _summary = fn(params)
                return rows
        charge("cypher_exec")
        query = self._parse_cached(cypher)
        if _is_read_only(query):
            with oracle.read_view(self.isolation_level):
                rows, summary = self.executor.run(query, params)
        else:
            rows, summary = self.executor.run(query, params)
        self._log_writes(summary)
        return rows

    def _parse_cached(self, cypher: str) -> Any:
        query = self._stmt_cache.lookup(cypher)
        if query is None:
            charge("cypher_parse")
            charge("cypher_plan")
            query = parse(cypher)
            self._stmt_cache.store(cypher, query)
        return query

    def set_execution_mode(self, mode: str) -> None:
        """Switch between ``interpreted`` and ``compiled`` execution."""
        if mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {mode!r}")
        self.execution_mode = mode

    def set_isolation_level(self, level: str) -> None:
        """``snapshot`` (readers never block) or ``read-committed``."""
        oracle.check_isolation_level(level)
        self.isolation_level = level

    def _log_writes(self, summary: WriteSummary) -> None:
        writes = (
            summary.nodes_created
            + summary.relationships_created
            + summary.properties_set
        )
        if not writes:
            return
        for _ in range(writes):
            self.wal.append(b"w")
        self.wal.commit()  # group commit: one fsync per statement
        self.dirty_records += writes

    @contextmanager
    def write_batch(self) -> Iterator[None]:
        """Group several statements' WAL records under one fsync."""
        with self.wal.group():
            yield

    # -- operations -----------------------------------------------------------------

    def create_index(self, label: str, prop: str) -> None:
        self.store.create_index(label, prop)
        self._stmt_cache.bump_epoch()  # cached plans may prefer the new index
        self._closure_cache.bump_epoch()  # compiled anchors likewise
        if self.executor.stats is not None:
            # keep index cardinalities in sync with the new access path
            self.analyze()

    def analyze(self) -> None:
        """Refresh graph statistics used by MATCH anchor/order selection."""
        charge("graph_analyze")
        self.executor.stats = self.store.collect_statistics()
        self._stmt_cache.bump_epoch()
        self._closure_cache.bump_epoch()
        # whole-cache fallback: bulk loads end with ANALYZE, so this also
        # clears neighborhoods populated mid-load
        self.store.invalidate_caches()

    def checkpoint(self) -> int:
        """Flush dirty records; returns how many were written back."""
        flushed = self.dirty_records
        charge("page_write", max(1, flushed // 100))
        self.dirty_records = 0
        self.checkpoint_count += 1
        return flushed

    def enable_adjacency_cache(self, capacity: int = 4096) -> None:
        """Opt into the store's neighborhood cache (off by default)."""
        self.store.enable_neighborhood_cache(capacity)

    def cache_stats(self) -> list[CacheStats]:
        """Uniform cache counters (shared facade across all dialects)."""
        rows = [self._stmt_cache.stats(), self._closure_cache.stats()]
        rows.extend(self.store.cache_stats())
        return rows

    def size_bytes(self) -> int:
        return self.store.size_bytes()
