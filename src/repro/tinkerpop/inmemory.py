"""TinkerGraph: the in-memory reference provider (tests and embedding)."""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.sanitizer import runtime
from repro.simclock.ledger import charge
from repro.storage.mvcc import VersionStore
from repro.tinkerpop.structure import GraphProvider


class TinkerGraphProvider(GraphProvider):
    """Dict-backed provider; the cheapest possible compliant backend."""

    name = "tinkergraph"

    def __init__(self) -> None:
        self._vertex_labels: dict[int, str] = {}
        self._vertex_props: dict[int, dict[str, Any]] = {}
        self._edge_labels: dict[int, str] = {}
        self._edge_props: dict[int, dict[str, Any]] = {}
        self._edge_ends: dict[int, tuple[int, int]] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._indexes: dict[tuple[str, str], dict[Any, list[int]]] = {}
        # version metadata keyed ("v", vid) / ("e", eid); the SPI has no
        # deletes, so only stamps and property-update chains occur
        self.mvcc = VersionStore("tinkergraph-mvcc")
        self._next_vid = 0
        self._next_eid = 0

    # -- index management ------------------------------------------------------

    def create_index(self, label: str, key: str) -> None:
        if (label, key) in self._indexes:
            return
        index: dict[Any, list[int]] = {}
        for vid, vlabel in self._vertex_labels.items():
            if vlabel == label:
                value = self._vertex_props[vid].get(key)
                if value is not None:
                    index.setdefault(value, []).append(vid)
        self._indexes[(label, key)] = index

    def has_lookup_index(self, label: str, key: str) -> bool:
        return (label, key) in self._indexes

    def lookup(self, label: str, key: str, value: Any) -> list[Any]:
        """Vertex ids with ``label`` and ``key == value`` via the index.

        Index entries are unversioned; under a held snapshot a
        ``set_vertex_prop`` after the snapshot began may have re-filed an
        entry, so stamped-after-snapshot vertices (``mvcc.stale_keys()``)
        are re-checked against their snapshot-visible property map.
        """
        charge("hash_probe")
        index = self._indexes.get((label, key))
        if index is None:
            raise KeyError(f"no index on {label}.{key}")
        hits = [
            v for v in index.get(value, ()) if self.mvcc.visible(("v", v))
        ]
        stale = [k for k in self.mvcc.stale_keys() if k[0] == "v"]
        if not stale:
            return hits
        kept = []
        for vid in hits:
            if self.mvcc.stale(("v", vid)):
                props = self.mvcc.read(("v", vid), self._vertex_props[vid])
                if props.get(key) != value:
                    continue
            kept.append(vid)
        seen = set(kept)
        for _, vid in stale:
            if (
                vid in seen
                or self._vertex_labels.get(vid) != label
                or not self.mvcc.visible(("v", vid))
            ):
                continue
            props = self.mvcc.read(("v", vid), self._vertex_props[vid])
            if props.get(key) == value:
                kept.append(vid)
        return kept

    # -- reads --------------------------------------------------------------------

    def vertices(self, label: str | None = None) -> Iterator[Any]:
        for vid, vlabel in self._vertex_labels.items():
            charge("value_cpu")
            if (label is None or vlabel == label) and self.mvcc.visible(
                ("v", vid)
            ):
                yield vid

    def vertex_label(self, vid: Any) -> str:
        charge("value_cpu")
        return self._vertex_labels[vid]

    def vertex_props(self, vid: Any) -> dict[str, Any]:
        charge("value_cpu")
        if runtime.TRACE is not None:
            runtime.TRACE.read(("vertex", vid))
        return self.mvcc.read(("v", vid), self._vertex_props[vid])

    def edge_props(self, eid: Any) -> dict[str, Any]:
        charge("value_cpu")
        return self._edge_props[eid]

    def edge_label(self, eid: Any) -> str:
        charge("value_cpu")
        return self._edge_labels[eid]

    def edge_endpoints(self, eid: Any) -> tuple[Any, Any]:
        charge("value_cpu")
        return self._edge_ends[eid]

    def adjacent(
        self, vid: Any, direction: str, label: str | None
    ) -> Iterator[tuple[Any, Any]]:
        if runtime.TRACE is not None:
            runtime.TRACE.read(("vertex", vid))
        if direction in ("out", "both"):
            for eid in self._out.get(vid, ()):
                charge("value_cpu")
                if (
                    label is None or self._edge_labels[eid] == label
                ) and self.mvcc.visible(("e", eid)):
                    yield eid, self._edge_ends[eid][1]
        if direction in ("in", "both"):
            for eid in self._in.get(vid, ()):
                charge("value_cpu")
                if (
                    label is None or self._edge_labels[eid] == label
                ) and self.mvcc.visible(("e", eid)):
                    yield eid, self._edge_ends[eid][0]

    # -- writes ----------------------------------------------------------------------

    def create_vertex(self, label: str, props: dict[str, Any]) -> Any:
        charge("value_cpu")
        vid = self._next_vid
        self._next_vid += 1
        self._vertex_labels[vid] = label
        self._vertex_props[vid] = dict(props)
        self.mvcc.stamp(("v", vid))
        for (ilabel, key), index in self._indexes.items():
            if ilabel == label and props.get(key) is not None:
                index.setdefault(props[key], []).append(vid)
        if runtime.TRACE is not None:
            runtime.TRACE.write(("vertex", vid))
        return vid

    def create_edge(
        self, label: str, out_vid: Any, in_vid: Any, props: dict[str, Any]
    ) -> Any:
        if out_vid not in self._vertex_labels:
            raise KeyError(f"no vertex {out_vid}")
        if in_vid not in self._vertex_labels:
            raise KeyError(f"no vertex {in_vid}")
        charge("value_cpu")
        eid = self._next_eid
        self._next_eid += 1
        self._edge_labels[eid] = label
        self._edge_props[eid] = dict(props)
        self._edge_ends[eid] = (out_vid, in_vid)
        self._out.setdefault(out_vid, []).append(eid)
        self._in.setdefault(in_vid, []).append(eid)
        self.mvcc.stamp(("e", eid))
        if runtime.TRACE is not None:
            runtime.TRACE.write(("vertex", out_vid))
            runtime.TRACE.write(("vertex", in_vid))
        return eid

    def set_vertex_prop(self, vid: Any, key: str, value: Any) -> None:
        charge("value_cpu")
        label = self._vertex_labels[vid]
        self.mvcc.record_update(("v", vid), dict(self._vertex_props[vid]))
        old = self._vertex_props[vid].get(key)
        self._vertex_props[vid][key] = value
        index = self._indexes.get((label, key))
        if index is not None:
            if old is not None and vid in index.get(old, ()):
                index[old].remove(vid)
            if value is not None:
                index.setdefault(value, []).append(vid)
        if runtime.TRACE is not None:
            runtime.TRACE.write(("vertex", vid))

    # -- stats ------------------------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        return len(self._vertex_labels)

    @property
    def edge_count(self) -> int:
        return len(self._edge_labels)

    def size_bytes(self) -> int:
        total = 0
        for props in self._vertex_props.values():
            total += 32 + sum(
                len(str(k)) + _approx_bytes(v) for k, v in props.items()
            )
        for props in self._edge_props.values():
            total += 48 + sum(
                len(str(k)) + _approx_bytes(v) for k, v in props.items()
            )
        return total


def _approx_bytes(value: Any) -> int:
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple)):
        return sum(_approx_bytes(v) for v in value)
    return 8
