"""TinkerPop3 analogue: Gremlin Structure API + traversal machinery.

* :mod:`repro.tinkerpop.structure` — the provider SPI (`GraphProvider`)
  and element handles; any backend implementing the SPI is
  "TinkerPop-compliant" (the in-memory reference, the Neo4j adapter,
  Sqlg, and Titan all do).
* :mod:`repro.tinkerpop.traversal` — ``g.V().has(...).out(...).values(...)``
  style traversals, evaluated step by step.  Each step turns into
  *provider calls*; for remote backends every call pays round-trip and
  per-element costs — the paper's "multiple small requests" pathology.
* :mod:`repro.tinkerpop.server` — the Gremlin Server: submit-a-script
  round trips, per-element GraphSON serialization, a bounded worker pool,
  and the overload behaviour that made the paper drop complex queries
  from the concurrent mix.
"""

from repro.tinkerpop.structure import Edge, Graph, GraphProvider, Vertex
from repro.tinkerpop.traversal import P, Traversal, anon
from repro.tinkerpop.inmemory import TinkerGraphProvider
from repro.tinkerpop.server import GremlinServer, GremlinServerError

__all__ = [
    "GraphProvider",
    "Graph",
    "Vertex",
    "Edge",
    "Traversal",
    "P",
    "anon",
    "TinkerGraphProvider",
    "GremlinServer",
    "GremlinServerError",
]
