"""The Gremlin Structure API: element handles and the provider SPI."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Vertex:
    """A vertex handle; state lives in the provider."""

    id: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"v[{self.id}]"


@dataclass(frozen=True)
class Edge:
    id: Any

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"e[{self.id}]"


class GraphProvider(ABC):
    """What a backend must implement to be TinkerPop-compliant here.

    Implementations charge their own storage/network costs; the traversal
    engine charges only ``step_eval`` per traverser per step.
    """

    #: human-readable backend name (shows up in benchmark reports)
    name: str = "provider"

    # -- reads ----------------------------------------------------------------

    @abstractmethod
    def vertices(self, label: str | None = None) -> Iterator[Any]:
        """All vertex ids (optionally filtered by label)."""

    @abstractmethod
    def vertex_label(self, vid: Any) -> str:
        ...

    @abstractmethod
    def vertex_props(self, vid: Any) -> dict[str, Any]:
        ...

    @abstractmethod
    def edge_props(self, eid: Any) -> dict[str, Any]:
        ...

    @abstractmethod
    def edge_label(self, eid: Any) -> str:
        ...

    @abstractmethod
    def edge_endpoints(self, eid: Any) -> tuple[Any, Any]:
        """``(out_vertex_id, in_vertex_id)`` of an edge."""

    @abstractmethod
    def adjacent(
        self, vid: Any, direction: str, label: str | None
    ) -> Iterator[tuple[Any, Any]]:
        """``(edge_id, other_vertex_id)`` pairs; direction in out/in/both."""

    @abstractmethod
    def lookup(self, label: str, key: str, value: Any) -> list[Any]:
        """Vertex ids by indexed property equality."""

    @abstractmethod
    def has_lookup_index(self, label: str, key: str) -> bool:
        ...

    # -- writes -----------------------------------------------------------------

    @abstractmethod
    def create_vertex(self, label: str, props: dict[str, Any]) -> Any:
        ...

    @abstractmethod
    def create_edge(
        self, label: str, out_vid: Any, in_vid: Any, props: dict[str, Any]
    ) -> Any:
        ...

    def set_vertex_prop(self, vid: Any, key: str, value: Any) -> None:
        raise NotImplementedError(f"{self.name} cannot update properties")

    # -- stats ----------------------------------------------------------------------

    def size_bytes(self) -> int:
        return 0


class Graph:
    """Entry point mirroring ``graph.traversal()``."""

    def __init__(self, provider: GraphProvider) -> None:
        self.provider = provider

    def traversal(self) -> "GraphTraversalSource":
        return GraphTraversalSource(self.provider)


class GraphTraversalSource:
    """``g`` — spawns traversals."""

    def __init__(self, provider: GraphProvider) -> None:
        self.provider = provider

    def V(self, vid: Any = None) -> "Traversal":
        from repro.tinkerpop.traversal import Traversal

        return Traversal(self.provider).V(vid)

    def addV(self, label: str) -> "Traversal":
        from repro.tinkerpop.traversal import Traversal

        return Traversal(self.provider).addV(label)

    def E_count(self) -> int:
        raise NotImplementedError
