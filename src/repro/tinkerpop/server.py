"""The Gremlin Server simulation.

Clients do not speak to TinkerPop providers directly in the paper's
architecture (Figure 2): traversals are submitted to the Gremlin Server,
which evaluates them against the underlying graph and streams serialized
results back.  That layer is where the paper locates the Gremlin overhead:

* a websocket round trip per request (``server_rtt``),
* script evaluation / traversal compilation (``gremlin_compile``),
* GraphSON serialization per result element (``serialize_item``) and one
  extra round trip per 64-element response batch,
* a bounded worker pool; under many concurrent long-running traversals
  the request queue fills and the server hangs, then crashes (Section
  4.4) — the discrete-event harness drives that via
  :attr:`worker_pool_size` / :attr:`queue_limit` / :attr:`crashed`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.cache import CacheStats, EpochKeyedCache
from repro.simclock.ledger import charge
from repro.simclock.costmodel import CostModel
from repro.simclock.ledger import Ledger, metered
from repro.tinkerpop.structure import Graph, GraphProvider, GraphTraversalSource
from repro.tinkerpop.traversal import (
    StepBudgetExceeded,
    Traversal,
    cost_guard,
    step_budget,
)

RESULT_BATCH_SIZE = 64


class GremlinServerError(Exception):
    """The server dropped the request (overload or crash)."""


class GremlinServer:
    """Serves one TinkerPop graph to many clients."""

    def __init__(
        self,
        provider: GraphProvider,
        *,
        worker_pool_size: int = 8,
        queue_limit: int = 128,
        step_limit: int = 20_000_000,
        request_timeout_us: float | None = 3_000_000.0,
        cost_model: CostModel | None = None,
    ) -> None:
        self.graph = Graph(provider)
        self.provider = provider
        self.worker_pool_size = worker_pool_size
        self.queue_limit = queue_limit
        self.step_limit = step_limit
        self.request_timeout_us = request_timeout_us
        self.cost_model = cost_model or CostModel()
        self.crashed = False
        self.requests_served = 0
        self.requests_failed = 0
        self.requests_timed_out = 0
        #: script/bytecode cache (Gremlin Server's script-engine cache);
        #: OFF by default — the paper benchmarks pay the evaluation cost
        #: on every request — and only consulted for keyed submits
        self._script_cache: EpochKeyedCache | None = None

    def enable_script_cache(self, capacity: int = 512) -> None:
        """Opt into caching compiled scripts for keyed submissions."""
        self._script_cache = EpochKeyedCache(capacity, name="gremlin-scripts")

    def cache_stats(self) -> list[CacheStats]:
        if self._script_cache is None:
            return []
        return [self._script_cache.stats()]

    def submit(
        self,
        build: Callable[[GraphTraversalSource], Traversal],
        *,
        cache_key: str | None = None,
    ) -> list[Any]:
        """One request/response cycle: compile, evaluate, serialize.

        ``build`` receives the traversal source ``g`` and returns the
        traversal to evaluate (standing in for a Gremlin script string).
        ``cache_key`` identifies the script text; when the script cache
        is enabled and the key was seen before, the compilation charge is
        skipped (the script engine reuses the compiled bytecode) —
        evaluation itself always runs.
        """
        if self.crashed:
            self.requests_failed += 1
            raise GremlinServerError("Gremlin Server has crashed")
        charge("server_rtt")  # request framing + dispatch
        cache = self._script_cache
        if cache is not None and cache_key is not None:
            if cache.lookup(cache_key) is not None:
                charge("cache_hit")  # compiled bytecode reused
            else:
                charge("gremlin_compile")
                cache.store(cache_key, True)
        else:
            charge("gremlin_compile")  # script evaluation / compilation
        g = self.graph.traversal()
        request_ledger = Ledger()
        try:
            with metered(request_ledger), step_budget(self.step_limit):
                if self.request_timeout_us is not None:
                    with cost_guard(
                        request_ledger,
                        self.cost_model,
                        self.request_timeout_us,
                    ):
                        results = build(g).toList()
                else:
                    results = build(g).toList()
        except StepBudgetExceeded:
            self.requests_timed_out += 1
            self.requests_failed += 1
            raise GremlinServerError(
                "request evaluation exceeded the server timeout"
            ) from None
        charge("serialize_item", len(results))
        # response streaming: one round trip per batch
        batches = max(1, -(-len(results) // RESULT_BATCH_SIZE))
        charge("server_rtt", batches - 1)
        self.requests_served += 1
        return results

    def crash(self) -> None:
        """Driven by the concurrency harness on queue overflow."""
        self.crashed = True

    def restart(self) -> None:
        self.crashed = False
