"""The Gremlin Server simulation.

Clients do not speak to TinkerPop providers directly in the paper's
architecture (Figure 2): traversals are submitted to the Gremlin Server,
which evaluates them against the underlying graph and streams serialized
results back.  That layer is where the paper locates the Gremlin overhead:

* a websocket round trip per request (``server_rtt``),
* script evaluation / traversal compilation (``gremlin_compile``),
* GraphSON serialization per result element (``serialize_item``) and one
  extra round trip per 64-element response batch,
* a bounded worker pool; under many concurrent long-running traversals
  the request queue fills and the server hangs, then crashes (Section
  4.4) — the discrete-event harness drives that via
  :attr:`worker_pool_size` / :attr:`queue_limit` / :attr:`crashed`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.cache import CacheStats, EpochKeyedCache
from repro.exec.errors import CompileError
from repro.simclock.ledger import charge
from repro.simclock.costmodel import CostModel
from repro.simclock.ledger import Ledger, metered
from repro.tinkerpop.structure import Graph, GraphProvider, GraphTraversalSource
from repro.tinkerpop.traversal import (
    AddEStep,
    AddVStep,
    PropertyStep,
    RepeatStep,
    Step,
    StepBudgetExceeded,
    Traversal,
    cost_guard,
    step_budget,
)
from repro.txn import oracle

RESULT_BATCH_SIZE = 64

#: closure-cache sentinel: this script cannot be compiled (a write,
#: repeat(), ...) — evaluate it interpreted on every submit
_INTERPRET = object()

#: closure-cache marker: the script's step shape compiles; per-request
#: parameter binding into the cached closure is covered by
#: ``compiled_exec``
_COMPILED = object()


class GremlinServerError(Exception):
    """The server dropped the request (overload or crash)."""


def _steps_write(steps: list[Step]) -> bool:
    """Whether any step (including repeat() bodies) mutates the graph.

    Traversal building is lazy — ``build(g)`` only records steps — so
    the server can inspect the step list before evaluation starts.
    """
    for step in steps:
        if isinstance(step, (AddVStep, AddEStep, PropertyStep)):
            return True
        if isinstance(step, RepeatStep):
            if _steps_write(step.body.steps):
                return True
            if step.until is not None and _steps_write(step.until.steps):
                return True
    return False


class GremlinServer:
    """Serves one TinkerPop graph to many clients."""

    def __init__(
        self,
        provider: GraphProvider,
        *,
        worker_pool_size: int = 8,
        queue_limit: int = 128,
        step_limit: int = 20_000_000,
        request_timeout_us: float | None = 3_000_000.0,
        cost_model: CostModel | None = None,
        execution_mode: str = "compiled",
    ) -> None:
        if execution_mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {execution_mode!r}")
        self.graph = Graph(provider)
        self.provider = provider
        self.worker_pool_size = worker_pool_size
        self.queue_limit = queue_limit
        self.step_limit = step_limit
        self.request_timeout_us = request_timeout_us
        self.cost_model = cost_model or CostModel()
        self.execution_mode = execution_mode
        self.isolation_level = "snapshot"
        self.crashed = False
        self.requests_served = 0
        self.requests_failed = 0
        self.requests_timed_out = 0
        #: script/bytecode cache (Gremlin Server's script-engine cache);
        #: OFF by default — the paper benchmarks pay the evaluation cost
        #: on every request — and only consulted for keyed submits
        self._script_cache: EpochKeyedCache | None = None
        #: compiled-mode closure cache: script key -> compile verdict;
        #: subsumes the script cache (bytecode AND the specialized
        #: closure are reused); cleared on restart
        self._closure_cache = EpochKeyedCache(512, name="gremlin-closures")

    def enable_script_cache(self, capacity: int = 512) -> None:
        """Opt into caching compiled scripts for keyed submissions."""
        self._script_cache = EpochKeyedCache(capacity, name="gremlin-scripts")

    def share_closure_cache(self, donor: "GremlinServer") -> None:
        """Adopt ``donor``'s bytecode/closure caches (pods of one shard).

        The closure cache maps script keys to compile *verdicts* — no
        graph data — so pods serving replicas of the same shard can share
        one cache object and a freshly-started replica warms up without
        recompiling scripts the primary already compiled.  The sharing is
        symmetric thereafter; a :meth:`restart` of any sharing pod bumps
        the shared epoch (conservatively flushing the whole fleet).
        """
        self._closure_cache = donor._closure_cache
        if donor._script_cache is not None:
            self._script_cache = donor._script_cache

    def set_execution_mode(self, mode: str) -> None:
        """Switch between ``interpreted`` and ``compiled`` evaluation."""
        if mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown execution mode: {mode!r}")
        self.execution_mode = mode

    def set_isolation_level(self, level: str) -> None:
        """``snapshot`` (readers never block) or ``read-committed``."""
        oracle.check_isolation_level(level)
        self.isolation_level = level

    def cache_stats(self) -> list[CacheStats]:
        rows = []
        if self.execution_mode == "compiled":
            rows.append(self._closure_cache.stats())
        if self._script_cache is not None:
            rows.append(self._script_cache.stats())
        return rows

    def submit(
        self,
        build: Callable[[GraphTraversalSource], Traversal],
        *,
        cache_key: str | None = None,
    ) -> list[Any]:
        """One request/response cycle: compile, evaluate, serialize.

        ``build`` receives the traversal source ``g`` and returns the
        traversal to evaluate (standing in for a Gremlin script string).
        ``cache_key`` identifies the script text; when the script cache
        is enabled and the key was seen before, the compilation charge is
        skipped (the script engine reuses the compiled bytecode) —
        evaluation itself always runs.
        """
        if self.crashed:
            self.requests_failed += 1
            raise GremlinServerError("Gremlin Server has crashed")
        charge("server_rtt")  # request framing + dispatch
        if self.execution_mode == "compiled" and cache_key is not None:
            results = self._submit_compiled(build, cache_key)
            if results is not None:
                return results
            # fall through: this script shape runs interpreted
        cache = self._script_cache
        if cache is not None and cache_key is not None:
            if cache.lookup(cache_key) is not None:
                charge("cache_hit")  # compiled bytecode reused
            else:
                charge("gremlin_compile")
                cache.store(cache_key, True)
        else:
            charge("gremlin_compile")  # script evaluation / compilation

        def run(g: GraphTraversalSource) -> list[Any]:
            traversal = build(g)
            if _steps_write(traversal.steps):
                return traversal.toList()
            with oracle.read_view(self.isolation_level):
                return traversal.toList()

        results = self._evaluate(run)
        charge("serialize_item", len(results))
        # response streaming: one round trip per batch
        batches = max(1, -(-len(results) // RESULT_BATCH_SIZE))
        charge("server_rtt", batches - 1)
        self.requests_served += 1
        return results

    def _submit_compiled(
        self,
        build: Callable[[GraphTraversalSource], Traversal],
        cache_key: str,
    ) -> list[Any] | None:
        """Compiled-mode fast path; ``None`` defers to the interpreter.

        The closure cache is the compilation unit: the first submit of a
        script key pays ``gremlin_compile`` (script to bytecode) plus
        ``closure_compile`` (bytecode to a specialized closure); warm
        submits pay only ``compiled_exec`` for parameter binding.  Keys
        whose step shape cannot compile are remembered as interpreted —
        resubmits reuse the cached bytecode (``cache_hit``) and the
        fallback stays per-script, never per-request work.
        """
        # deferred: repro.exec.gremlinc imports the traversal/structure
        # modules of this package, so a top-level import would be circular
        from repro.exec.gremlinc import compile_traversal

        verdict = self._closure_cache.lookup(cache_key)
        if verdict is None:
            charge("gremlin_compile")
            charge("closure_compile")
            try:
                compile_traversal(build(self.graph.traversal()))
                verdict = _COMPILED
            except CompileError:
                verdict = _INTERPRET
            self._closure_cache.store(cache_key, verdict)
            if verdict is _INTERPRET:
                return None
        elif verdict is _INTERPRET:
            charge("cache_hit")  # bytecode reused; evaluation interpreted
            return None
        charge("compiled_exec")  # parameter binding into the closure
        try:
            fn = compile_traversal(build(self.graph.traversal()))
        except CompileError:
            # the key was reused for a different, uncompilable shape;
            # evaluate this request interpreted without poisoning the key
            return None
        # compiled traversals are read-only by construction (write steps
        # raise CompileError above), so every run gets a snapshot view
        with oracle.read_view(self.isolation_level):
            results = self._evaluate(lambda g: fn())
        # vectorized serialization: the whole result set is encoded as
        # one binary frame — one frame setup plus a per-value touch,
        # instead of per-element GraphSON object encoding, and no extra
        # per-64-element round trips
        charge("vector_setup")
        if results:
            charge("value_cpu", len(results))
        self.requests_served += 1
        return results

    def _evaluate(
        self, run: Callable[[GraphTraversalSource], list[Any]]
    ) -> list[Any]:
        """Run one request under the server's budget and timeout guards."""
        g = self.graph.traversal()
        request_ledger = Ledger()
        try:
            with metered(request_ledger), step_budget(self.step_limit):
                if self.request_timeout_us is not None:
                    with cost_guard(
                        request_ledger,
                        self.cost_model,
                        self.request_timeout_us,
                    ):
                        return run(g)
                return run(g)
        except StepBudgetExceeded:
            self.requests_timed_out += 1
            self.requests_failed += 1
            raise GremlinServerError(
                "request evaluation exceeded the server timeout"
            ) from None

    def crash(self) -> None:
        """Driven by the concurrency harness on queue overflow."""
        self.crashed = True

    def restart(self) -> None:
        self.crashed = False
        # a restarted server has an empty script engine: compiled
        # closures (like cached bytecode) do not survive the process
        self._closure_cache.bump_epoch()
        if self._script_cache is not None:
            self._script_cache.bump_epoch()
