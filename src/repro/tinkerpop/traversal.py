"""Gremlin-style traversals.

A traversal is a chain of steps applied lazily to a stream of
*traversers* (value + path + loop counter).  Providers do the actual data
access; the engine charges ``step_eval`` per traverser per step, which is
the TinkerPop interpretation overhead.

Supported steps (the LDBC SNB Gremlin implementation's working set):
``V, hasLabel, has(key, value|P), out, in_, both, outE, inE, bothE, inV,
outV, otherV, values, valueMap, id_, dedup, simplePath, path, limit,
count, order/by, repeat/times/until/emit, addV, addE/to/from_, property``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, replace
from typing import Any

from repro.simclock.costmodel import CostModel
from repro.simclock.ledger import Ledger, charge
from repro.tinkerpop.structure import Edge, GraphProvider, Vertex

MAX_REPEAT_LOOPS = 64

#: active step budget (None = unlimited); see :func:`step_budget`
_BUDGET: list[int] = []


class TraversalError(Exception):
    pass


class StepBudgetExceeded(TraversalError):
    """The traversal consumed its step budget (stands in for a timeout)."""


class step_budget:
    """Bound the number of step evaluations inside the block.

    The Gremlin Server uses this as its request timeout: traversals whose
    cost explodes (e.g. shortest path via simple-path enumeration on a
    large graph) are aborted, which the benchmark records as DNF — the
    paper's '-' entries.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __enter__(self) -> "step_budget":
        _BUDGET.append(self.limit)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _BUDGET.pop()


#: active cost guards (see :class:`cost_guard`)
_COST_GUARDS: list["cost_guard"] = []


class cost_guard:
    """Abort a traversal when its *simulated* cost exceeds a deadline.

    The Gremlin Server's ``evaluationTimeout`` equivalent: the active
    ledger is priced every ``check_every`` step evaluations and the
    traversal raises :class:`StepBudgetExceeded` past the limit.
    """

    def __init__(self, ledger: Ledger, model: CostModel, limit_us: float,
                 check_every: int = 2048) -> None:
        self.ledger = ledger
        self.model = model
        self.limit_us = limit_us
        self.check_every = check_every
        self._ticks = 0

    def tick(self) -> None:
        self._ticks += 1
        if self._ticks % self.check_every:
            return
        self._check()

    def tick_many(self, n: int) -> None:
        """Advance the guard by ``n`` step evaluations at once."""
        before = self._ticks // self.check_every
        self._ticks += n
        if self._ticks // self.check_every == before:
            return
        self._check()

    def _check(self) -> None:
        if self.model.cost_us(self.ledger.counters) > self.limit_us:
            raise StepBudgetExceeded(
                f"traversal exceeded the {self.limit_us / 1e6:.1f}s "
                f"evaluation timeout"
            )

    def __enter__(self) -> "cost_guard":
        _COST_GUARDS.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _COST_GUARDS.remove(self)


def tick_batch(n: int) -> None:
    """Consume ``n`` step evaluations' worth of budget in one call.

    The compiled (vectorized) executor replaces the per-traverser
    ``step_eval`` charge with batch charges, but the server's step budget
    and evaluation-timeout guard must observe the same traverser counts
    in both modes — otherwise compiled requests would never DNF.
    """
    if n <= 0:
        return
    if _BUDGET:
        _BUDGET[-1] -= n
        if _BUDGET[-1] <= 0:
            raise StepBudgetExceeded(
                "traversal exceeded its step budget"
            )
    if _COST_GUARDS:
        _COST_GUARDS[-1].tick_many(n)


@dataclass(frozen=True)
class P:
    """A Gremlin predicate (``P.eq(1)``, ``P.within([1, 2])``, ...)."""

    op: str
    value: Any

    def test(self, candidate: Any) -> bool:
        if candidate is None:
            return False
        if self.op == "eq":
            return candidate == self.value
        if self.op == "neq":
            return candidate != self.value
        if self.op == "gt":
            return candidate > self.value
        if self.op == "gte":
            return candidate >= self.value
        if self.op == "lt":
            return candidate < self.value
        if self.op == "lte":
            return candidate <= self.value
        if self.op == "within":
            return candidate in self.value
        raise TraversalError(f"unknown predicate {self.op}")

    @staticmethod
    def eq(value: Any) -> "P":
        return P("eq", value)

    @staticmethod
    def neq(value: Any) -> "P":
        return P("neq", value)

    @staticmethod
    def gt(value: Any) -> "P":
        return P("gt", value)

    @staticmethod
    def gte(value: Any) -> "P":
        return P("gte", value)

    @staticmethod
    def lt(value: Any) -> "P":
        return P("lt", value)

    @staticmethod
    def lte(value: Any) -> "P":
        return P("lte", value)

    @staticmethod
    def within(values: Any) -> "P":
        return P("within", tuple(values))


@dataclass(frozen=True)
class Traverser:
    obj: Any
    path: tuple = ()
    loops: int = 0


# --- steps -----------------------------------------------------------------------


class Step:
    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        raise NotImplementedError

    def _tick(self) -> None:
        charge("step_eval")
        if _BUDGET:
            _BUDGET[-1] -= 1
            if _BUDGET[-1] <= 0:
                raise StepBudgetExceeded(
                    "traversal exceeded its step budget"
                )
        if _COST_GUARDS:
            _COST_GUARDS[-1].tick()


class VStep(Step):
    def __init__(self, vid: Any = None) -> None:
        self.vid = vid
        # filled by the has() fold-in optimization
        self.label: str | None = None
        self.index_key: str | None = None
        self.index_value: Any = None

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            if self.vid is not None:
                vertex = Vertex(self.vid)
                yield replace(
                    traverser, obj=vertex, path=traverser.path + (vertex,)
                )
            elif self.index_key is not None:
                for vid in provider.lookup(
                    self.label, self.index_key, self.index_value
                ):
                    vertex = Vertex(vid)
                    yield replace(
                        traverser, obj=vertex, path=traverser.path + (vertex,)
                    )
            else:
                for vid in provider.vertices(self.label):
                    vertex = Vertex(vid)
                    yield replace(
                        traverser, obj=vertex, path=traverser.path + (vertex,)
                    )


class HasStep(Step):
    def __init__(
        self, key: str, predicate: P, label: str | None = None
    ) -> None:
        self.key = key
        self.predicate = predicate
        self.label = label

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            obj = traverser.obj
            if isinstance(obj, Vertex):
                if self.label is not None and (
                    provider.vertex_label(obj.id) != self.label
                ):
                    continue
                value = provider.vertex_props(obj.id).get(self.key)
            elif isinstance(obj, Edge):
                value = provider.edge_props(obj.id).get(self.key)
            else:
                raise TraversalError("has() needs an element")
            if self.predicate.test(value):
                yield traverser


class HasLabelStep(Step):
    def __init__(self, label: str) -> None:
        self.label = label

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            obj = traverser.obj
            if isinstance(obj, Vertex):
                if provider.vertex_label(obj.id) == self.label:
                    yield traverser
            elif isinstance(obj, Edge):
                if provider.edge_label(obj.id) == self.label:
                    yield traverser


class AdjacentStep(Step):
    """out/in/both (to vertices) and outE/inE/bothE (to edges)."""

    def __init__(
        self, direction: str, label: str | None, to_edge: bool
    ) -> None:
        self.direction = direction
        self.label = label
        self.to_edge = to_edge

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            obj = traverser.obj
            if not isinstance(obj, Vertex):
                raise TraversalError(
                    f"{self.direction}() needs a vertex, got {obj!r}"
                )
            for eid, other in provider.adjacent(
                obj.id, self.direction, self.label
            ):
                element = Edge(eid) if self.to_edge else Vertex(other)
                yield replace(
                    traverser,
                    obj=element,
                    path=traverser.path + (element,),
                )


class EdgeVertexStep(Step):
    """inV / outV / otherV from an edge traverser."""

    def __init__(self, which: str) -> None:
        self.which = which

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            edge = traverser.obj
            if not isinstance(edge, Edge):
                raise TraversalError(f"{self.which}() needs an edge")
            out_vid, in_vid = provider.edge_endpoints(edge.id)
            if self.which == "inV":
                targets = [in_vid]
            elif self.which == "outV":
                targets = [out_vid]
            else:  # otherV: the endpoint we did not come from
                prev = None
                for element in reversed(traverser.path[:-1]):
                    if isinstance(element, Vertex):
                        prev = element.id
                        break
                targets = [in_vid if prev == out_vid else out_vid]
            for vid in targets:
                vertex = Vertex(vid)
                yield replace(
                    traverser, obj=vertex, path=traverser.path + (vertex,)
                )


class ValuesStep(Step):
    def __init__(self, keys: tuple[str, ...]) -> None:
        self.keys = keys

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            props = _element_props(traverser.obj, provider)
            for key in self.keys:
                value = props.get(key)
                if value is not None:
                    yield replace(traverser, obj=value)


class ValueMapStep(Step):
    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            yield replace(
                traverser, obj=dict(_element_props(traverser.obj, provider))
            )


class IdStep(Step):
    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            yield replace(traverser, obj=traverser.obj.id)


class DedupStep(Step):
    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        seen: set = set()
        for traverser in traversers:
            self._tick()
            key = traverser.obj
            if isinstance(key, dict):
                key = tuple(sorted(key.items()))
            if key not in seen:
                seen.add(key)
                yield traverser


class SimplePathStep(Step):
    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            elements = [e for e in traverser.path if isinstance(e, (Vertex, Edge))]
            if len(elements) == len(set(elements)):
                yield traverser


class PathStep(Step):
    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            yield replace(traverser, obj=tuple(traverser.path))


class LimitStep(Step):
    def __init__(self, limit: int) -> None:
        self.limit = limit

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        emitted = 0
        for traverser in traversers:
            if emitted >= self.limit:
                return
            self._tick()
            emitted += 1
            yield traverser


class CountStep(Step):
    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        total = 0
        for _ in traversers:
            self._tick()
            total += 1
        yield Traverser(obj=total)


class OrderStep(Step):
    def __init__(self) -> None:
        self.key: str | None = None
        self.descending = False

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        materialized = list(traversers)
        self._tick()

        def sort_key(traverser: Traverser) -> tuple[bool, Any]:
            obj = traverser.obj
            if self.key is None:
                value = obj
            else:
                value = _element_props(obj, provider).get(self.key)
            return (value is not None, value)

        materialized.sort(key=sort_key, reverse=self.descending)
        yield from materialized


class RepeatStep(Step):
    def __init__(self, body: "Traversal") -> None:
        self.body = body
        self.times: int | None = None
        self.until: "Traversal | None" = None
        self.emit = False

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        frontier = list(traversers)
        loops = 0
        while frontier:
            loops += 1
            if loops > MAX_REPEAT_LOOPS:
                raise TraversalError(
                    f"repeat() exceeded {MAX_REPEAT_LOOPS} loops"
                )
            next_frontier: list[Traverser] = []
            for traverser in frontier:
                self._tick()
                for result in self.body._apply_to(
                    replace(traverser, loops=traverser.loops + 1), provider
                ):
                    if self.until is not None and self._test(
                        result, provider
                    ):
                        yield result
                    elif self.emit:
                        yield result
                        next_frontier.append(result)
                    else:
                        next_frontier.append(result)
            frontier = next_frontier
            if self.times is not None and loops >= self.times:
                yield from frontier
                return
            if self.times is None and self.until is None:
                raise TraversalError("repeat() needs times() or until()")

    def _test(self, traverser: Traverser, provider: GraphProvider) -> bool:
        assert self.until is not None
        return any(
            True for _ in self.until._apply_to(traverser, provider)
        )


class AddVStep(Step):
    def __init__(self, label: str) -> None:
        self.label = label
        self.props: dict[str, Any] = {}

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            vid = provider.create_vertex(self.label, dict(self.props))
            vertex = Vertex(vid)
            yield replace(
                traverser, obj=vertex, path=traverser.path + (vertex,)
            )


class AddEStep(Step):
    def __init__(self, label: str) -> None:
        self.label = label
        self.to_vertex: Vertex | None = None
        self.from_vertex: Vertex | None = None
        self.props: dict[str, Any] = {}

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            current = traverser.obj
            if not isinstance(current, Vertex) and (
                self.from_vertex is None or self.to_vertex is None
            ):
                raise TraversalError("addE() needs a vertex context")
            out_v = self.from_vertex or current
            in_v = self.to_vertex or current
            eid = provider.create_edge(
                self.label, out_v.id, in_v.id, dict(self.props)
            )
            edge = Edge(eid)
            yield replace(traverser, obj=edge, path=traverser.path + (edge,))


class PropertyStep(Step):
    """Mutates an existing element (fold-in handles addV/addE chains)."""

    def __init__(self, key: str, value: Any) -> None:
        self.key = key
        self.value = value

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            obj = traverser.obj
            if not isinstance(obj, Vertex):
                raise TraversalError("property() mutation needs a vertex")
            provider.set_vertex_prop(obj.id, self.key, self.value)
            yield traverser


class FilterStep(Step):
    """Engine-internal predicate filter (used by where-like helpers)."""

    def __init__(self, fn: Callable[[Any], bool]) -> None:
        self.fn = fn

    def apply(
        self, traversers: Iterator[Traverser], provider: GraphProvider
    ) -> Iterator[Traverser]:
        for traverser in traversers:
            self._tick()
            if self.fn(traverser.obj):
                yield traverser


def _element_props(obj: Any, provider: GraphProvider) -> dict[str, Any]:
    if isinstance(obj, Vertex):
        return provider.vertex_props(obj.id)
    if isinstance(obj, Edge):
        return provider.edge_props(obj.id)
    raise TraversalError(f"expected an element, got {obj!r}")


# --- the traversal builder ------------------------------------------------------------


class Traversal:
    """A chain of steps; iterate (or ``toList()``) to execute."""

    def __init__(self, provider: GraphProvider | None = None) -> None:
        self.provider = provider
        self.steps: list[Step] = []

    # -- builders -------------------------------------------------------------

    def V(self, vid: Any = None) -> "Traversal":
        self.steps.append(VStep(vid))
        return self

    def hasLabel(self, label: str) -> "Traversal":
        step = self.steps[-1] if self.steps else None
        if isinstance(step, VStep) and step.vid is None and step.label is None:
            step.label = label
            return self
        self.steps.append(HasLabelStep(label))
        return self

    def has(self, *args: Any) -> "Traversal":
        if len(args) == 3:
            label, key, value = args
            predicate = value if isinstance(value, P) else P.eq(value)
            # fold V().has(label, key, eq) into an index lookup
            step = self.steps[-1] if self.steps else None
            if (
                isinstance(step, VStep)
                and step.vid is None
                and step.index_key is None
                and predicate.op == "eq"
                and self.provider is not None
                and self.provider.has_lookup_index(label, key)
            ):
                step.label = label
                step.index_key = key
                step.index_value = predicate.value
                return self
            self.steps.append(HasStep(key, predicate, label))
            return self
        if len(args) == 2:
            key, value = args
            predicate = value if isinstance(value, P) else P.eq(value)
            # fold V().hasLabel(l).has(key, eq) into an index lookup: the
            # label already on the VStep scopes the (label, key) index
            step = self.steps[-1] if self.steps else None
            if (
                isinstance(step, VStep)
                and step.vid is None
                and step.index_key is None
                and step.label is not None
                and predicate.op == "eq"
                and self.provider is not None
                and self.provider.has_lookup_index(step.label, key)
            ):
                step.index_key = key
                step.index_value = predicate.value
                return self
            self.steps.append(HasStep(key, predicate))
            return self
        raise TraversalError("has() takes (key, value) or (label, key, value)")

    def out(self, label: str | None = None) -> "Traversal":
        self.steps.append(AdjacentStep("out", label, to_edge=False))
        return self

    def in_(self, label: str | None = None) -> "Traversal":
        self.steps.append(AdjacentStep("in", label, to_edge=False))
        return self

    def both(self, label: str | None = None) -> "Traversal":
        self.steps.append(AdjacentStep("both", label, to_edge=False))
        return self

    def outE(self, label: str | None = None) -> "Traversal":
        self.steps.append(AdjacentStep("out", label, to_edge=True))
        return self

    def inE(self, label: str | None = None) -> "Traversal":
        self.steps.append(AdjacentStep("in", label, to_edge=True))
        return self

    def bothE(self, label: str | None = None) -> "Traversal":
        self.steps.append(AdjacentStep("both", label, to_edge=True))
        return self

    def inV(self) -> "Traversal":
        self.steps.append(EdgeVertexStep("inV"))
        return self

    def outV(self) -> "Traversal":
        self.steps.append(EdgeVertexStep("outV"))
        return self

    def otherV(self) -> "Traversal":
        self.steps.append(EdgeVertexStep("otherV"))
        return self

    def values(self, *keys: str) -> "Traversal":
        self.steps.append(ValuesStep(keys))
        return self

    def valueMap(self) -> "Traversal":
        self.steps.append(ValueMapStep())
        return self

    def id_(self) -> "Traversal":
        self.steps.append(IdStep())
        return self

    def dedup(self) -> "Traversal":
        self.steps.append(DedupStep())
        return self

    def simplePath(self) -> "Traversal":
        self.steps.append(SimplePathStep())
        return self

    def path(self) -> "Traversal":
        self.steps.append(PathStep())
        return self

    def limit(self, n: int) -> "Traversal":
        self.steps.append(LimitStep(n))
        return self

    def count(self) -> "Traversal":
        self.steps.append(CountStep())
        return self

    def order(self) -> "Traversal":
        self.steps.append(OrderStep())
        return self

    def by(self, key: str, descending: bool = False) -> "Traversal":
        step = self.steps[-1] if self.steps else None
        if not isinstance(step, OrderStep):
            raise TraversalError("by() must follow order()")
        step.key = key
        step.descending = descending
        return self

    def repeat(self, body: "Traversal") -> "Traversal":
        self.steps.append(RepeatStep(body))
        return self

    def times(self, n: int) -> "Traversal":
        step = self._last_repeat()
        step.times = n
        return self

    def until(self, cond: "Traversal") -> "Traversal":
        step = self._last_repeat()
        step.until = cond
        return self

    def emit(self) -> "Traversal":
        step = self._last_repeat()
        step.emit = True
        return self

    def _last_repeat(self) -> RepeatStep:
        step = self.steps[-1] if self.steps else None
        if not isinstance(step, RepeatStep):
            raise TraversalError("times()/until()/emit() must follow repeat()")
        return step

    def addV(self, label: str) -> "Traversal":
        self.steps.append(AddVStep(label))
        return self

    def addE(self, label: str) -> "Traversal":
        self.steps.append(AddEStep(label))
        return self

    def to(self, vertex: Vertex) -> "Traversal":
        step = self.steps[-1] if self.steps else None
        if not isinstance(step, AddEStep):
            raise TraversalError("to() must follow addE()")
        step.to_vertex = vertex
        return self

    def from_(self, vertex: Vertex) -> "Traversal":
        step = self.steps[-1] if self.steps else None
        if not isinstance(step, AddEStep):
            raise TraversalError("from_() must follow addE()")
        step.from_vertex = vertex
        return self

    def property(self, key: str, value: Any) -> "Traversal":
        step = self.steps[-1] if self.steps else None
        if isinstance(step, (AddVStep, AddEStep)):
            step.props[key] = value
            return self
        self.steps.append(PropertyStep(key, value))
        return self

    def filter_(self, fn: Callable[[Any], bool]) -> "Traversal":
        self.steps.append(FilterStep(fn))
        return self

    # -- execution ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        if self.provider is None:
            raise TraversalError("anonymous traversals cannot be iterated")
        traversers: Iterator[Traverser] = iter([Traverser(obj=None)])
        for step in self.steps:
            traversers = step.apply(traversers, self.provider)
        return (t.obj for t in traversers)

    def _apply_to(
        self, traverser: Traverser, provider: GraphProvider
    ) -> Iterator[Traverser]:
        """Run this traversal as a sub-traversal of one traverser."""
        traversers: Iterator[Traverser] = iter([traverser])
        for step in self.steps:
            traversers = step.apply(traversers, provider)
        return traversers

    def toList(self) -> list[Any]:
        return list(self)

    def next(self) -> Any:
        for obj in self:
            return obj
        raise TraversalError("traversal is empty")

    def iterate(self) -> None:
        for _ in self:
            pass


def anon() -> Traversal:
    """An anonymous sub-traversal (``__`` in Gremlin)."""
    return Traversal(provider=None)
