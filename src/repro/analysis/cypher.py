"""Static analysis of Cypher query strings against the schema catalog."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, SourceLocation, make
from repro.analysis.schema import SchemaCatalog, default_catalog
from repro.graphdb.cypher import ast
from repro.graphdb.cypher.parser import CypherParseError, parse
from repro.stats import expected_entity_rows, format_rows

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}

#: sentinel environment entries for non-node variables
_REL = "rel"
_PATH = "path"


@dataclass
class AnalysisResult:
    """Diagnostics plus the raw canonical-concept footprint."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    footprint: set[str] = field(default_factory=set)


def analyze_cypher(
    operation: str,
    queries: Sequence[str],
    catalog: SchemaCatalog | None = None,
) -> AnalysisResult:
    catalog = catalog or default_catalog()
    result = AnalysisResult()
    for index, text in enumerate(queries):
        location = SourceLocation("cypher", operation, index)
        _analyze_one(text, location, catalog, result)
    return result


def _analyze_one(
    text: str,
    location: SourceLocation,
    catalog: SchemaCatalog,
    result: AnalysisResult,
) -> None:
    try:
        query = parse(text)
    except CypherParseError as exc:
        result.diagnostics.append(make("QA105", str(exc), location))
        return
    out = result.diagnostics
    env: dict[str, object] = {}
    match_patterns: list[ast.PathPattern] = []
    anchored_vars: set[str] = set()

    for clause in query.clauses:
        if isinstance(clause, ast.MatchClause):
            for pattern in clause.patterns:
                _check_pattern(pattern, env, anchored_vars, location,
                               catalog, result)
                match_patterns.append(pattern)
            if clause.where is not None:
                _check_expr(clause.where, env, location, catalog, out)
                _collect_where_anchors(clause.where, anchored_vars)
        elif isinstance(clause, ast.CreateClause):
            for pattern in clause.patterns:
                _check_pattern(pattern, env, anchored_vars, location,
                               catalog, result)
        elif isinstance(clause, ast.SetClause):
            for item in clause.items:
                _check_expr(item.target, env, location, catalog, out)
                _check_expr(item.value, env, location, catalog, out)
    if query.returns is not None:
        for item in query.returns.items:
            _check_expr(item.expr, env, location, catalog, out)
            if item.alias is not None:
                env.setdefault(item.alias, _PATH)
        for order in query.returns.order_by:
            if isinstance(order.expr, ast.VarRef) and (
                order.expr.name in env
            ):
                continue  # ORDER BY a RETURN alias
            _check_expr(order.expr, env, location, catalog, out)
    _check_cartesian(match_patterns, anchored_vars, location, out)


# --- patterns --------------------------------------------------------------------


def _check_pattern(
    pattern: ast.PathPattern,
    env: dict[str, object],
    anchored_vars: set[str],
    location: SourceLocation,
    catalog: SchemaCatalog,
    result: AnalysisResult,
) -> None:
    out = result.diagnostics
    if pattern.assign_var is not None:
        env[pattern.assign_var] = _PATH
    # resolve nodes first so endpoint checks can look right
    entity_sets: list[frozenset[str] | None] = []
    for node in pattern.nodes:
        entities = _node_entities(node, location, catalog, out)
        entity_sets.append(entities)
        if entities:
            result.footprint |= entities
        if node.var is not None:
            if entities:
                env[node.var] = entities
            else:
                env.setdefault(node.var, frozenset())
        for key, expr in node.props:
            if key == "id" and node.var is not None:
                anchored_vars.add(node.var)
            _check_prop(entities or None, key, expr, location, catalog, out)
    for position, rel in enumerate(pattern.rels):
        if rel.var is not None:
            env[rel.var] = _REL
        left = entity_sets[position]
        right = entity_sets[position + 1]
        for rel_type in rel.types:
            canonical = catalog.cypher_rel_types.get(rel_type)
            if canonical is None:
                out.append(make(
                    "QA102", f"unknown relationship type :{rel_type}",
                    location,
                ))
                continue
            result.footprint.add(canonical)
            _check_endpoints(
                canonical, rel.direction, left, right, location, catalog,
                out,
            )
            relationship = catalog.relationships[canonical]
            for key, expr in rel.props:
                declared = relationship.props.get(key)
                if declared is None:
                    out.append(make(
                        "QA103",
                        f"relationship :{rel_type} has no property "
                        f"{key!r}",
                        location,
                    ))
                elif isinstance(expr, ast.Literal):
                    _check_literal_type(declared, expr.value, key,
                                        location, out)


def _node_entities(
    node: ast.NodePattern,
    location: SourceLocation,
    catalog: SchemaCatalog,
    out: list[Diagnostic],
) -> frozenset[str]:
    entities: frozenset[str] | None = None
    for label in node.labels:
        mapped = catalog.cypher_labels.get(label)
        if mapped is None:
            out.append(make("QA101", f"unknown label :{label}", location))
            continue
        entities = mapped if entities is None else entities & mapped
    return entities if entities is not None else frozenset()


def _check_endpoints(
    canonical: str,
    direction: str,
    left: frozenset[str] | None,
    right: frozenset[str] | None,
    location: SourceLocation,
    catalog: SchemaCatalog,
    out: list[Diagnostic],
) -> None:
    rel = catalog.relationships[canonical]

    def fits(
        src_side: frozenset[str] | None,
        dst_side: frozenset[str] | None,
    ) -> bool:
        src_ok = not src_side or bool(src_side & rel.src)
        dst_ok = not dst_side or bool(dst_side & rel.dst)
        return src_ok and dst_ok

    if direction == "out":
        ok = fits(left, right)
    elif direction == "in":
        ok = fits(right, left)
    else:
        ok = fits(left, right) or fits(right, left)
    if not ok:
        out.append(make(
            "QA202",
            f":{_original_type(canonical, catalog)} cannot connect "
            f"{set(left or ()) or '?'} to {set(right or ()) or '?'} "
            f"(expects {set(rel.src)} -> {set(rel.dst)})",
            location,
        ))


def _original_type(canonical: str, catalog: SchemaCatalog) -> str:
    for cypher_type, mapped in catalog.cypher_rel_types.items():
        if mapped == canonical:
            return cypher_type
    return canonical


def _check_prop(
    entities: frozenset[str] | None,
    key: str,
    expr: ast.Expr,
    location: SourceLocation,
    catalog: SchemaCatalog,
    out: list[Diagnostic],
) -> None:
    if not entities:
        return
    declared = catalog.entity_prop_type(entities, key)
    if declared is None:
        out.append(make(
            "QA103",
            f"no property {key!r} on {set(entities)}",
            location,
        ))
    elif isinstance(expr, ast.Literal):
        _check_literal_type(declared, expr.value, key, location, out)


def _check_literal_type(
    declared: str,
    value: object,
    key: str,
    location: SourceLocation,
    out: list[Diagnostic],
) -> None:
    if declared == "list":
        return
    actual = "int" if isinstance(value, (int, float)) and not isinstance(
        value, bool
    ) else "str"
    if isinstance(value, bool):
        actual = "bool"
    if value is not None and actual != declared:
        out.append(make(
            "QA201",
            f"property {key!r} is {declared}, compared with "
            f"{actual} literal {value!r}",
            location,
        ))


# --- expressions -----------------------------------------------------------------


def _check_expr(
    expr: ast.Expr,
    env: dict[str, object],
    location: SourceLocation,
    catalog: SchemaCatalog,
    out: list[Diagnostic],
) -> None:
    if isinstance(expr, ast.PropAccess):
        bound = env.get(expr.var)
        if bound is None:
            out.append(make(
                "QA107", f"variable {expr.var!r} is not bound", location,
            ))
        elif isinstance(bound, frozenset) and bound:
            _check_prop(bound, expr.key, ast.Param("_"), location,
                        catalog, out)
    elif isinstance(expr, ast.VarRef):
        if expr.name not in env:
            out.append(make(
                "QA107", f"variable {expr.name!r} is not bound", location,
            ))
    elif isinstance(expr, ast.BinaryOp):
        _check_expr(expr.left, env, location, catalog, out)
        _check_expr(expr.right, env, location, catalog, out)
        if expr.op in _COMPARISONS:
            _check_comparison(expr, env, location, catalog, out)
    elif isinstance(expr, ast.UnaryOp):
        _check_expr(expr.operand, env, location, catalog, out)
    elif isinstance(expr, ast.IsNull):
        _check_expr(expr.operand, env, location, catalog, out)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            _check_expr(arg, env, location, catalog, out)


def _check_comparison(
    expr: ast.BinaryOp,
    env: dict[str, object],
    location: SourceLocation,
    catalog: SchemaCatalog,
    out: list[Diagnostic],
) -> None:
    sides = (expr.left, expr.right)
    for prop_side, other in (sides, sides[::-1]):
        if not isinstance(prop_side, ast.PropAccess):
            continue
        bound = env.get(prop_side.var)
        if not isinstance(bound, frozenset) or not bound:
            continue
        declared = catalog.entity_prop_type(bound, prop_side.key)
        if declared is not None and isinstance(other, ast.Literal):
            _check_literal_type(declared, other.value, prop_side.key,
                                location, out)
    for side in sides:
        if _wraps_property(side):
            out.append(make(
                "QA302",
                "comparison applies an expression to a property; "
                "no index can serve it" + _scan_estimate(side, env),
                location,
            ))


def _scan_estimate(expr: ast.Expr, env: dict[str, object]) -> str:
    """Expected per-candidate scan size for the filtered variable."""
    access = _first_prop_access(expr)
    if access is None:
        return ""
    bound = env.get(access.var)
    if not isinstance(bound, frozenset) or not bound:
        return ""
    rows = expected_entity_rows(bound)
    if rows is None:
        return ""
    kinds = "/".join(sorted(bound))
    return (
        f" (filters {format_rows(rows)} {kinds} entities at SF10)"
    )


def _first_prop_access(expr: ast.Expr) -> ast.PropAccess | None:
    if isinstance(expr, ast.PropAccess):
        return expr
    if isinstance(expr, ast.BinaryOp):
        return _first_prop_access(expr.left) or _first_prop_access(
            expr.right
        )
    if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        return _first_prop_access(expr.operand)
    if isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            found = _first_prop_access(arg)
            if found is not None:
                return found
    return None


def _wraps_property(expr: ast.Expr) -> bool:
    """True when an expression buries a PropAccess under computation."""
    if isinstance(expr, ast.FuncCall):
        return any(_contains_property(arg) for arg in expr.args)
    if isinstance(expr, ast.BinaryOp) and expr.op not in _COMPARISONS and (
        expr.op not in {"AND", "OR"}
    ):
        return _contains_property(expr.left) or _contains_property(
            expr.right
        )
    return False


def _contains_property(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.PropAccess):
        return True
    if isinstance(expr, ast.BinaryOp):
        return _contains_property(expr.left) or _contains_property(
            expr.right
        )
    if isinstance(expr, (ast.UnaryOp, ast.IsNull)):
        return _contains_property(expr.operand)
    if isinstance(expr, ast.FuncCall):
        return any(_contains_property(arg) for arg in expr.args)
    return False


# --- cartesian products ----------------------------------------------------------


def _collect_where_anchors(expr: ast.Expr, anchored: set[str]) -> None:
    """Vars pinned by an equality on their ``id`` property in WHERE."""
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "=":
            for side, other in (
                (expr.left, expr.right), (expr.right, expr.left)
            ):
                if (
                    isinstance(side, ast.PropAccess)
                    and side.key == "id"
                    and isinstance(other, (ast.Literal, ast.Param))
                ):
                    anchored.add(side.var)
        _collect_where_anchors(expr.left, anchored)
        _collect_where_anchors(expr.right, anchored)


def _check_cartesian(
    patterns: list[ast.PathPattern],
    anchored_vars: set[str],
    location: SourceLocation,
    out: list[Diagnostic],
) -> None:
    if len(patterns) < 2:
        return
    # union-find over patterns by shared variables
    parent = list(range(len(patterns)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    vars_of: list[set[str]] = []
    for pattern in patterns:
        names = {n.var for n in pattern.nodes if n.var is not None}
        names |= {r.var for r in pattern.rels if r.var is not None}
        vars_of.append(names)
    for i in range(len(patterns)):
        for j in range(i + 1, len(patterns)):
            if vars_of[i] & vars_of[j]:
                union(i, j)
    components: dict[int, list[int]] = {}
    for i in range(len(patterns)):
        components.setdefault(find(i), []).append(i)
    if len(components) < 2:
        return
    for members in components.values():
        anchored = False
        for i in members:
            if vars_of[i] & anchored_vars:
                anchored = True
            if any(
                key == "id"
                for node in patterns[i].nodes
                for key, _ in node.props
            ):
                anchored = True
        if not anchored:
            out.append(make(
                "QA301",
                "disconnected pattern component with no id anchor "
                "forms a cartesian product",
                location,
            ))
