"""The diagnostic model shared by every analysis pass.

Codes are grouped by hundreds:

=======  ==============================================================
QA101    unknown label (node label / RDF class / vertex label)
QA102    unknown edge type (relationship type / predicate / edge label)
QA103    unknown property (property key / column)
QA104    unknown table (SQL)
QA105    query does not parse
QA106    arity mismatch (INSERT value count vs. table width)
QA107    unbound variable
QA201    type-mismatched predicate (literal type vs. declared type)
QA202    edge endpoint mismatch (edge used between wrong entity kinds)
QA301    cartesian product (disconnected, unanchored pattern component)
QA302    non-sargable filter (expression applied to a column before
         comparison; an index can never serve it)
QA303    unanchored scan (traversal / query with no index anchor)
QA401    cross-dialect schema-footprint mismatch for one operation
QA402    operation missing from a dialect's catalog
QA403    undeclared insert-footprint delta (a dialect's insert touches
         concepts beyond the common core without a declared intent)
QA501    lock-order cycle across call sites
QA502    multi-lock acquisition out of sorted resource order
QA601    unsynchronized shared access (two workers touch one resource
         with disjoint locksets and no happens-before edge; covers
         write/write and unprotected read/write pairs — snapshot-mode
         reads are immune by construction)
QA602    lock held across a commit boundary (or never released)
QA603    lost update (two overlapping committed transactions both
         read-then-write one resource; the second write clobbers the
         first without having observed it)
QA604    non-repeatable read (one transaction reads a resource twice
         without snapshot protection and a foreign committed write
         lands in between)
QA605    write skew (two overlapping committed transactions each read
         what the other writes; serial in neither order)
QA701    dangling edge / foreign-key endpoint
QA702    index entry disagrees with the heap / store row
QA703    cache entry whose dependency set no longer matches truth
QA704    WAL / group-commit replay divergence
QA801    static lock-order inversion (per-function acquisition
         sequences composed across the call graph)
QA802    lock/transaction acquired with no dominating release on the
         exception path (try/finally or context manager)
QA803    blocking I/O (WAL fsync, Gremlin submit) reachable while a
         lock is held
QA804    storage-mutation function that emits no sanitizer trace event
         (and is not baselined as a sub-record primitive)
QA805    cache-writing code path with no matching epoch/dependency
         invalidation registration anywhere in its class
QA806    snapshot-bypassing raw read on a versioned store (a reader
         touches record containers or probes an unversioned secondary
         index without consulting the MVCC visibility layer /
         ``stale_keys`` index-fixup discipline)
QA807    storage mutation without version stamping: a member of a
         VersionStore-owning class mutates a record container but
         never stamps/records the change for snapshot readers
QA808    cache fill or hit not gated on snapshot staleness
         (``stale_reads``/``stale``): a stale snapshot could read or
         poison entries derived from newer state
QA809    physical reclaim outside the GC-watermark path: record data
         is removed by a function that is neither the ``on_reclaim``
         callback's closure nor a caller consulting
         ``record_delete``/``undelete``
QA810    side effect inside ``repro.exec.*``: compiled batch kernels
         must be read-only (no lock/txn acquisition, trace writes,
         mutation charges, or storage/cache write verbs)
=======  ==============================================================

QA1xx-QA5xx are *static* passes over the query catalogs
(:mod:`repro.analysis`); QA5xx are additionally re-emitted at runtime
and QA6xx/QA7xx are produced only by the dynamic sanitizer
(:mod:`repro.sanitizer`), which observes real executions.  QA8xx are
*whole-program* static passes over the engine source itself
(:mod:`repro.analysis.program`): they prove on every path what the
sanitizer can only sample on traced histories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: code -> (short name, default severity)
CODES: dict[str, tuple[str, Severity]] = {
    "QA101": ("unknown-label", Severity.ERROR),
    "QA102": ("unknown-edge-type", Severity.ERROR),
    "QA103": ("unknown-property", Severity.ERROR),
    "QA104": ("unknown-table", Severity.ERROR),
    "QA105": ("parse-error", Severity.ERROR),
    "QA106": ("arity-mismatch", Severity.ERROR),
    "QA107": ("unbound-variable", Severity.ERROR),
    "QA201": ("type-mismatch", Severity.ERROR),
    "QA202": ("edge-endpoint-mismatch", Severity.ERROR),
    "QA301": ("cartesian-product", Severity.ERROR),
    "QA302": ("non-sargable-filter", Severity.WARNING),
    "QA303": ("unanchored-scan", Severity.WARNING),
    "QA401": ("cross-dialect-mismatch", Severity.ERROR),
    "QA402": ("missing-operation", Severity.ERROR),
    "QA403": ("undeclared-insert-footprint-delta", Severity.ERROR),
    "QA501": ("lock-order-cycle", Severity.ERROR),
    "QA502": ("unsorted-lock-acquisition", Severity.WARNING),
    "QA601": ("unsynchronized-shared-access", Severity.ERROR),
    "QA602": ("lock-across-commit", Severity.ERROR),
    "QA603": ("lost-update", Severity.ERROR),
    "QA604": ("non-repeatable-read", Severity.ERROR),
    "QA605": ("write-skew", Severity.ERROR),
    "QA701": ("dangling-endpoint", Severity.ERROR),
    "QA702": ("index-store-mismatch", Severity.ERROR),
    "QA703": ("stale-cache-dependency", Severity.ERROR),
    "QA704": ("wal-replay-divergence", Severity.ERROR),
    "QA801": ("static-lock-order-inversion", Severity.ERROR),
    "QA802": ("leaked-resource-on-exception", Severity.ERROR),
    "QA803": ("blocking-io-under-lock", Severity.ERROR),
    "QA804": ("untraced-storage-mutation", Severity.ERROR),
    "QA805": ("cache-write-without-invalidation", Severity.ERROR),
    "QA806": ("snapshot-bypassing-raw-read", Severity.ERROR),
    "QA807": ("unversioned-storage-mutation", Severity.ERROR),
    "QA808": ("ungated-cache-under-snapshot", Severity.ERROR),
    "QA809": ("reclaim-outside-watermark", Severity.ERROR),
    "QA810": ("effectful-compiled-closure", Severity.ERROR),
}


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points: one query of one operation's catalog
    entry (or a file/function for the lock-order pass)."""

    dialect: str  # cypher | sql | sparql | gremlin | python
    operation: str  # connector method name, or file path
    query_index: int = 0

    def __str__(self) -> str:
        return f"{self.dialect}:{self.operation}[{self.query_index}]"


@dataclass(frozen=True)
class Diagnostic:
    code: str
    message: str
    location: SourceLocation
    severity: Severity = field(default=Severity.ERROR)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code}")

    @property
    def name(self) -> str:
        return CODES[self.code][0]

    def __str__(self) -> str:
        return (
            f"{self.code} {self.severity.value:7s} {self.location}: "
            f"{self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """The stable JSON shape emitted by ``--format json`` (one
        object per line); pinned by the CLI tests."""
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "dialect": self.location.dialect,
            "operation": self.location.operation,
            "query_index": self.location.query_index,
            "message": self.message,
        }


def make(code: str, message: str, location: SourceLocation) -> Diagnostic:
    """A diagnostic with the code's default severity."""
    return Diagnostic(code, message, location, CODES[code][1])


def errors(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    return [d for d in diagnostics if d.severity is Severity.ERROR]


class QueryValidationError(Exception):
    """A query catalog failed validation; carries the diagnostics.

    Raised at connector *construction* time so a bad query is rejected
    before any benchmark run, not mid-run under load.
    """

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        lines = "\n  ".join(str(d) for d in self.diagnostics)
        super().__init__(
            f"{len(self.diagnostics)} query diagnostic(s):\n  {lines}"
        )
