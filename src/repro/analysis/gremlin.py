"""Static analysis of Gremlin traversals against the schema catalog.

Gremlin has no query text: a catalog entry is a *builder* — a function
taking a :class:`~repro.tinkerpop.traversal.Traversal` plus sample
parameters and returning the built chain.  The builder is executed
against a provider-less traversal (so the ``has()`` index fold-in stays
inert and every step is visible) and the resulting ``steps`` list is
walked with a typestate: the set of entity kinds the current traversers
may be, or the relationship an edge traverser belongs to.  Adjacency
steps check their edge label's endpoints against that state (QA202) and
move it along the edge; ``values``/``has``/``order().by`` check property
keys (QA103) and literal types (QA201).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.analysis.cypher import AnalysisResult
from repro.analysis.diagnostics import SourceLocation, make
from repro.analysis.schema import Relationship, SchemaCatalog, default_catalog
from repro.stats import expected_entity_rows, expected_vertex_count, format_rows
from repro.tinkerpop import traversal as tv

#: a catalog entry: (builder, sample keyword arguments)
GremlinEntry = tuple[Callable[..., tv.Traversal], dict[str, Any]]


def analyze_gremlin(
    operation: str,
    entries: Sequence[GremlinEntry],
    catalog: SchemaCatalog | None = None,
) -> AnalysisResult:
    catalog = catalog or default_catalog()
    result = AnalysisResult()
    for index, (builder, sample) in enumerate(entries):
        location = SourceLocation("gremlin", operation, index)
        try:
            chain = builder(tv.Traversal(provider=None), **sample)
        except tv.TraversalError as exc:
            result.diagnostics.append(make("QA105", str(exc), location))
            continue
        walker = _Walker(location, catalog, result)
        walker.check_anchor(chain.steps)
        walker.walk(chain.steps, ("start", None))
    return result


#: typestate: ("start", None) | ("vertices", frozenset[str]) |
#:            ("edge", Relationship | None) | ("value", None)
_State = tuple[str, Any]


class _Walker:
    def __init__(
        self,
        location: SourceLocation,
        catalog: SchemaCatalog,
        result: AnalysisResult,
    ) -> None:
        self.location = location
        self.catalog = catalog
        self.result = result
        self.out = result.diagnostics
        self.all_entities = frozenset(catalog.entities)

    def emit(self, code: str, message: str) -> None:
        self.out.append(make(code, message, self.location))

    # -- anchoring ---------------------------------------------------------

    def check_anchor(self, steps: list[tv.Step]) -> None:
        """A top-level chain starting with a bare V() must pin an id in
        its leading filter run, or it scans every vertex (QA303)."""
        if not steps or not isinstance(steps[0], tv.VStep):
            return
        first = steps[0]
        if first.vid is not None or first.index_key == "id":
            return
        for step in steps[1:]:
            if isinstance(step, tv.HasStep):
                if step.key == "id" and step.predicate.op in (
                    "eq", "within"
                ):
                    return
            elif not isinstance(step, tv.HasLabelStep):
                break
        self.emit(
            "QA303",
            "traversal starts with an unanchored V() scan"
            + self.vertex_estimate(first.label),
        )

    def vertex_estimate(self, label: str | None) -> str:
        """Expected vertices touched by a full V()/V().hasLabel scan."""
        if label is not None:
            entities = self.catalog.gremlin_vertex_labels.get(label)
            if entities is not None:
                rows = expected_entity_rows(entities)
                if rows is not None:
                    return (
                        f" (touches {format_rows(rows)} {label} "
                        f"vertices at SF10)"
                    )
            return ""
        return (
            f" (touches {format_rows(expected_vertex_count())} "
            f"vertices at SF10)"
        )

    # -- the typestate walk ------------------------------------------------

    def walk(self, steps: list[tv.Step], state: _State) -> _State:
        for step in steps:
            state = self.step(step, state)
        return state

    def step(self, step: tv.Step, state: _State) -> _State:
        if isinstance(step, tv.VStep):
            entities = self.all_entities
            if step.label is not None:
                named = self.vertex_label(step.label)
                if named is not None:
                    entities = named
                    self.result.footprint.update(named)
            if step.index_key is not None and step.index_key != "id":
                self.element_keys((step.index_key,), ("vertices", entities))
            return ("vertices", entities)
        if isinstance(step, tv.HasLabelStep):
            return self.narrow_label(step.label, state)
        if isinstance(step, tv.HasStep):
            if step.label is not None:
                state = self.narrow_label(step.label, state)
            self.has_key(step.key, step.predicate, state)
            return state
        if isinstance(step, tv.AdjacentStep):
            return self.adjacent(step, state)
        if isinstance(step, tv.EdgeVertexStep):
            return self.edge_vertex(step, state)
        if isinstance(step, (tv.ValuesStep, tv.ValueMapStep)):
            if isinstance(step, tv.ValuesStep):
                self.element_keys(step.keys, state)
            return ("value", None)
        if isinstance(step, tv.OrderStep):
            if step.key is not None:
                self.element_keys((step.key,), state)
            return state
        if isinstance(step, tv.RepeatStep):
            end = self.walk(step.body.steps, state)
            if step.until is not None:
                self.walk(step.until.steps, end)
            return end
        if isinstance(step, tv.AddVStep):
            return self.add_vertex(step)
        if isinstance(step, tv.AddEStep):
            return self.add_edge(step, state)
        if isinstance(step, tv.PropertyStep):
            self.has_key(step.key, None, state)
            if state[0] == "vertices":
                self.value_type(
                    self.catalog.entity_prop_type(state[1], step.key),
                    step.value, step.key,
                )
            return state
        if isinstance(step, (tv.CountStep, tv.IdStep, tv.PathStep)):
            return ("value", None)
        # Dedup / SimplePath / Limit / Filter keep the stream's type
        return state

    # -- labels ------------------------------------------------------------

    def vertex_label(self, label: str) -> frozenset[str] | None:
        entities = self.catalog.gremlin_vertex_labels.get(label)
        if entities is None:
            self.emit("QA101", f"unknown vertex label {label!r}")
        return entities

    def narrow_label(self, label: str, state: _State) -> _State:
        entities = self.vertex_label(label)
        if entities is None:
            return state
        self.result.footprint.update(entities)
        if state[0] == "vertices":
            narrowed = state[1] & entities
            if not narrowed:
                self.emit(
                    "QA202",
                    f"hasLabel({label!r}) contradicts the traversal "
                    f"state {sorted(state[1])}",
                )
                return ("vertices", entities)
            return ("vertices", narrowed)
        return ("vertices", entities)

    # -- properties --------------------------------------------------------

    def has_key(
        self, key: str, predicate: tv.P | None, state: _State
    ) -> None:
        declared: str | None = None
        if state[0] == "vertices":
            declared = self.catalog.entity_prop_type(state[1], key)
            if declared is None:
                self.emit(
                    "QA103",
                    f"no entity in {sorted(state[1])} has property "
                    f"{key!r}",
                )
                return
        elif state[0] == "edge" and state[1] is not None:
            rel: Relationship = state[1]
            declared = rel.props.get(key)
            if declared is None:
                self.emit(
                    "QA103",
                    f"edge {rel.name!r} has no property {key!r}",
                )
                return
        if declared is None or predicate is None:
            return
        values = (
            predicate.value
            if predicate.op == "within"
            else (predicate.value,)
        )
        for value in values:
            self.value_type(declared, value, key)

    def value_type(
        self, declared: str | None, value: Any, key: str
    ) -> None:
        if declared is None or value is None:
            return
        if isinstance(value, bool):
            actual = "str"
        elif isinstance(value, (int, float)):
            actual = "int"
        elif isinstance(value, (list, tuple)):
            actual = "list"
        else:
            actual = "str"
        if actual != declared:
            self.emit(
                "QA201",
                f"property {key!r} is {declared}, given {actual} "
                f"value {value!r}",
            )

    def element_keys(self, keys: Sequence[str], state: _State) -> None:
        for key in keys:
            self.has_key(key, None, state)

    # -- edges -------------------------------------------------------------

    def adjacent(self, step: tv.AdjacentStep, state: _State) -> _State:
        if step.label is None:
            return (
                ("edge", None) if step.to_edge
                else ("vertices", self.all_entities)
            )
        name = self.catalog.gremlin_edge_labels.get(step.label)
        if name is None:
            self.emit("QA102", f"unknown edge label {step.label!r}")
            return (
                ("edge", None) if step.to_edge
                else ("vertices", self.all_entities)
            )
        rel = self.catalog.relationships[name]
        self.result.footprint.add(rel.name)
        current = (
            state[1] if state[0] == "vertices" else self.all_entities
        )
        targets: set[str] = set()
        ok = False
        if step.direction in ("out", "both") and current & rel.src:
            ok = True
            targets |= rel.dst
        if step.direction in ("in", "both") and current & rel.dst:
            ok = True
            targets |= rel.src
        if not ok:
            self.emit(
                "QA202",
                f"{step.direction}({step.label!r}) cannot apply to "
                f"{sorted(current)} (edge runs "
                f"{sorted(rel.src)} -> {sorted(rel.dst)})",
            )
            targets = set(rel.src | rel.dst)
        if step.to_edge:
            return ("edge", rel)
        self.result.footprint.update(targets)
        return ("vertices", frozenset(targets))

    def edge_vertex(self, step: tv.EdgeVertexStep, state: _State) -> _State:
        if state[0] != "edge" or state[1] is None:
            return ("vertices", self.all_entities)
        rel = state[1]
        if step.which == "inV":
            return ("vertices", rel.dst)
        if step.which == "outV":
            return ("vertices", rel.src)
        return ("vertices", rel.src | rel.dst)

    # -- mutations ---------------------------------------------------------

    def add_vertex(self, step: tv.AddVStep) -> _State:
        entities = self.vertex_label(step.label)
        if entities is None:
            return ("vertices", self.all_entities)
        self.result.footprint.update(entities)
        for key, value in step.props.items():
            declared = self.catalog.entity_prop_type(entities, key)
            if declared is None:
                self.emit(
                    "QA103",
                    f"{step.label!r} has no property {key!r}",
                )
            else:
                self.value_type(declared, value, key)
        return ("vertices", entities)

    def add_edge(self, step: tv.AddEStep, state: _State) -> _State:
        name = self.catalog.gremlin_edge_labels.get(step.label)
        if name is None:
            self.emit("QA102", f"unknown edge label {step.label!r}")
            return ("edge", None)
        rel = self.catalog.relationships[name]
        self.result.footprint.add(rel.name)
        if (
            state[0] == "vertices"
            and step.from_vertex is None
            and not state[1] & rel.src
        ):
            self.emit(
                "QA202",
                f"addE({step.label!r}) from {sorted(state[1])} (edge "
                f"sources are {sorted(rel.src)})",
            )
        for key, value in step.props.items():
            declared = rel.props.get(key)
            if declared is None:
                self.emit(
                    "QA103",
                    f"edge {rel.name!r} has no property {key!r}",
                )
            else:
                self.value_type(declared, value, key)
        return ("edge", rel)
