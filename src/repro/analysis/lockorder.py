"""Lock-acquisition-order analysis over the transaction layer's callers.

Two code paths that acquire the same pair of lock resources in opposite
orders can deadlock under concurrency even if each path is individually
correct — the classic AB/BA hang.  This pass walks the Python AST of
the package's sources, records the ordered resource expressions each
function passes to ``LockManager.acquire`` (or acquires on a bare
``lock.acquire()``), builds a global resource-order graph, and reports
any strongly connected component (QA501).  It also checks each function
locally: a function acquiring several distinct resources out of sorted
(textual) order gets QA502, since sorted acquisition is the convention
that makes the global graph acyclic by construction
(:meth:`~repro.txn.locks.LockManager.acquire_many` implements it at
runtime).

Resources are compared *textually* (the unparsed argument expression),
so two call sites locking ``(table.name, key)`` are the same node; the
pass over-approximates (it assumes earlier locks are still held) and
ignores self-edges, which are re-entrant re-acquisitions the
:class:`~repro.txn.locks.LockManager` permits.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic, SourceLocation, make

#: methods that block until the lock is granted (try_acquire cannot
#: participate in a deadlock: it fails instead of waiting)
_BLOCKING = {"acquire"}


def analyze_lock_order(
    paths: Iterable[str | Path] | None = None,
) -> list[Diagnostic]:
    """Run the pass over ``paths`` (default: the whole package)."""
    if paths is None:
        root = Path(__file__).resolve().parents[1]
        paths = sorted(root.rglob("*.py"))
    sources = {
        str(path): Path(path).read_text(encoding="utf-8")
        for path in paths
    }
    return analyze_lock_order_sources(sources)


def analyze_lock_order_sources(
    sources: Mapping[str, str],
) -> list[Diagnostic]:
    #: (earlier resource, later resource) -> witness "file:function"s
    edges: dict[tuple[str, str], list[str]] = {}
    unsorted: list[Diagnostic] = []
    for name, text in sources.items():
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            return [make(
                "QA105",
                f"cannot parse {name}: {exc}",
                SourceLocation("python", name),
            )]
        for function, sequence in _function_sequences(tree):
            witness = f"{name}:{function}"
            for i, earlier in enumerate(sequence):
                for later in sequence[i + 1:]:
                    if earlier != later:
                        edges.setdefault((earlier, later), []).append(
                            witness
                        )
            diagnostic = _check_sorted(witness, name, sequence)
            if diagnostic is not None:
                unsorted.append(diagnostic)
    return _report_cycles(edges) + unsorted


def _check_sorted(
    witness: str, filename: str, sequence: list[str]
) -> Diagnostic | None:
    """QA502 when a function's distinct lock tokens are not sorted.

    Only first occurrences count: re-acquiring an earlier resource is a
    re-entrant no-op for the :class:`LockManager`, not an ordering bug.
    """
    first_seen: list[str] = []
    for token in sequence:
        if token not in first_seen:
            first_seen.append(token)
    if len(first_seen) < 2 or first_seen == sorted(first_seen):
        return None
    return make(
        "QA502",
        f"{witness} acquires lock resources {first_seen} out of sorted "
        f"order; unsorted multi-lock paths can deadlock against sorted "
        f"ones (use LockManager.acquire_many)",
        SourceLocation("python", filename),
    )


def _function_sequences(tree: ast.AST) -> list[tuple[str, list[str]]]:
    """(function name, ordered lock-resource tokens) per function."""
    out: list[tuple[str, list[str]]] = []

    def visit(node: ast.AST, context: list[str] | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            sequence: list[str] = []
            for child in ast.iter_child_nodes(node):
                visit(child, sequence)
            out.append((node.name, sequence))
            return
        if context is not None and isinstance(node, ast.Call):
            token = _resource_token(node)
            if token is not None:
                context.append(token)
        for child in ast.iter_child_nodes(node):
            visit(child, context)

    visit(tree, None)
    return out


def _resource_token(call: ast.Call) -> str | None:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _BLOCKING:
        return None
    if len(call.args) >= 2:
        # LockManager.acquire(txn_id, resource, mode)
        return ast.unparse(call.args[1])
    if len(call.args) == 1:
        return ast.unparse(call.args[0])
    # bare lock.acquire(): the receiver is the resource
    return ast.unparse(func.value)


def _report_cycles(
    edges: Mapping[tuple[str, str], list[str]],
) -> list[Diagnostic]:
    graph: dict[str, set[str]] = {}
    for earlier, later in edges:
        graph.setdefault(earlier, set()).add(later)
        graph.setdefault(later, set())

    out: list[Diagnostic] = []
    for component in _sccs(graph):
        if len(component) < 2:
            continue
        members = sorted(component)
        witnesses = sorted({
            witness
            for (earlier, later), names in edges.items()
            if earlier in component and later in component
            for witness in names
        })
        out.append(make(
            "QA501",
            f"lock resources {members} are acquired in conflicting "
            f"orders by {witnesses}",
            SourceLocation("python", witnesses[0] if witnesses else "?"),
        ))
    return out


def _sccs(graph: Mapping[str, set[str]]) -> list[set[str]]:
    """Tarjan's strongly connected components, iteratively."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[set[str]] = []

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, Iterable[str]]] = [
            (root, iter(graph[root]))
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components
