"""SARIF 2.1.0 serialization for lint diagnostics.

`repro lint --format sarif` (with or without ``--program``) emits one
SARIF log so CI can upload the run and code hosts can annotate pull
requests with the findings.  The shape is deliberately minimal but
schema-valid:

* one ``run`` with the ``repro-lint`` driver and one reporting
  descriptor ("rule") per :data:`~repro.analysis.diagnostics.CODES`
  entry that actually fired;
* one ``result`` per diagnostic, carrying the code as ``ruleId``, the
  severity mapped onto SARIF's ``error``/``warning``/``note`` levels,
  and both a logical location (``dialect:operation[index]``) and — for
  whole-program findings, whose operation is a ``module:Class.method``
  reference — a physical artifact URI derived from the module path.

The schema URI and version are pinned by ``tests/test_sarif.py``.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import CODES, Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

TOOL_NAME = "repro-lint"

#: Severity -> SARIF result level
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _artifact_uri(diagnostic: Diagnostic) -> str | None:
    """A repo-relative source URI for whole-program diagnostics.

    Their operation strings are ``module:Class.method`` (or
    ``module:function``) references into ``src/``; query-catalog
    diagnostics name connector methods with no single source file and
    get no physical location.
    """
    if diagnostic.location.dialect != "python":
        return None
    module, _, _ = diagnostic.location.operation.partition(":")
    if not module or not all(
        part.isidentifier() for part in module.split(".")
    ):
        return None
    return "src/" + module.replace(".", "/") + ".py"


def _result(diagnostic: Diagnostic) -> dict[str, object]:
    logical = {
        "fullyQualifiedName": str(diagnostic.location),
        "kind": "member",
    }
    location: dict[str, object] = {"logicalLocations": [logical]}
    uri = _artifact_uri(diagnostic)
    if uri is not None:
        location["physicalLocation"] = {
            "artifactLocation": {
                "uri": uri,
                "uriBaseId": "REPOROOT",
            },
            # the analyzer addresses functions, not lines; anchor the
            # annotation at the top of the file
            "region": {"startLine": 1},
        }
    return {
        "ruleId": diagnostic.code,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [location],
    }


def _rule(code: str) -> dict[str, object]:
    name, severity = CODES[code]
    return {
        "id": code,
        "name": name,
        "shortDescription": {"text": name.replace("-", " ")},
        "defaultConfiguration": {"level": _LEVELS[severity]},
    }


def to_sarif(diagnostics: list[Diagnostic]) -> dict[str, object]:
    """The complete SARIF log object for one lint run."""
    fired = sorted({d.code for d in diagnostics})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/paper-repro/repro"
                        ),
                        "rules": [_rule(code) for code in fired],
                    }
                },
                "originalUriBaseIds": {
                    "REPOROOT": {"uri": "file:///"}
                },
                "results": [_result(d) for d in diagnostics],
            }
        ],
    }


def dumps(diagnostics: list[Diagnostic]) -> str:
    """The SARIF log as a stable, pretty-printed JSON string."""
    return json.dumps(to_sarif(diagnostics), indent=2, sort_keys=True)
